//! Minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! Implements the subset used by this workspace's benches: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs a short warm-up, then a
//! fixed sample of timed iterations, and prints mean / min / max
//! wall-clock time per iteration — enough to compare configurations
//! and catch large regressions while staying offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Hand values to a benchmarked routine without letting the optimizer
/// delete the computation (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub treats every
/// variant the same: one setup per timed invocation, setup excluded
/// from timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement state handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of each timed sample, in nanoseconds.
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            sample_means_ns: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over `samples` batches, auto-scaling the batch
    /// length so each batch runs for roughly a millisecond.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow until one batch
        // takes >= 1 ms (or the batch is already huge).
        let mut batch: u64 = 1;
        let target = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.sample_means_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.sample_means_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        let label = if id.is_empty() {
            group.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.sample_means_ns.is_empty() {
            println!("{label}: no samples recorded");
            return;
        }
        let n = self.sample_means_ns.len() as f64;
        let mean = self.sample_means_ns.iter().sum::<f64>() / n;
        let min = self
            .sample_means_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .sample_means_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{label}: mean {} (min {}, max {}, {} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            self.sample_means_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(4);
        let mut setups = 0usize;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.sample_means_ns.len(), 4);
    }
}

//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses (see
//! `third_party/README.md`): a seedable `StdRng` (xoshiro256++), the
//! `Rng` extension methods `gen_range` / `gen_bool`, `SeedableRng::
//! seed_from_u64`, and `seq::SliceRandom::shuffle`. All streams are
//! deterministic given the seed, which is what the reproduction's
//! noise models and tests rely on.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seed material (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

// No f32 impl: a second float impl would leave `gen_range(-1.0..1.0)`
// ambiguous, and this workspace samples exclusively in f64.

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here and
                // acceptable for a simulation stand-in.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: a tiny splittable generator (Steele et al.,
    /// OOPSLA'14). Besides seeding [`StdRng`], it is the workspace's
    /// stream-derivation primitive: [`SplitMix64::split`] and
    /// [`SplitMix64::stream`] derive statistically independent child
    /// generators from a parent, so every cell of a parameter sweep can
    /// own a reproducible stream that does not depend on how many other
    /// cells ran before it (or on which worker thread ran it).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Creates a generator whose first outputs are the mix of
        /// `seed + γ`, `seed + 2γ`, … (γ the golden-ratio increment).
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }

        /// Derives an independent child generator.
        ///
        /// Advances `self` once and uses a *differently finalized* mix
        /// of the advanced state as the child's starting point, so the
        /// child's output stream overlaps neither the parent's
        /// continuation nor the streams of siblings split earlier.
        pub fn split(&mut self) -> SplitMix64 {
            let z = self.next_u64();
            // Second finalizer (Stafford's mix13 variant constants) so a
            // child never starts at a state the parent will emit.
            let mut c = z ^ 0x6a09_e667_f3bc_c909;
            c = (c ^ (c >> 31)).wrapping_mul(0x7fb5_d329_728e_a185);
            c = (c ^ (c >> 27)).wrapping_mul(0x81da_de5b_de6d_187d);
            SplitMix64::new(c ^ (c >> 33))
        }

        /// Derives the `stream`-th independent generator of a `seed`:
        /// `stream(seed, i)` is the `i`-th child of a parent seeded with
        /// `seed`, without materializing the first `i - 1` children.
        pub fn stream(seed: u64, stream: u64) -> SplitMix64 {
            let mut parent = SplitMix64::new(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            parent.split()
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(seed: u64) -> Self {
            SplitMix64::new(seed)
        }
    }

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64
    /// (the same seeding scheme the real `StdRng` family uses for
    /// `seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Seeds the `stream`-th independent `StdRng` of `seed` (see
        /// [`SplitMix64::stream`]): distinct streams of one seed are as
        /// unrelated as distinct seeds.
        pub fn from_stream(seed: u64, stream: u64) -> Self {
            Self::seed_from_u64(SplitMix64::stream(seed, stream).next_u64())
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SplitMix64, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(0xDEAD);
        let mut b = SplitMix64::seed_from_u64(0xDEAD);
        let mut c = SplitMix64::new(0xDEAE);
        let (xa, xb, xc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..32).map(|_| a.next_u64()).collect(),
            (0..32).map(|_| b.next_u64()).collect(),
            (0..32).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn split_children_are_independent_of_parent_and_siblings() {
        let mut parent = SplitMix64::new(7);
        let mut child0 = parent.split();
        let mut child1 = parent.split();
        let mut cont = parent; // parent's own continuation
        let take = |r: &mut SplitMix64| (0..64).map(|_| r.next_u64()).collect::<Vec<_>>();
        let (s0, s1, sp) = (take(&mut child0), take(&mut child1), take(&mut cont));
        assert_ne!(s0, s1, "sibling streams must differ");
        assert_ne!(s0, sp, "child must not replay the parent");
        assert_ne!(s1, sp);
        // Splitting is reproducible: a fresh parent yields the same children.
        let mut parent2 = SplitMix64::new(7);
        assert_eq!(take(&mut parent2.split()), s0);
        assert_eq!(take(&mut parent2.split()), s1);
    }

    #[test]
    fn stream_derivation_is_random_access() {
        // stream(seed, i) must not require deriving streams 0..i-1, and
        // distinct stream ids must give distinct generators.
        let mut streams: Vec<u64> = (0..100)
            .map(|i| SplitMix64::stream(42, i).next_u64())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 100, "stream ids collided");
        assert_ne!(
            SplitMix64::stream(42, 3).next_u64(),
            SplitMix64::stream(43, 3).next_u64(),
            "streams must be seed-sensitive"
        );
    }

    #[test]
    fn std_rng_from_stream_matches_manual_derivation() {
        let mut via_api = StdRng::from_stream(9, 4);
        let mut manual = StdRng::seed_from_u64(SplitMix64::stream(9, 4).next_u64());
        for _ in 0..16 {
            assert_eq!(via_api.next_u64(), manual.next_u64());
        }
        let mut other = StdRng::from_stream(9, 5);
        assert_ne!(via_api.next_u64(), other.next_u64());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

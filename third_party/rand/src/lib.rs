//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses (see
//! `third_party/README.md`): a seedable `StdRng` (xoshiro256++), the
//! `Rng` extension methods `gen_range` / `gen_bool`, `SeedableRng::
//! seed_from_u64`, and `seq::SliceRandom::shuffle`. All streams are
//! deterministic given the seed, which is what the reproduction's
//! noise models and tests rely on.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seed material (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

// No f32 impl: a second float impl would leave `gen_range(-1.0..1.0)`
// ambiguous, and this workspace samples exclusively in f64.

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here and
                // acceptable for a simulation stand-in.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64
    /// (the same seeding scheme the real `StdRng` family uses for
    /// `seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

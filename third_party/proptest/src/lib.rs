//! Minimal, self-contained stand-in for the `proptest` property-testing
//! crate.
//!
//! Implements the subset this workspace's tests use: the `proptest!`
//! macro over functions whose arguments are drawn from strategies,
//! range strategies for integers and floats, `any::<T>()`,
//! `collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` assertion macros.
//!
//! Unlike the real crate there is no shrinking: a failing case panics
//! with its case number and the generator is deterministic (seeded
//! from the test name), so failures reproduce exactly on re-run. The
//! case count defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.start as f64..self.end as f64) as f32
        }
    }

    /// Tuples of strategies are strategies over tuples of their values
    /// (mirrors the real crate's tuple `Strategy` impls).
    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" generator.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite values spanning sign and several orders of magnitude.
            let mag = rng.gen_range(-6.0..6.0);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag)
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> crate::strategy::Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// `any::<T>()` — generate arbitrary values of `T`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generate a `Vec` whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — fails the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: generates cases until `case_count()` of
    /// them executed (rejections don't count), panicking on the first
    /// failure with enough context to reproduce it.
    pub fn run<F>(name: &str, mut property: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let cases = case_count();
        let mut rng = StdRng::seed_from_u64(fnv1a(name));
        let mut executed = 0usize;
        let mut rejected = 0usize;
        let mut case = 0usize;
        while executed < cases {
            case += 1;
            match property(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= cases * 16,
                        "property '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {executed} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property '{name}' failed at case {case}: {msg}");
                }
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::new_value(&($strategy), __proptest_rng);
                )+
                $body
                Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn vec_lengths_in_range(
            v in crate::collection::vec(any::<bool>(), 3..9),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 9, "len {} out of range", v.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x < 9);
            prop_assert!(x < 9);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}

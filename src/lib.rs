//! Umbrella crate for the `leaky-frontends` reproduction workspace.
//!
//! Re-exports every subsystem so that examples and integration tests can use
//! one coherent namespace. See the individual crates for full documentation:
//!
//! * [`isa`] — x86-like instruction & code-layout model
//! * [`uarch`] — microarchitecture profiles (geometry + cost model registry)
//! * [`frontend`] — MITE / DSB / LSD frontend simulator
//! * [`backend`] — execution-engine model (ports, IPC)
//! * [`cache`] — L1I / L1D cache models and attack helpers
//! * [`power`] — RAPL-style energy counter
//! * [`cpu`] — composed SMT core with Table I processor presets
//! * [`sgx`] — SGX enclave execution contexts
//! * [`attacks`] — the paper's covert channels, side channels and
//!   fingerprinting attacks
//! * [`spectre`] — Spectre v1 variants over six covert channels
//! * [`workloads`] — synthetic victim workloads for fingerprinting
//! * [`stats`] — histograms, edit distance, threshold calibration
//! * [`store`] — content-addressed on-disk result store (resumable sweeps)
//! * [`exp`] — deterministic parallel experiment orchestration (sweeps)
//! * [`scenario`] — data-driven profile & scenario files (TOML subset)
//! * [`trace`] — zero-cost-when-off structured trace & telemetry layer

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use leaky_backend as backend;
pub use leaky_cache as cache;
pub use leaky_cpu as cpu;
pub use leaky_exp as exp;
pub use leaky_frontend as frontend;
pub use leaky_frontends as attacks;
pub use leaky_isa as isa;
pub use leaky_power as power;
pub use leaky_scenario as scenario;
pub use leaky_sgx as sgx;
pub use leaky_spectre as spectre;
pub use leaky_stats as stats;
pub use leaky_store as store;
pub use leaky_trace as trace;
pub use leaky_uarch as uarch;
pub use leaky_workloads as workloads;

//! Integration tests for the SGX exfiltration attacks (§VIII) and the
//! Spectre v1 variants (§IX, Table VII).

use leaky_frontends_repro::attacks::channels::non_mt::NonMtKind;
use leaky_frontends_repro::attacks::params::{
    bits_to_bytes, bytes_to_bits, ChannelParams, EncodeMode,
};
use leaky_frontends_repro::attacks::sgx::{SgxAttackError, SgxMtChannel, SgxNonMtChannel};
use leaky_frontends_repro::cpu::ProcessorModel;
use leaky_frontends_repro::spectre::attack::{table7, SpectreV1};
use leaky_frontends_repro::spectre::channels::ChannelKind;

#[test]
fn sgx_leaks_a_key_through_the_enclave_boundary() {
    let key = [0x5au8, 0xa5, 0x3c, 0xc3, 0x0f, 0xf0, 0x69, 0x96];
    let mut ch = SgxNonMtChannel::new(
        ProcessorModel::xeon_e2286g(),
        NonMtKind::Eviction,
        EncodeMode::Fast,
        ChannelParams::sgx_non_mt_defaults(),
        4,
    )
    .expect("SGX machine");
    let run = ch.transmit(&bytes_to_bits(&key));
    assert_eq!(bits_to_bytes(run.received()), key);
    // Table VI regime: tens of Kbps.
    assert!(run.rate_kbps() > 5.0 && run.rate_kbps() < 300.0);
}

#[test]
fn sgx_rejects_unsupported_configurations() {
    assert_eq!(
        SgxNonMtChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::sgx_non_mt_defaults(),
            1,
        )
        .unwrap_err(),
        SgxAttackError::NoSgx { model: "Gold 6226" }
    );
    assert_eq!(
        SgxMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            ChannelParams::sgx_mt_defaults(),
            1,
        )
        .unwrap_err(),
        SgxAttackError::NoSmt {
            model: "Xeon E-2288G"
        }
    );
}

#[test]
fn sgx_mt_channel_decodes_from_sibling_thread() {
    let mut ch = SgxMtChannel::new(
        ProcessorModel::xeon_e2174g(),
        NonMtKind::Eviction,
        ChannelParams::sgx_mt_defaults(),
        6,
    )
    .unwrap();
    let msg: Vec<bool> = (0..24).map(|i| i % 3 == 0).collect();
    let run = ch.transmit(&msg);
    assert!(
        run.error_rate() < 0.25,
        "MT SGX error {:.1}%",
        run.error_rate() * 100.0
    );
}

#[test]
fn spectre_frontend_variant_recovers_text() {
    let secret: Vec<u8> = "HPCA".bytes().map(|b| b % 32).collect();
    let mut attack = SpectreV1::new(ChannelKind::Frontend, secret.clone(), 8);
    let result = attack.leak();
    assert_eq!(result.recovered, secret);
}

#[test]
fn table7_shape_holds_end_to_end() {
    let secret: Vec<u8> = (0..16).map(|i| (i * 11) % 32).collect();
    let rows = table7(&secret, 15);
    // Everyone recovers the secret...
    for (kind, result) in &rows {
        assert_eq!(result.accuracy(), 1.0, "{kind} inaccurate");
    }
    // ...but footprints differ: frontend < L1I < data-cache channels.
    let rate = |k: ChannelKind| {
        rows.iter()
            .find(|(kind, _)| *kind == k)
            .map(|(_, r)| r.l1_miss_rate())
            .unwrap()
    };
    assert!(rate(ChannelKind::Frontend) < rate(ChannelKind::L1iPrimeProbe));
    assert!(rate(ChannelKind::L1iPrimeProbe) < rate(ChannelKind::MemFlushReload));
    assert!(rate(ChannelKind::MemFlushReload) < rate(ChannelKind::L1dFlushReload));
    // The frontend channel leaves the data cache completely alone.
    let frontend = rows
        .iter()
        .find(|(k, _)| *k == ChannelKind::Frontend)
        .map(|(_, r)| r)
        .unwrap();
    assert_eq!(frontend.l1d_misses, 0);
}

//! Differential property tests: the zero-allocation [`Frontend`] must be
//! bit-identical to the retained naive reference engine
//! ([`NaiveFrontend`]) across random chains, SMT schedules and sharing
//! policies. Both engines execute the same random interleavings of
//! iterations, activity transitions and flushes, and every single
//! [`IterationReport`] (an exact `f64`-carrying struct) is compared with
//! `==` — any divergence in delivery order, cost arithmetic or lock
//! bookkeeping fails immediately.

use leaky_frontends_repro::frontend::{
    Frontend, FrontendConfig, NaiveFrontend, SmtDsbPolicy, ThreadId,
};
use leaky_frontends_repro::isa::{
    same_set_chain, Addr, Alignment, Block, BlockChain, DsbSet, FrontendGeometry, LcpPattern,
};
use proptest::prelude::*;

/// Decodes one byte into a random (but valid) chain. The generator
/// covers the paper's whole layout space: aligned/misaligned same-set
/// chains of 1-10 blocks on any set, nop blocks, LCP blocks of both
/// interleavings, and concatenations of aligned + misaligned runs.
fn chain_from(spec: (u8, u8, u8)) -> BlockChain {
    let (kind, set, count) = spec;
    let set = DsbSet::new(set % 32);
    let count = (count % 10) as usize + 1;
    let base = 0x0041_8000 + (kind as u64 % 7) * 0x10_0000;
    match kind % 6 {
        0 => same_set_chain(base, set, count, Alignment::Aligned),
        1 => same_set_chain(base, set, count, Alignment::Misaligned),
        2 => same_set_chain(base, set, count.min(5), Alignment::Aligned).concat(same_set_chain(
            base + 0x20_0000,
            set,
            count.min(4),
            Alignment::Misaligned,
        )),
        3 => BlockChain::new(vec![Block::nops(Addr::new(base), count * 17 + 1)]),
        4 => BlockChain::new(vec![Block::lcp_adds(
            Addr::new(base),
            LcpPattern::Mixed,
            count * 3,
        )]),
        _ => BlockChain::new(vec![Block::lcp_adds(
            Addr::new(base),
            LcpPattern::Ordered,
            count * 3,
        )]),
    }
}

fn config_from(policy: u8, lsd_enabled: bool, flush_on_partition: bool) -> FrontendConfig {
    FrontendConfig {
        lsd_enabled,
        flush_on_partition,
        dsb_policy: match policy % 3 {
            0 => SmtDsbPolicy::Competitive,
            1 => SmtDsbPolicy::SetPartitioned,
            _ => SmtDsbPolicy::Shared,
        },
        // Vary the LSD warm-up too: steady-state detection must respect
        // pending lock transitions at every threshold.
        lsd_warmup_iterations: (policy / 3 % 6) as u32 + 1,
        ..FrontendConfig::default()
    }
}

/// Decodes one byte into a perturbed frontend geometry. Covers the
/// profile registry's spread and beyond: non-canonical DSB line
/// capacities (the PR-2 fast path precomputed 6-µop splits — these must
/// never leak), halved set counts, narrow ways, larger/smaller LSDs and
/// window-tracking capacities, and a perturbed L1I. The code layouts
/// stay Table I-placed (layout generation is part of the *attack*, not
/// the machine), so every geometry interprets the same addresses.
fn geometry_from(g: (u8, u8, u8)) -> FrontendGeometry {
    let (a, b, c) = g;
    FrontendGeometry {
        dsb_line_uops: [1, 2, 3, 4, 6, 8][a as usize % 6],
        dsb_sets: [16, 32][b as usize % 2],
        dsb_ways: [4, 8][(b / 2) as usize % 2],
        lsd_uops: [32, 64, 96][c as usize % 3],
        lsd_windows: [4, 8, 12][(c / 3) as usize % 3],
        l1i_sets: [32, 64][(c / 9) as usize % 2],
        l1i_ways: [8, 12][(a / 6) as usize % 2],
        ..FrontendGeometry::skylake()
    }
}

proptest! {
    /// Core differential property: arbitrary interleavings of iterations,
    /// thread activity changes and thread flushes produce identical
    /// reports, lock states and DSB occupancies on both engines.
    #[test]
    fn optimized_frontend_matches_naive_reference(
        chain_specs in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
        schedule in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        policy in any::<u8>(),
        lsd_enabled in any::<bool>(),
        flush_on_partition in any::<bool>(),
    ) {
        let chains: Vec<BlockChain> = chain_specs.into_iter().map(chain_from).collect();
        let config = config_from(policy, lsd_enabled, flush_on_partition);
        let mut fast = Frontend::new(config);
        let mut naive = NaiveFrontend::new(config);
        for (op, tsel, csel) in schedule {
            let tid = if tsel % 2 == 0 { ThreadId::T0 } else { ThreadId::T1 };
            match op % 8 {
                // Activity transitions are rarer than iterations (2/8),
                // flushes rarest (1/8), iterations the bulk (5/8).
                0 => {
                    let active = csel % 2 == 0;
                    fast.set_active(tid, active);
                    naive.set_active(tid, active);
                }
                1 => {
                    fast.set_active(tid, true);
                    naive.set_active(tid, true);
                }
                2 => {
                    fast.flush_thread_state(tid);
                    naive.flush_thread_state(tid);
                }
                _ => {
                    let chain = &chains[csel as usize % chains.len()];
                    let fast_report = fast.run_iteration(tid, chain);
                    let naive_report = naive.run_iteration(tid, chain);
                    prop_assert_eq!(fast_report, naive_report, "iteration reports diverged");
                    prop_assert_eq!(
                        fast.lsd_locked(tid, chain),
                        naive.lsd_locked(tid, chain),
                        "lock state diverged"
                    );
                }
            }
            for t in 0..2u8 {
                prop_assert_eq!(
                    fast.dsb().occupancy(t),
                    naive.dsb_occupancy(t),
                    "DSB occupancy diverged"
                );
            }
        }
        for tid in [ThreadId::T0, ThreadId::T1] {
            prop_assert_eq!(fast.counters(tid), naive.counters(tid), "cumulative counters diverged");
        }
    }

    /// Geometry-randomized differential property: under perturbed
    /// frontend geometries (non-default `dsb_line_uops`, `dsb_sets`,
    /// `dsb_ways`, `lsd_uops`, `lsd_windows`, L1I shape) — including
    /// mid-schedule `reconfigure` switches between geometries — the
    /// optimized engine must remain bit-identical to the naive
    /// reference. This is the regression net for the PR-2 fast path's
    /// precomputed 6-µop line splits and for the (chain, profile-key)
    /// plan-cache keying: reusing a stale split or plan diverges the
    /// line/chunk walk and fails on the first report.
    #[test]
    fn optimized_frontend_matches_naive_under_random_geometry(
        chain_specs in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
        geom_specs in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 2..4),
        schedule in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        policy in any::<u8>(),
        lsd_enabled in any::<bool>(),
        flush_on_partition in any::<bool>(),
    ) {
        let chains: Vec<BlockChain> = chain_specs.into_iter().map(chain_from).collect();
        let geometries: Vec<FrontendGeometry> = geom_specs.into_iter().map(geometry_from).collect();
        let config = FrontendConfig {
            geometry: geometries[0],
            ..config_from(policy, lsd_enabled, flush_on_partition)
        };
        let mut fast = Frontend::new(config);
        let mut naive = NaiveFrontend::new(config);
        for (op, tsel, csel) in schedule {
            let tid = if tsel % 2 == 0 { ThreadId::T0 } else { ThreadId::T1 };
            match op % 10 {
                // Iterations dominate (7/10); activity transitions,
                // flushes and reconfigures share the rest.
                0 => {
                    let active = csel % 2 == 0;
                    fast.set_active(tid, active);
                    naive.set_active(tid, active);
                }
                1 => {
                    fast.flush_thread_state(tid);
                    naive.flush_thread_state(tid);
                }
                2 => {
                    // Reconfigure onto another random geometry (and
                    // policy/warm-up): the optimized engine keeps its plan
                    // cache across this — stale plans must be unreachable.
                    let next = FrontendConfig {
                        geometry: geometries[csel as usize % geometries.len()],
                        ..config_from(csel, tsel % 2 == 0, op % 2 == 0)
                    };
                    fast.reconfigure(next);
                    naive.reconfigure(next);
                }
                _ => {
                    let chain = &chains[csel as usize % chains.len()];
                    let fast_report = fast.run_iteration(tid, chain);
                    let naive_report = naive.run_iteration(tid, chain);
                    prop_assert_eq!(fast_report, naive_report, "iteration reports diverged");
                    prop_assert_eq!(
                        fast.lsd_locked(tid, chain),
                        naive.lsd_locked(tid, chain),
                        "lock state diverged"
                    );
                }
            }
            for t in 0..2u8 {
                prop_assert_eq!(
                    fast.dsb().occupancy(t),
                    naive.dsb_occupancy(t),
                    "DSB occupancy diverged"
                );
            }
        }
        for tid in [ThreadId::T0, ThreadId::T1] {
            prop_assert_eq!(fast.counters(tid), naive.counters(tid), "cumulative counters diverged");
        }
    }

    /// `run_iterations`' steady-state collapse also holds under perturbed
    /// geometries: counts exact, cycles up to f64 summation order.
    #[test]
    fn run_iterations_matches_naive_loop_under_random_geometry(
        spec in (any::<u8>(), any::<u8>(), any::<u8>()),
        geom in (any::<u8>(), any::<u8>(), any::<u8>()),
        n in 1u64..300,
        policy in any::<u8>(),
        lsd_enabled in any::<bool>(),
    ) {
        let chain = chain_from(spec);
        let config = FrontendConfig {
            geometry: geometry_from(geom),
            lsd_warmup_iterations: FrontendConfig::default().lsd_warmup_iterations,
            ..config_from(policy, lsd_enabled, true)
        };
        let mut fast = Frontend::new(config);
        let mut naive = NaiveFrontend::new(config);
        let total_fast = fast.run_iterations(ThreadId::T0, &chain, n);
        let total_naive = naive.run_iterations(ThreadId::T0, &chain, n);
        prop_assert_eq!(total_fast.total_uops(), total_naive.total_uops());
        prop_assert_eq!(total_fast.lsd_uops, total_naive.lsd_uops);
        prop_assert_eq!(total_fast.dsb_uops, total_naive.dsb_uops);
        prop_assert_eq!(total_fast.mite_uops, total_naive.mite_uops);
        prop_assert_eq!(total_fast.dsb_evictions, total_naive.dsb_evictions);
        prop_assert_eq!(total_fast.lsd_flushes, total_naive.lsd_flushes);
        let scale = total_naive.cycles.abs().max(1.0);
        prop_assert!(
            (total_fast.cycles - total_naive.cycles).abs() <= 1e-9 * scale,
            "cycles diverged: {} vs {}",
            total_fast.cycles,
            total_naive.cycles
        );
    }

    /// `run_iterations`' period-k steady-state collapse is semantically
    /// the plain loop: counts match exactly, cycles up to f64 summation
    /// order.
    #[test]
    fn run_iterations_matches_naive_loop(
        spec in (any::<u8>(), any::<u8>(), any::<u8>()),
        n in 1u64..400,
        policy in any::<u8>(),
        lsd_enabled in any::<bool>(),
    ) {
        let chain = chain_from(spec);
        // Default warm-up only: with longer warm-ups the steady-state rule
        // intentionally diverges from the plain loop (the documented
        // approximation characterized by
        // `steady_state_collapse_can_freeze_lsd_warmup` in leaky_frontend).
        let config = FrontendConfig {
            lsd_warmup_iterations: FrontendConfig::default().lsd_warmup_iterations,
            ..config_from(policy, lsd_enabled, true)
        };
        let mut fast = Frontend::new(config);
        let mut naive = NaiveFrontend::new(config);
        let total_fast = fast.run_iterations(ThreadId::T0, &chain, n);
        let total_naive = naive.run_iterations(ThreadId::T0, &chain, n);
        prop_assert_eq!(total_fast.total_uops(), total_naive.total_uops());
        prop_assert_eq!(total_fast.lsd_uops, total_naive.lsd_uops);
        prop_assert_eq!(total_fast.dsb_uops, total_naive.dsb_uops);
        prop_assert_eq!(total_fast.mite_uops, total_naive.mite_uops);
        prop_assert_eq!(total_fast.dsb_evictions, total_naive.dsb_evictions);
        prop_assert_eq!(total_fast.lsd_flushes, total_naive.lsd_flushes);
        prop_assert_eq!(total_fast.dsb_to_mite_switches, total_naive.dsb_to_mite_switches);
        prop_assert_eq!(total_fast.l1i_accesses, total_naive.l1i_accesses);
        prop_assert_eq!(total_fast.l1i_misses, total_naive.l1i_misses);
        let scale = total_naive.cycles.abs().max(1.0);
        prop_assert!(
            (total_fast.cycles - total_naive.cycles).abs() <= 1e-9 * scale,
            "cycles diverged: {} vs {}",
            total_fast.cycles,
            total_naive.cycles
        );
        // After the run both engines hold the same lock state, so resuming
        // from steady state stays bit-identical too.
        prop_assert_eq!(
            fast.lsd_locked(ThreadId::T0, &chain),
            naive.lsd_locked(ThreadId::T0, &chain)
        );
        let fast_next = fast.run_iteration(ThreadId::T0, &chain);
        let naive_next = naive.run_iteration(ThreadId::T0, &chain);
        prop_assert_eq!(fast_next, naive_next, "post-run state diverged");
    }

    /// Myers bit-parallel edit distance (used by `error_rate`) agrees with
    /// the Wagner-Fischer row DP on arbitrary bit strings.
    #[test]
    fn bit_parallel_edit_distance_matches_dp(
        a in proptest::collection::vec(any::<bool>(), 0..300),
        b in proptest::collection::vec(any::<bool>(), 0..300),
    ) {
        use leaky_frontends_repro::stats::{edit_distance, edit_distance_bits};
        prop_assert_eq!(edit_distance_bits(&a, &b), edit_distance(&a, &b));
    }

    /// Message framing round-trip: bytes → bits is lossless and MSB-first;
    /// bits → bytes keeps every full byte and drops exactly the documented
    /// trailing partial byte (`len % 8` bits), so appending up to 7 junk
    /// bits to a received stream never corrupts the decoded payload.
    #[test]
    fn byte_bit_framing_roundtrips_with_trailing_truncation(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        trailing in proptest::collection::vec(any::<bool>(), 0..8),
    ) {
        use leaky_frontends_repro::attacks::params::{bits_to_bytes, bytes_to_bits};
        let bits = bytes_to_bits(&bytes);
        prop_assert_eq!(bits.len(), bytes.len() * 8);
        // MSB-first framing: bit 0 of the stream is bit 7 of byte 0.
        if let Some(&first) = bytes.first() {
            prop_assert_eq!(bits[0], first & 0x80 != 0);
            prop_assert_eq!(bits[7], first & 0x01 != 0);
        }
        prop_assert_eq!(bits_to_bytes(&bits), bytes.clone());
        // Trailing bits that do not fill a byte are dropped — and only
        // they are.
        let mut padded = bits.clone();
        padded.extend_from_slice(&trailing);
        prop_assert_eq!(bits_to_bytes(&padded), bytes.clone());
        // The truncation boundary is exact: a *full* extra byte survives.
        let mut extended = bits;
        extended.extend(std::iter::repeat_n(true, 8));
        let mut expect = bytes;
        expect.push(0xff);
        prop_assert_eq!(bits_to_bytes(&extended), expect);
    }
}

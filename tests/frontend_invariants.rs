//! Cross-crate invariant tests: the §IV reverse-engineering facts must hold
//! through the full core stack, not just inside the frontend crate.

use leaky_frontends_repro::cpu::{Core, ProcessorModel};
use leaky_frontends_repro::frontend::ThreadId;
use leaky_frontends_repro::isa::{same_set_chain, Alignment, DsbSet, FrontendGeometry};

const BASE_A: u64 = 0x0041_8000;
const BASE_B: u64 = 0x0082_0000;

#[test]
fn section_4f_eviction_boundary_at_nine_blocks() {
    // §IV-F: 8 same-set blocks fit (LSD); the 9th forces DSB evictions and
    // MITE fallback — with zero L1I misses after warm-up.
    for count in [8usize, 9] {
        let mut core = Core::new(ProcessorModel::gold_6226(), 3);
        let chain = same_set_chain(BASE_A, DsbSet::new(4), count, Alignment::Aligned);
        core.run_loop(ThreadId::T0, &chain, 8);
        let warm = core.run_once(ThreadId::T0, &chain);
        if count == 8 {
            assert_eq!(warm.report.mite_uops, 0, "8 blocks must stay out of MITE");
            assert!(warm.report.lsd_uops > 0);
        } else {
            assert!(warm.report.mite_uops > 0, "9 blocks must thrash into MITE");
            assert!(warm.report.dsb_evictions > 0);
        }
        assert_eq!(
            warm.report.l1i_misses, 0,
            "no L1I misses either way (§IV-F)"
        );
    }
}

#[test]
fn section_4g_misalignment_pairs_through_the_core() {
    // Every §IV-G {aligned + misaligned} collision pair must deny the LSD.
    for (a, m) in [(7, 1), (5, 2), (6, 2), (3, 3), (4, 3), (5, 3)] {
        let mut core = Core::new(ProcessorModel::gold_6226(), 3);
        let aligned = same_set_chain(BASE_A, DsbSet::new(0), a, Alignment::Aligned);
        let mis = same_set_chain(BASE_B, DsbSet::new(0), m, Alignment::Misaligned);
        let chain = aligned.concat(mis);
        core.run_loop(ThreadId::T0, &chain, 10);
        let warm = core.run_once(ThreadId::T0, &chain);
        assert_eq!(
            warm.report.lsd_uops, 0,
            "{a} aligned + {m} misaligned must not stream from the LSD"
        );
    }
    // The all-aligned 8-block control does stream.
    let mut core = Core::new(ProcessorModel::gold_6226(), 3);
    let chain = same_set_chain(BASE_A, DsbSet::new(0), 8, Alignment::Aligned);
    core.run_loop(ThreadId::T0, &chain, 10);
    assert!(core.run_once(ThreadId::T0, &chain).report.lsd_uops > 0);
}

#[test]
fn dsb_capacity_is_1536_uops() {
    let g = FrontendGeometry::skylake();
    assert_eq!(g.dsb_capacity_uops(), 1536);
}

#[test]
fn partition_detection_via_mite_usage() {
    // §IV-B: "whether the DSB is currently partitioned ... can be detected
    // by checking the increased MITE usage". An application filling many
    // sets sees MITE traffic spike when the sibling wakes.
    let mut core = Core::new(ProcessorModel::gold_6226(), 3);
    let probe = same_set_chain(BASE_A, DsbSet::new(2), 8, Alignment::Aligned);
    core.run_loop(ThreadId::T0, &probe, 5);
    let solo = core.run_once(ThreadId::T0, &probe);
    assert_eq!(solo.report.mite_uops, 0);

    core.set_active(ThreadId::T0, true);
    core.set_active(ThreadId::T1, true); // sibling wakes: partition event
    let partitioned = core.run_once(ThreadId::T0, &probe);
    assert!(
        partitioned.report.mite_uops > 0,
        "partition transition must show up as MITE usage"
    );
}

#[test]
fn inclusive_hierarchy_mite_dsb_lsd() {
    // §IV: MITE ⊇ DSB ⊇ LSD — evicting a DSB line kills the LSD loop, and
    // the evicted µops must come back through the MITE.
    let mut core = Core::new(ProcessorModel::gold_6226(), 3);
    let loop_a = same_set_chain(BASE_A, DsbSet::new(6), 6, Alignment::Aligned);
    core.run_loop(ThreadId::T0, &loop_a, 8);
    assert!(core.frontend().lsd_locked(ThreadId::T0, &loop_a));

    // 3 more same-set blocks push the set to 9 lines: eviction.
    let evictor = same_set_chain(BASE_B, DsbSet::new(6), 3, Alignment::Aligned);
    core.run_loop(ThreadId::T0, &evictor, 1);
    assert!(
        !core.frontend().lsd_locked(ThreadId::T0, &loop_a),
        "DSB eviction must flush the LSD (inclusivity)"
    );
    let after = core.run_once(ThreadId::T0, &loop_a);
    assert!(after.report.mite_uops > 0);
}

#[test]
fn timing_order_lsd_between_dsb_and_mite() {
    // Fig. 2's three delivery modes, measured through the noisy timer.
    let samples = |count: usize, lsd_enabled: bool| -> f64 {
        let model = if lsd_enabled {
            ProcessorModel::gold_6226()
        } else {
            ProcessorModel::xeon_e2174g()
        };
        let mut core = Core::new(model, 3);
        let chain = same_set_chain(BASE_A, DsbSet::new(1), count, Alignment::Aligned);
        core.run_loop(ThreadId::T0, &chain, 10);
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            let t0 = core.rdtscp(ThreadId::T0);
            core.run_once(ThreadId::T0, &chain);
            let t1 = core.rdtscp(ThreadId::T0);
            total += (t1 - t0) / count as f64;
        }
        total / n as f64
    };
    let dsb = samples(8, false);
    let lsd = samples(8, true);
    let mite = samples(9, true);
    assert!(
        dsb < lsd,
        "DSB ({dsb:.2}) must beat LSD ({lsd:.2}) per block"
    );
    assert!(
        lsd < mite,
        "LSD ({lsd:.2}) must beat MITE ({mite:.2}) per block"
    );
}

//! Smoke test mirroring `examples/quickstart.rs`, so the example's flow
//! cannot silently rot: same channel, same processor preset, same
//! parameters — but asserting on the outcome instead of printing it.

use leaky_frontends_repro::attacks::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends_repro::attacks::params::{
    bits_to_bytes, bytes_to_bits, ChannelParams, EncodeMode,
};
use leaky_frontends_repro::cpu::ProcessorModel;

#[test]
fn quickstart_flow_roundtrips_a_message() {
    let message = "The DSB never forgets.";

    let mut channel = NonMtChannel::new(
        ProcessorModel::xeon_e2288g(),
        NonMtKind::Misalignment,
        EncodeMode::Fast,
        ChannelParams::misalignment_defaults(),
        42,
    );

    let sent_bits = bytes_to_bits(message.as_bytes());
    let run = channel.transmit(&sent_bits);
    let received = String::from_utf8_lossy(&bits_to_bytes(run.received())).into_owned();

    // The paper's Table III operating point for this channel on the
    // E-2288G is 1410.84 Kbps at 0.00% error; the reproduction must at
    // least deliver the message intact at a Mbps-class rate.
    assert_eq!(received, message, "message must roundtrip bit-exactly");
    assert_eq!(
        run.error_rate(),
        0.0,
        "fast channel on E-2288G is error-free"
    );
    assert!(
        run.rate_kbps() > 500.0,
        "rate {:.1} Kbps not Mbps-class",
        run.rate_kbps()
    );
    assert!(run.seconds() > 0.0, "simulated time must advance");
    assert_eq!(run.sent().len(), message.len() * 8);
}

#[test]
fn quickstart_is_deterministic_across_runs() {
    let transmit = || {
        let mut ch = NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Misalignment,
            EncodeMode::Fast,
            ChannelParams::misalignment_defaults(),
            42,
        );
        ch.transmit(&bytes_to_bits(b"determinism"))
    };
    let a = transmit();
    let b = transmit();
    assert_eq!(a.received(), b.received());
    assert_eq!(a.rate_kbps(), b.rate_kbps());
}

//! Integration tests for microcode-patch fingerprinting (§X) and the IPC
//! application-fingerprinting side channel (§XI).

use leaky_frontends_repro::attacks::fingerprint::ipc::{
    distance_summary, FingerprintLibrary, IpcSampler,
};
use leaky_frontends_repro::attacks::fingerprint::microcode::MicrocodeFingerprint;
use leaky_frontends_repro::cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontends_repro::workloads::{cnn, mobile};

fn quick_sampler() -> IpcSampler {
    IpcSampler {
        window_seconds: 0.002,
        samples: 40,
        ..IpcSampler::default()
    }
}

#[test]
fn microcode_patches_are_distinguishable_from_user_space() {
    let fp = MicrocodeFingerprint::default();
    for patch in [MicrocodePatch::Patch1, MicrocodePatch::Patch2] {
        let mut core = Core::with_microcode(ProcessorModel::gold_6226(), patch, 12);
        assert_eq!(fp.fingerprint(&mut core), patch);
    }
    assert!(fp.accuracy(ProcessorModel::gold_6226(), 8) > 0.95);
}

#[test]
fn microcode_fingerprint_is_meaningless_without_lsd_hardware() {
    // On machines whose LSD is fused off (E-2174G), both patches look like
    // patch2 — the §X attack only applies where the patch changes the LSD.
    let fp = MicrocodeFingerprint::default();
    for patch in [MicrocodePatch::Patch1, MicrocodePatch::Patch2] {
        let mut core = Core::with_microcode(ProcessorModel::xeon_e2174g(), patch, 12);
        assert_eq!(fp.fingerprint(&mut core), MicrocodePatch::Patch2);
    }
}

#[test]
fn cnn_models_separable_and_classifiable() {
    let s = quick_sampler();
    let refs: Vec<(String, Vec<Vec<f64>>)> = cnn::models()
        .iter()
        .map(|w| {
            (
                w.name().to_string(),
                s.trace_set(ProcessorModel::gold_6226(), w, 2, 60),
            )
        })
        .collect();
    let sets: Vec<_> = refs.iter().map(|(_, t)| t.clone()).collect();
    let d = distance_summary(&sets);
    assert!(
        d.separable(),
        "intra {:.3} vs inter {:.3}",
        d.intra,
        d.inter
    );

    let lib = FingerprintLibrary::new(refs);
    for w in cnn::models() {
        let probe = s.trace(ProcessorModel::gold_6226(), &w, 444);
        assert_eq!(lib.classify(&probe), w.name());
    }
}

#[test]
fn ten_mobile_workloads_classify_correctly() {
    let s = quick_sampler();
    let refs: Vec<(String, Vec<Vec<f64>>)> = mobile::benchmarks()
        .iter()
        .map(|w| {
            (
                w.name().to_string(),
                s.trace_set(ProcessorModel::gold_6226(), w, 2, 70),
            )
        })
        .collect();
    let lib = FingerprintLibrary::new(refs);
    let mut correct = 0;
    for w in mobile::benchmarks() {
        let probe = s.trace(ProcessorModel::gold_6226(), &w, 555);
        if lib.classify(&probe) == w.name() {
            correct += 1;
        }
    }
    assert!(correct >= 9, "only {correct}/10 classified correctly");
}

#[test]
fn fingerprinting_survives_partitioned_dsb_and_lsd() {
    // §XI's robustness claim: the channel works through the shared MITE /
    // rename even though DSB and LSD are partitioned — i.e. it also works
    // on machines with the LSD fused off entirely.
    let s = quick_sampler();
    let sets: Vec<Vec<Vec<f64>>> = cnn::models()
        .iter()
        .map(|w| s.trace_set(ProcessorModel::xeon_e2174g(), w, 2, 80))
        .collect();
    let d = distance_summary(&sets);
    assert!(d.separable());
}

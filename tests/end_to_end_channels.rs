//! End-to-end covert-channel integration tests spanning the whole stack:
//! ISA layout → frontend simulation → core timing → channel protocol →
//! threshold decoding (paper §V-§VII).

use leaky_frontends_repro::attacks::channels::mt::{MtChannel, MtKind};
use leaky_frontends_repro::attacks::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends_repro::attacks::channels::power::PowerChannel;
use leaky_frontends_repro::attacks::channels::slow_switch::SlowSwitchChannel;
use leaky_frontends_repro::attacks::params::{
    bits_to_bytes, bytes_to_bits, ChannelParams, EncodeMode, MessagePattern,
};
use leaky_frontends_repro::cpu::ProcessorModel;

fn params_for(kind: NonMtKind) -> ChannelParams {
    match kind {
        NonMtKind::Eviction => ChannelParams::eviction_defaults(),
        NonMtKind::Misalignment => ChannelParams::misalignment_defaults(),
    }
}

#[test]
fn every_non_mt_variant_works_on_every_machine() {
    let msg = MessagePattern::Alternating.generate(64, 0);
    for model in ProcessorModel::all() {
        for kind in [NonMtKind::Eviction, NonMtKind::Misalignment] {
            for mode in [EncodeMode::Stealthy, EncodeMode::Fast] {
                let mut ch = NonMtChannel::new(model, kind, mode, params_for(kind), 5);
                let run = ch.transmit(&msg);
                assert!(
                    run.error_rate() < 0.30,
                    "{} {kind} {mode}: error {:.1}%",
                    model.name,
                    run.error_rate() * 100.0
                );
                assert!(
                    run.rate_kbps() > 100.0,
                    "{} {kind} {mode}: rate {:.1} Kbps",
                    model.name,
                    run.rate_kbps()
                );
            }
        }
    }
}

#[test]
fn ascii_text_survives_the_fastest_channel() {
    let mut ch = NonMtChannel::new(
        ProcessorModel::xeon_e2288g(),
        NonMtKind::Misalignment,
        EncodeMode::Fast,
        ChannelParams::misalignment_defaults(),
        9,
    );
    let text = b"attack at dawn";
    let run = ch.transmit(&bytes_to_bits(text));
    assert_eq!(bits_to_bytes(run.received()), text);
}

#[test]
fn mt_channels_work_on_smt_machines_and_not_on_2288g() {
    let msg = MessagePattern::Alternating.generate(48, 0);
    for model in [
        ProcessorModel::gold_6226(),
        ProcessorModel::xeon_e2174g(),
        ProcessorModel::xeon_e2286g(),
    ] {
        for (kind, params) in [
            (MtKind::Eviction, ChannelParams::mt_defaults()),
            (
                MtKind::Misalignment,
                ChannelParams::mt_misalignment_defaults(),
            ),
        ] {
            let mut ch = MtChannel::new(model, kind, params, 5).expect("SMT available");
            let run = ch.transmit(&msg);
            assert!(
                run.error_rate() < 0.30,
                "{} MT {kind}: {:.1}%",
                model.name,
                run.error_rate() * 100.0
            );
        }
    }
    assert!(MtChannel::new(
        ProcessorModel::xeon_e2288g(),
        MtKind::Eviction,
        ChannelParams::mt_defaults(),
        5
    )
    .is_err());
}

#[test]
fn non_mt_is_roughly_an_order_faster_than_mt() {
    // Table III's central comparison.
    let msg = MessagePattern::Alternating.generate(64, 0);
    let mut non_mt = NonMtChannel::new(
        ProcessorModel::gold_6226(),
        NonMtKind::Eviction,
        EncodeMode::Fast,
        ChannelParams::eviction_defaults(),
        5,
    );
    let mut mt = MtChannel::new(
        ProcessorModel::gold_6226(),
        MtKind::Eviction,
        ChannelParams::mt_defaults(),
        5,
    )
    .unwrap();
    let r_non_mt = non_mt.transmit(&msg);
    let r_mt = mt.transmit(&msg);
    let ratio = r_non_mt.rate_kbps() / r_mt.rate_kbps();
    assert!(
        ratio > 3.0,
        "non-MT {:.0} Kbps vs MT {:.0} Kbps (ratio {ratio:.1})",
        r_non_mt.rate_kbps(),
        r_mt.rate_kbps()
    );
}

#[test]
fn slow_switch_matches_table4_regime() {
    let msg = MessagePattern::Alternating.generate(96, 0);
    for (model, max_err) in [
        (ProcessorModel::gold_6226(), 0.15),
        (ProcessorModel::xeon_e2288g(), 0.05),
    ] {
        let mut ch = SlowSwitchChannel::new(model, ChannelParams::slow_switch_defaults(), 5);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() <= max_err,
            "{}: {:.1}%",
            model.name,
            run.error_rate() * 100.0
        );
        assert!(
            run.rate_kbps() > 200.0 && run.rate_kbps() < 3000.0,
            "{}: {:.0} Kbps",
            model.name,
            run.rate_kbps()
        );
    }
}

#[test]
fn power_channels_are_rapl_limited() {
    // Table V: three orders of magnitude below the timing channels.
    let msg = MessagePattern::Alternating.generate(16, 0);
    let mut ch = PowerChannel::new(
        ProcessorModel::gold_6226(),
        NonMtKind::Eviction,
        ChannelParams::power_defaults(),
        5,
    );
    let run = ch.transmit(&msg);
    assert!(run.rate_kbps() < 5.0);
    assert!(run.rate_kbps() > 0.05);
    assert!(run.error_rate() < 0.4);
}

#[test]
fn rates_scale_with_clock_frequency() {
    // Identical protocol, different clocks: the 4.0 GHz E-2286G must beat
    // the 2.7 GHz Gold 6226 in absolute rate.
    let msg = MessagePattern::Alternating.generate(64, 0);
    let rate = |model| {
        let mut ch = NonMtChannel::new(
            model,
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            5,
        );
        ch.transmit(&msg).rate_kbps()
    };
    assert!(rate(ProcessorModel::xeon_e2286g()) > rate(ProcessorModel::gold_6226()));
}

#[test]
fn transmissions_are_reproducible_by_seed() {
    let msg = MessagePattern::Random.generate(48, 3);
    let run = |seed| {
        let mut ch = NonMtChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            seed,
        );
        let r = ch.transmit(&msg);
        (r.received().to_vec(), r.cycles())
    };
    assert_eq!(run(77), run(77));
    // Different seeds may still transmit in identical time when no
    // resampling triggers; only bit-exact reproducibility is guaranteed.
}

//! Differential property tests for the trace layer (the zero-cost
//! contract's functional half): a [`TraceHook`], in any mode, must
//! never change what the frontend computes. Reports are bit-identical
//! with tracing off, summary-traced and events-traced, and a drained
//! event stream folds to exactly the summary the summary hook kept
//! online.

use leaky_frontends_repro::frontend::{Frontend, FrontendConfig, ThreadId, TraceHook, TraceMode};
use leaky_frontends_repro::isa::{same_set_chain, Alignment, BlockChain, DsbSet};
use proptest::prelude::*;

/// Distinct chain base addresses (different code pages, so chains from
/// different bases never alias in the DSB).
const BASES: [u64; 3] = [0x0041_8000, 0x0082_0000, 0x00c3_0000];

fn chain(base: usize, set: u8, blocks: usize, misaligned: bool) -> BlockChain {
    same_set_chain(
        BASES[base],
        DsbSet::new(set),
        blocks,
        if misaligned {
            Alignment::Misaligned
        } else {
            Alignment::Aligned
        },
    )
}

proptest! {
    /// Three frontends run an identical random schedule of chains over
    /// one or two threads; the untraced one is the reference, and both
    /// traced ones must reproduce its reports exactly while the two
    /// trace modes must agree on the folded summary.
    #[test]
    fn tracing_is_invisible_to_the_simulation(
        specs in proptest::collection::vec(
            (0usize..3, 0u8..8, 1usize..10, any::<bool>()), 1..4),
        schedule in proptest::collection::vec(
            (any::<bool>(), 0usize..4, 1u64..40), 1..24),
        smt in any::<bool>(),
    ) {
        let chains: Vec<BlockChain> = specs
            .iter()
            .map(|&(b, s, n, m)| chain(b, s, n, m))
            .collect();
        let mut off = Frontend::new(FrontendConfig::default());
        let mut summary = Frontend::new(FrontendConfig::default());
        summary.set_trace(TraceHook::new(TraceMode::Summary));
        let mut events = Frontend::new(FrontendConfig::default());
        events.set_trace(TraceHook::new(TraceMode::Events));
        if smt {
            for fe in [&mut off, &mut summary, &mut events] {
                fe.set_active(ThreadId::T0, true);
                fe.set_active(ThreadId::T1, true);
            }
        }
        for &(t1, ci, iters) in &schedule {
            let tid = if t1 && smt { ThreadId::T1 } else { ThreadId::T0 };
            let ch = &chains[ci % chains.len()];
            let a = off.run_iterations(tid, ch, iters);
            let b = summary.run_iterations(tid, ch, iters);
            let c = events.run_iterations(tid, ch, iters);
            prop_assert_eq!(a, b, "summary-traced report diverged");
            prop_assert_eq!(a, c, "events-traced report diverged");
        }
        let s = summary.take_trace().summary().expect("summary mode folds online");
        let e = events.take_trace().summary().expect("events mode folds on demand");
        prop_assert_eq!(s, e, "event stream does not fold to the online summary");
    }
}

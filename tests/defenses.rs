//! Defense evaluation (paper §XII): what actually stops the frontend
//! attacks?
//!
//! The paper argues that (a) disabling SMT kills the MT attacks but not the
//! non-MT ones, (b) the existing DSB/LSD partitioning does *not* stop the
//! attacks, and (c) only making all frontend paths time-identical removes
//! the channel — at the cost of the multi-path design's entire benefit.
//! These tests demonstrate all three claims against the simulator.

use leaky_frontends_repro::attacks::channels::mt::{MtChannel, MtKind};
use leaky_frontends_repro::attacks::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends_repro::attacks::params::{ChannelParams, EncodeMode, MessagePattern};
use leaky_frontends_repro::cpu::ProcessorModel;
use leaky_frontends_repro::frontend::{CostModel, FrontendConfig, SmtDsbPolicy};
use leaky_frontends_repro::stats::threshold::CalibrationError;

#[test]
fn disabling_smt_stops_mt_but_not_non_mt_attacks() {
    // §XII: "the SMT can always be disabled ... which would eliminate the
    // MT attacks. Even with SMT disabled, the non-MT attacks are possible."
    let no_smt = ProcessorModel::xeon_e2288g();
    assert!(MtChannel::new(no_smt, MtKind::Eviction, ChannelParams::mt_defaults(), 1).is_err());

    let mut non_mt = NonMtChannel::new(
        no_smt,
        NonMtKind::Eviction,
        EncodeMode::Fast,
        ChannelParams::eviction_defaults(),
        1,
    );
    let run = non_mt.transmit(&MessagePattern::Alternating.generate(48, 0));
    assert!(
        run.error_rate() < 0.05,
        "non-MT attack must survive SMT-off"
    );
}

#[test]
fn set_partitioning_does_not_stop_the_mt_channel() {
    // §I: "the already partitioned DSB and LSB in Intel processors do not
    // provide a full protection as all our attacks work despite the
    // partitioning." Under the strict set-partitioned policy the partition
    // *transition* (activity detection) still carries the bit.
    let mut ch = MtChannel::new(
        ProcessorModel::gold_6226(),
        MtKind::Eviction,
        ChannelParams::mt_defaults(),
        3,
    )
    .unwrap();
    ch.set_frontend_config(FrontendConfig {
        dsb_policy: SmtDsbPolicy::SetPartitioned,
        ..FrontendConfig::default()
    });
    let run = ch.transmit(&MessagePattern::Alternating.generate(48, 0));
    assert!(
        run.error_rate() < 0.30,
        "set partitioning must not stop the channel ({:.1}% error)",
        run.error_rate() * 100.0
    );
}

#[test]
fn constant_time_frontend_kills_the_non_mt_channels() {
    // §XII: equalising the paths removes the signal. The attacker either
    // fails to calibrate (identical class means) or decodes noise.
    for kind in [NonMtKind::Eviction, NonMtKind::Misalignment] {
        let params = match kind {
            NonMtKind::Eviction => ChannelParams::eviction_defaults(),
            NonMtKind::Misalignment => ChannelParams::misalignment_defaults(),
        };
        let mut ch = NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            kind,
            EncodeMode::Stealthy, // the stealthier variant: equal dummy work
            params,
            5,
        )
        .with_frontend_config(
            FrontendConfig {
                costs: CostModel::constant_time(),
                ..FrontendConfig::default()
            },
            5,
        );
        match ch.try_calibrate() {
            Err(CalibrationError::DegenerateClasses) => {} // perfect defense
            Err(CalibrationError::EmptyClass) => panic!("harness bug"),
            Ok(()) => {
                // Timer noise may still produce a spurious "threshold";
                // the decoded message must then be garbage (~50% error).
                let msg = MessagePattern::Random.generate(64, 9);
                let run = ch.transmit(&msg);
                assert!(
                    run.error_rate() > 0.25,
                    "constant-time frontend leaked {kind}: {:.1}% error",
                    run.error_rate() * 100.0
                );
            }
        }
    }
}

#[test]
fn constant_time_frontend_sacrifices_the_performance_benefit() {
    // §XII's flip side: "Eliminating these timing or power signatures would
    // reduce the performance or power benefits." A DSB-resident loop on the
    // constant-time frontend is slower than on the real one.
    use leaky_frontends_repro::frontend::{Frontend, ThreadId};
    use leaky_frontends_repro::isa::{same_set_chain, Alignment, DsbSet};
    let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
    let mut fast = Frontend::new(FrontendConfig {
        lsd_enabled: false,
        ..FrontendConfig::default()
    });
    let mut defended = Frontend::new(FrontendConfig {
        lsd_enabled: false,
        costs: CostModel::constant_time(),
        ..FrontendConfig::default()
    });
    for _ in 0..4 {
        fast.run_iteration(ThreadId::T0, &chain);
        defended.run_iteration(ThreadId::T0, &chain);
    }
    let r_fast = fast.run_iteration(ThreadId::T0, &chain);
    let r_def = defended.run_iteration(ThreadId::T0, &chain);
    assert!(
        r_def.cycles > r_fast.cycles * 1.5,
        "defense must cost DSB throughput ({:.1} vs {:.1})",
        r_def.cycles,
        r_fast.cycles
    );
}

//! End-to-end coded transmission (§VI-B extension): channel codes wired
//! into the covert-channel transmit path via `Session`, evaluated over
//! the noisy MT channels — the regime the paper says coding should help.

use leaky_frontends_repro::attacks::channels::mt::MtNoise;
use leaky_frontends_repro::attacks::channels::{ChannelSpec, CovertChannel};
use leaky_frontends_repro::attacks::coding::{Code, Hamming74, Repetition, Uncoded};
use leaky_frontends_repro::attacks::params::{ChannelParams, MessagePattern};
use leaky_frontends_repro::attacks::session::Session;

/// A loud co-runner on top of the default MT jitter: the ~5-15%
/// uncoded-error regime (Table II's random-message rows) where channel
/// coding should earn its overhead.
fn loud_noise() -> MtNoise {
    MtNoise {
        burst_probability: 0.22,
        burst_relative: 0.30,
        desync_probability: 0.18,
        phase_slip_probability: 0.45,
    }
}

/// A noisy MT eviction channel at a small receiver footprint (weak
/// signal, Fig. 8's low-d regime) from the registry.
fn noisy_mt(seed: u64) -> Box<dyn CovertChannel> {
    ChannelSpec::new("mt-eviction")
        .params(ChannelParams::mt_defaults().with_d(2))
        .noise(loud_noise())
        .seed(seed)
        .build()
        .expect("Gold 6226 has SMT")
}

/// Data-layer error rate of transmitting `data` through `code` on a
/// fresh channel with `seed`.
fn coded_error(code: impl Code, data: &[bool], seed: u64) -> f64 {
    let mut ch = noisy_mt(seed);
    Session::new(ch.as_mut(), code)
        .send_bits(data)
        .data()
        .error_rate()
}

#[test]
fn repetition_beats_uncoded_over_the_noisy_mt_channel() {
    // Same data, same channel seed: the only difference is the code.
    // Repetition-3 majority voting must not lose to the raw stream, and
    // the raw stream must actually be noisy for the comparison to mean
    // anything.
    let data = MessagePattern::Random.generate(96, 11);
    let uncoded = coded_error(Uncoded, &data, 23);
    let coded = coded_error(Repetition::new(3), &data, 23);
    assert!(
        uncoded > 0.02,
        "MT channel too clean ({:.1}% error) to exercise coding",
        uncoded * 100.0
    );
    assert!(
        coded <= uncoded,
        "repetition-3 worsened errors: {:.2}% coded vs {:.2}% uncoded",
        coded * 100.0,
        uncoded * 100.0
    );
}

#[test]
fn hamming_beats_uncoded_over_the_noisy_mt_channel() {
    let data = MessagePattern::Random.generate(96, 13);
    let uncoded = coded_error(Uncoded, &data, 23);
    let coded = coded_error(Hamming74, &data, 23);
    assert!(
        uncoded > 0.02,
        "MT channel too clean ({:.1}% error) to exercise coding",
        uncoded * 100.0
    );
    assert!(
        coded <= uncoded,
        "hamming-7-4 worsened errors: {:.2}% coded vs {:.2}% uncoded",
        coded * 100.0,
        uncoded * 100.0
    );
}

#[test]
fn evaluation_charges_the_code_rate_exactly() {
    // The data layer and the raw layer share one wall clock, so the
    // Evaluation's rate must equal the raw channel rate scaled by
    // data bits / channel bits — exact code-rate (plus padding)
    // accounting, not an approximation.
    let data = MessagePattern::Random.generate(64, 5);
    let mut ch = noisy_mt(31);
    let run = Session::new(ch.as_mut(), Repetition::new(5)).send_bits(&data);
    assert_eq!(run.raw().sent().len(), data.len() * 5);
    assert_eq!(run.code_rate(), 0.2);
    let eval = run.evaluation();
    assert_eq!(eval.bits, data.len());
    let expected = run.raw().rate_kbps() * data.len() as f64 / run.raw().sent().len() as f64;
    assert!(
        (eval.rate_kbps - expected).abs() / expected < 1e-12,
        "data-layer rate {:.6} must be raw rate x code rate {:.6}",
        eval.rate_kbps,
        expected
    );
    // Hamming pads 64 data bits to 16 blocks x 7 = 112 channel bits; the
    // accounting must use the real padded length, not the nominal 4/7.
    let mut ch = noisy_mt(33);
    let run = Session::new(ch.as_mut(), Hamming74).send_bits(&data);
    assert_eq!(run.raw().sent().len(), 112);
    let expected = run.raw().rate_kbps() * 64.0 / 112.0;
    assert!((run.evaluation().rate_kbps - expected).abs() / expected < 1e-12);
}

#[test]
fn framed_bytes_survive_mt_noise_under_repetition() {
    // A framed payload over the noisy MT channel, protected by
    // repetition-5: the header and payload decode cleanly.
    let payload = b"dsb";
    let mut ch = noisy_mt(41);
    let run = Session::new(ch.as_mut(), Repetition::new(5)).send_bytes(payload);
    assert_eq!(run.payload(), Some(&payload[..]), "payload corrupted");
    let prov = run.data().provenance().expect("provenance attached");
    assert_eq!(prov.channel, "mt-eviction");
}

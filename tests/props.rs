//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use leaky_frontends_repro::cache::{CacheConfig, SetAssocCache};
use leaky_frontends_repro::frontend::{Frontend, FrontendConfig, ThreadId};
use leaky_frontends_repro::isa::{same_set_chain, Alignment, DsbSet, FrontendGeometry};
use leaky_frontends_repro::stats::{edit_distance, euclidean_distance, Histogram};
use proptest::prelude::*;

proptest! {
    /// Edit distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 0..40),
        b in proptest::collection::vec(any::<bool>(), 0..40),
        c in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        let ab = edit_distance(&a, &b);
        let bc = edit_distance(&b, &c);
        let ac = edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc);
        // Bounded by length difference below and max length above.
        prop_assert!(ab >= a.len().abs_diff(b.len()));
        prop_assert!(ab <= a.len().max(b.len()));
    }

    /// Euclidean distance: non-negativity, identity, symmetry.
    #[test]
    fn euclidean_distance_properties(
        a in proptest::collection::vec(-1e3f64..1e3, 1..24),
        b in proptest::collection::vec(-1e3f64..1e3, 1..24),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let d = euclidean_distance(a, b).unwrap();
        prop_assert!(d >= 0.0);
        prop_assert_eq!(euclidean_distance(a, a).unwrap(), 0.0);
        let d2 = euclidean_distance(b, a).unwrap();
        prop_assert!((d - d2).abs() < 1e-9);
    }

    /// LRU cache invariants: occupancy never exceeds ways; a just-accessed
    /// line is always resident and MRU; hits never evict.
    #[test]
    fn cache_lru_invariants(
        lines in proptest::collection::vec(0u64..64, 1..200),
        ways in 1usize..8,
        sets in 1usize..8,
    ) {
        let mut cache = SetAssocCache::new(CacheConfig {
            sets,
            ways,
            line_bytes: 64,
        });
        for &line in &lines {
            let was_resident = cache.contains_line(line);
            let outcome = cache.access_line(line);
            prop_assert_eq!(outcome.hit(), was_resident, "hit iff resident");
            prop_assert!(cache.contains_line(line));
            prop_assert_eq!(cache.lru_rank(line), Some(0), "just-accessed is MRU");
            if was_resident {
                prop_assert_eq!(outcome.evicted(), None, "hits never evict");
            }
            for s in 0..sets {
                prop_assert!(cache.set_occupancy(s) <= ways);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
    }

    /// Histogram conservation: every pushed sample lands exactly once.
    #[test]
    fn histogram_conserves_samples(
        samples in proptest::collection::vec(-50.0f64..150.0, 0..300),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(0.0, 100.0, bins);
        h.extend(samples.iter().copied());
        prop_assert_eq!(h.total(), samples.len() as u64);
        let in_range: u64 = (0..h.len()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(
            in_range + h.underflow() + h.overflow(),
            samples.len() as u64
        );
    }

    /// Frontend µop conservation: every µop of the chain is delivered by
    /// exactly one path, every iteration, whatever the layout.
    #[test]
    fn frontend_delivers_every_uop_exactly_once(
        set in 0u8..32,
        count in 1usize..10,
        aligned in any::<bool>(),
        iterations in 1usize..6,
    ) {
        let alignment = if aligned { Alignment::Aligned } else { Alignment::Misaligned };
        let chain = same_set_chain(0x0041_8000, DsbSet::new(set), count, alignment);
        let mut fe = Frontend::new(FrontendConfig::default());
        for _ in 0..iterations {
            let report = fe.run_iteration(ThreadId::T0, &chain);
            prop_assert_eq!(report.total_uops(), chain.total_uops() as u64);
        }
    }

    /// Chain-layout invariants: same-set chains really collide in one DSB
    /// set, never overlap in memory, and misalignment doubles the windows.
    #[test]
    fn chain_layout_invariants(
        set in 0u8..32,
        count in 1usize..12,
        base_page in 1u64..1000,
    ) {
        let base = base_page * 4096;
        let geom = FrontendGeometry::skylake();
        for alignment in [Alignment::Aligned, Alignment::Misaligned] {
            let chain = same_set_chain(base, DsbSet::new(set), count, alignment);
            prop_assert_eq!(chain.len(), count);
            for b in chain.blocks() {
                prop_assert_eq!(b.dsb_set().index(), set);
            }
            // Blocks are disjoint in memory.
            for w in chain.blocks().windows(2) {
                prop_assert!(w[0].end() <= w[1].base());
            }
            let expected_windows = match alignment {
                Alignment::Aligned => count,
                Alignment::Misaligned => 2 * count,
            };
            prop_assert_eq!(chain.window_count(), expected_windows);
            prop_assert_eq!(chain.dsb_lines(&geom), expected_windows);
        }
    }

    /// Deterministic replay: two frontends fed the same access pattern
    /// produce identical reports.
    #[test]
    fn frontend_is_deterministic(
        sets in proptest::collection::vec(0u8..32, 1..12),
    ) {
        let chains: Vec<_> = sets
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                same_set_chain(0x0041_8000 + i as u64 * 0x10_0000, DsbSet::new(s), 4, Alignment::Aligned)
            })
            .collect();
        let mut fe1 = Frontend::new(FrontendConfig::default());
        let mut fe2 = Frontend::new(FrontendConfig::default());
        for chain in &chains {
            let r1 = fe1.run_iteration(ThreadId::T0, chain);
            let r2 = fe2.run_iteration(ThreadId::T0, chain);
            prop_assert_eq!(r1, r2);
        }
    }
}

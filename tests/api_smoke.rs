//! Public-API smoke test (CI gate): every channel-registry entry builds
//! under every microarchitecture profile and round-trips one coded byte
//! through a `Session` — the whole redesigned surface (registry → spec →
//! trait object → coded session) in one sweep. A profile that defeats a
//! channel (failed calibration) is a valid outcome, not a failure; the
//! quiet `skylake` timing channels must additionally deliver the byte
//! intact.

use leaky_frontends_repro::attacks::channels::{ChannelSpec, REGISTRY};
use leaky_frontends_repro::attacks::coding::Repetition;
use leaky_frontends_repro::attacks::session::Session;
use leaky_frontends_repro::cpu::ProcessorModel;
use leaky_frontends_repro::uarch::UarchProfile;

#[test]
fn every_registry_entry_builds_and_round_trips_one_coded_byte() {
    let payload = [0xa5u8];
    for profile in UarchProfile::all() {
        for info in &REGISTRY {
            let label = format!("{} on {}", info.name, profile.key);
            // Each family's paper-preferred machine: the MT and power
            // evaluations run on the Gold 6226, the same-thread timing
            // channels on the E-2288G (Table III's non-MT reference).
            let model = if info.requires_smt || info.section == "VII" {
                ProcessorModel::gold_6226()
            } else {
                ProcessorModel::xeon_e2288g()
            };
            let mut ch = ChannelSpec::new(info.name)
                .model(model)
                .profile(profile)
                .seed(7)
                .build()
                .unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
            assert_eq!(ch.name(), info.name, "{label}");
            assert_eq!(ch.profile_key(), profile.key, "{label}");
            if ch.try_calibrate().is_err() {
                // A dead channel is the §XII defense succeeding; only the
                // cost-equalized profile may do that.
                assert_eq!(
                    profile.key, "constant_time",
                    "{label}: unexpectedly uncalibratable"
                );
                continue;
            }
            let run = Session::new(ch.as_mut(), Repetition::new(3)).send_bytes(&payload);
            // Framing: 16 header bits + 8 payload bits, tripled.
            assert_eq!(run.raw().sent().len(), 72, "{label}");
            let got = run
                .payload()
                .unwrap_or_else(|| panic!("{label}: no payload"));
            assert!(got.len() <= 1, "{label}: frame decoded too long");
            // The quiet same-thread timing channels on the default profile
            // must deliver the byte intact; MT and power channels carry
            // environmental noise (and perturbed profiles weaker signals),
            // so recovery there is best-effort.
            let quiet = !info.requires_smt && info.section != "VII";
            if quiet && profile.key == "skylake" {
                assert_eq!(got, payload, "{label}: payload corrupted");
                assert_eq!(run.data().error_rate(), 0.0, "{label}");
            }
        }
    }
}

//! Channel coding for the covert channels (paper §VI-B: "the simple
//! encoding can in future be replaced with other channel coding methods for
//! possibly faster transmission" — implemented here as an extension).
//!
//! Two classic codes are provided:
//!
//! * [`Repetition`] — each bit sent `k` times, majority-decoded; trades
//!   rate 1/k for exponentially better error rates;
//! * [`Hamming74`] — the (7,4) Hamming code: 4 data bits per 7 channel
//!   bits with single-error correction per block.
//!
//! Both implement [`Code`], so any channel's raw bit stream can be wrapped.

/// A binary channel code.
pub trait Code {
    /// Expands data bits into channel bits.
    fn encode(&self, data: &[bool]) -> Vec<bool>;
    /// Recovers data bits from (possibly corrupted) channel bits.
    fn decode(&self, channel: &[bool]) -> Vec<bool>;
    /// Code rate (data bits per channel bit).
    fn rate(&self) -> f64;
    /// Human-readable label (session provenance, sweep JSON).
    fn label(&self) -> String {
        "custom".to_string()
    }
}

/// The identity code: channel bits are data bits (rate 1). The uncoded
/// baseline a [`crate::session::Session`] compares coded runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Uncoded;

impl Code for Uncoded {
    fn encode(&self, data: &[bool]) -> Vec<bool> {
        data.to_vec()
    }

    fn decode(&self, channel: &[bool]) -> Vec<bool> {
        channel.to_vec()
    }

    fn rate(&self) -> f64 {
        1.0
    }

    fn label(&self) -> String {
        "uncoded".to_string()
    }
}

/// Repetition code: every data bit is transmitted `k` times and decoded by
/// majority vote.
///
/// # Examples
///
/// ```
/// use leaky_frontends::coding::{Code, Repetition};
///
/// let code = Repetition::new(3);
/// let mut tx = code.encode(&[true, false]);
/// tx[1] = false; // one corrupted repetition
/// assert_eq!(code.decode(&tx), vec![true, false]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repetition {
    k: usize,
}

impl Repetition {
    /// Creates a k-repetition code.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or zero (majority must be unambiguous).
    pub fn new(k: usize) -> Self {
        assert!(k % 2 == 1, "repetition factor must be odd");
        Repetition { k }
    }

    /// The repetition factor.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Code for Repetition {
    fn encode(&self, data: &[bool]) -> Vec<bool> {
        data.iter()
            .flat_map(|&b| std::iter::repeat_n(b, self.k))
            .collect()
    }

    fn decode(&self, channel: &[bool]) -> Vec<bool> {
        channel
            .chunks(self.k)
            .map(|chunk| chunk.iter().filter(|&&b| b).count() * 2 > chunk.len())
            .collect()
    }

    fn rate(&self) -> f64 {
        1.0 / self.k as f64
    }

    fn label(&self) -> String {
        format!("repetition-{}", self.k)
    }
}

/// The (7,4) Hamming code: corrects any single bit error per 7-bit block.
///
/// Data is padded with zeros to a multiple of 4 bits; callers that need
/// exact length should track it externally (e.g. via byte framing).
///
/// # Examples
///
/// ```
/// use leaky_frontends::coding::{Code, Hamming74};
///
/// let code = Hamming74;
/// let data = [true, false, true, true];
/// let mut tx = code.encode(&data);
/// tx[2] = !tx[2]; // flip any single bit
/// assert_eq!(&code.decode(&tx)[..4], &data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hamming74;

impl Code for Hamming74 {
    fn encode(&self, data: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(data.len().div_ceil(4) * 7);
        for chunk in data.chunks(4) {
            let d: [bool; 4] = [
                chunk.first().copied().unwrap_or(false),
                chunk.get(1).copied().unwrap_or(false),
                chunk.get(2).copied().unwrap_or(false),
                chunk.get(3).copied().unwrap_or(false),
            ];
            // Codeword layout [p1, p2, d1, p3, d2, d3, d4] (positions 1..7).
            let p1 = d[0] ^ d[1] ^ d[3];
            let p2 = d[0] ^ d[2] ^ d[3];
            let p3 = d[1] ^ d[2] ^ d[3];
            out.extend_from_slice(&[p1, p2, d[0], p3, d[1], d[2], d[3]]);
        }
        out
    }

    fn decode(&self, channel: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(channel.len() / 7 * 4);
        for block in channel.chunks(7) {
            if block.len() < 7 {
                break; // truncated trailing block: drop
            }
            // lint: allow(panic-path) — short blocks dropped two lines up
            let mut w: [bool; 7] = block.try_into().expect("length checked");
            // Syndrome: which parity checks fail (1-indexed position).
            let s1 = w[0] ^ w[2] ^ w[4] ^ w[6];
            let s2 = w[1] ^ w[2] ^ w[5] ^ w[6];
            let s3 = w[3] ^ w[4] ^ w[5] ^ w[6];
            let pos = (s1 as usize) | ((s2 as usize) << 1) | ((s3 as usize) << 2);
            if pos != 0 {
                w[pos - 1] = !w[pos - 1];
            }
            out.extend_from_slice(&[w[2], w[4], w[5], w[6]]);
        }
        out
    }

    fn rate(&self) -> f64 {
        4.0 / 7.0
    }

    fn label(&self) -> String {
        "hamming-7-4".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn repetition_roundtrip_clean() {
        let code = Repetition::new(5);
        let data = random_bits(64, 1);
        assert_eq!(code.decode(&code.encode(&data)), data);
        assert!((code.rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn repetition_corrects_minority_errors() {
        let code = Repetition::new(3);
        let data = random_bits(32, 2);
        let mut tx = code.encode(&data);
        // Corrupt one repetition of every bit.
        for i in 0..data.len() {
            tx[i * 3] = !tx[i * 3];
        }
        assert_eq!(code.decode(&tx), data);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_repetition_rejected() {
        let _ = Repetition::new(4);
    }

    #[test]
    fn hamming_roundtrip_clean() {
        let data = random_bits(64, 3);
        let code = Hamming74;
        assert_eq!(code.decode(&code.encode(&data)), data);
    }

    #[test]
    fn hamming_corrects_any_single_error_per_block() {
        let code = Hamming74;
        let data = random_bits(4, 4);
        let clean = code.encode(&data);
        for i in 0..7 {
            let mut tx = clean.clone();
            tx[i] = !tx[i];
            assert_eq!(code.decode(&tx), data, "error at position {i}");
        }
    }

    #[test]
    fn hamming_pads_partial_blocks_with_zeros() {
        let code = Hamming74;
        let data = [true, true]; // 2 bits -> padded to 4
        let decoded = code.decode(&code.encode(&data));
        assert_eq!(&decoded[..2], &data);
        assert_eq!(&decoded[2..], &[false, false]);
    }

    #[test]
    fn coded_transmission_beats_raw_over_a_noisy_channel() {
        // Simulate a binary symmetric channel at 8% flip probability: the
        // regime of the paper's noisy MT channels.
        let flip_p = 0.08;
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_bits(400, 6);

        let transmit = |bits: &[bool], rng: &mut StdRng| -> Vec<bool> {
            bits.iter().map(|&b| b ^ rng.gen_bool(flip_p)).collect()
        };

        let raw_rx = transmit(&data, &mut rng);
        let raw_errors = data.iter().zip(&raw_rx).filter(|(a, b)| a != b).count();

        let code = Repetition::new(5);
        let coded_rx = code.decode(&transmit(&code.encode(&data), &mut rng));
        let coded_errors = data.iter().zip(&coded_rx).filter(|(a, b)| a != b).count();

        assert!(
            coded_errors * 4 < raw_errors,
            "coding must slash errors ({coded_errors} vs {raw_errors})"
        );
    }
}

//! Application fingerprinting through the attacker's own IPC (paper §XI).
//!
//! The attacker loops through 100 `nop`s on one hardware thread — too many
//! µops for the LSD, resident in two L1I lines and the DSB, no backend
//! traffic — and samples its own instructions-per-cycle at 10 Hz using only
//! a low-precision timer. A victim on the sibling thread modulates the
//! shared frontend; the attacker's IPC waveform fingerprints the victim
//! (Figs. 11 and 12; §XI-B mobile benchmarks, §XI-C CNN models).

use leaky_cpu::{Core, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{Addr, Block, BlockChain};
use leaky_stats::distance::mean_pairwise_distance;
use leaky_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of nops in the attacker's probe loop (§XI-A).
const PROBE_NOPS: usize = 100;

/// The IPC-trace sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpcSampler {
    /// Seconds per sample (paper: 0.1 s — a 10 Hz timer).
    pub window_seconds: f64,
    /// Samples per trace (paper Fig. 11 shows 100).
    pub samples: usize,
    /// Relative measurement noise on each IPC sample (low-precision timer
    /// quantisation and residual system noise).
    pub noise_rel_sigma: f64,
}

impl Default for IpcSampler {
    fn default() -> Self {
        IpcSampler {
            window_seconds: 0.1,
            samples: 100,
            noise_rel_sigma: 0.012,
        }
    }
}

impl IpcSampler {
    /// The attacker's probe loop: 100 nops + loop branch.
    ///
    /// # Panics
    ///
    /// Panics if the sampler's probe length is zero (`Block::nops`).
    pub fn probe_chain() -> BlockChain {
        BlockChain::new(vec![Block::nops(Addr::new(0x0010_0000), PROBE_NOPS)])
    }

    /// Measures the attacker's *solo* baseline IPC (paper: 3.58).
    ///
    /// # Panics
    ///
    /// Panics if the sampler's probe length is zero (`Block::nops`).
    pub fn baseline_ipc(&self, model: ProcessorModel, seed: u64) -> f64 {
        let mut core = Core::new(model, seed);
        let chain = Self::probe_chain();
        core.run_loop(ThreadId::T0, &chain, 8); // warm
        let window = self.window_seconds * model.freq_hz();
        let run = core.run_for_cycles(ThreadId::T0, &chain, window);
        run.ipc(PROBE_NOPS as u64 + 1)
    }

    /// Records the attacker's IPC trace while `victim` runs on the sibling
    /// thread. Each 100 ms window applies the victim's demand level for
    /// that window and samples the attacker's IPC.
    ///
    /// # Panics
    ///
    /// Panics if the sampler's probe length is zero (`Block::nops`).
    pub fn trace(&self, model: ProcessorModel, victim: &Workload, seed: u64) -> Vec<f64> {
        let mut core = Core::new(model, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1f0_57a7);
        let chain = Self::probe_chain();
        // The victim occupies the sibling thread for the whole trace.
        core.set_active(ThreadId::T0, true);
        core.set_active(ThreadId::T1, true);
        core.run_loop(ThreadId::T0, &chain, 8); // warm under SMT
        let window = self.window_seconds * model.freq_hz();
        (0..self.samples)
            .map(|i| {
                core.set_sibling_demand(ThreadId::T0, victim.demand_at(i));
                let run = core.run_for_cycles(ThreadId::T0, &chain, window);
                let ipc = run.ipc(PROBE_NOPS as u64 + 1);
                ipc * (1.0 + gaussian(&mut rng) * self.noise_rel_sigma)
            })
            .collect()
    }

    /// Collects `trials` traces per workload (different seeds — different
    /// runs of the attack).
    ///
    /// # Panics
    ///
    /// Panics if the sampler's probe length is zero (`Block::nops`).
    pub fn trace_set(
        &self,
        model: ProcessorModel,
        victim: &Workload,
        trials: usize,
        seed: u64,
    ) -> Vec<Vec<f64>> {
        (0..trials)
            .map(|t| self.trace(model, victim, seed + t as u64))
            .collect()
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Intra- vs inter-workload Euclidean distances (the §XI-B / Fig. 12
/// metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceSummary {
    /// Mean distance between traces of the *same* workload.
    pub intra: f64,
    /// Mean distance between traces of *different* workloads.
    pub inter: f64,
}

impl DistanceSummary {
    /// Whether fingerprinting separates the workloads (inter ≫ intra).
    pub fn separable(&self) -> bool {
        self.inter > self.intra * 1.5
    }
}

/// Computes intra/inter distance over a set of per-workload trace sets.
///
/// # Panics
///
/// Panics if traces have inconsistent lengths (programming error).
pub fn distance_summary(trace_sets: &[Vec<Vec<f64>>]) -> DistanceSummary {
    let mut intra = 0.0;
    let mut intra_n = 0usize;
    for set in trace_sets {
        intra += mean_pairwise_distance(set, set).expect("equal-length traces");
        intra_n += 1;
    }
    let mut inter = 0.0;
    let mut inter_n = 0usize;
    for i in 0..trace_sets.len() {
        for j in 0..trace_sets.len() {
            if i == j {
                continue;
            }
            inter += mean_pairwise_distance(&trace_sets[i], &trace_sets[j])
                .expect("equal-length traces");
            inter_n += 1;
        }
    }
    DistanceSummary {
        intra: intra / intra_n.max(1) as f64,
        inter: inter / inter_n.max(1) as f64,
    }
}

/// A nearest-reference classifier over IPC traces.
#[derive(Debug, Clone)]
pub struct FingerprintLibrary {
    references: Vec<(String, Vec<Vec<f64>>)>,
}

impl FingerprintLibrary {
    /// Builds a library from labelled reference trace sets.
    pub fn new(references: Vec<(String, Vec<Vec<f64>>)>) -> Self {
        assert!(!references.is_empty(), "library needs references");
        FingerprintLibrary { references }
    }

    /// Classifies a trace by minimum mean distance to each reference set.
    ///
    /// # Panics
    ///
    /// Panics if probe and reference traces have inconsistent lengths
    /// (`mean_pairwise_distance`).
    pub fn classify(&self, trace: &[f64]) -> &str {
        let probe = vec![trace.to_vec()];
        self.references
            .iter()
            .map(|(name, set)| {
                let d = mean_pairwise_distance(&probe, set).expect("equal-length traces");
                (name.as_str(), d)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances")) // lint: allow(panic-path) — simulated IPC distances are always finite
            .expect("non-empty library") // lint: allow(panic-path) — non-emptiness asserted in `new`
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_workloads::{cnn, mobile};

    fn fast_sampler() -> IpcSampler {
        IpcSampler {
            window_seconds: 0.002, // shrink windows to keep tests quick
            samples: 40,
            ..IpcSampler::default()
        }
    }

    #[test]
    fn baseline_ipc_near_four() {
        let s = fast_sampler();
        let ipc = s.baseline_ipc(ProcessorModel::gold_6226(), 1);
        assert!((3.0..=4.2).contains(&ipc), "baseline IPC {ipc:.2}");
    }

    #[test]
    fn smt_traces_fluctuate_below_baseline() {
        let s = fast_sampler();
        let baseline = s.baseline_ipc(ProcessorModel::gold_6226(), 1);
        let trace = s.trace(ProcessorModel::gold_6226(), &cnn::alexnet(), 2);
        let max = trace.iter().cloned().fold(f64::MIN, f64::max);
        let min = trace.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max < baseline * 0.75, "SMT must roughly halve IPC");
        assert!(max - min > 0.1, "victim phases must show in the trace");
    }

    #[test]
    fn cnn_models_are_separable() {
        let s = fast_sampler();
        let sets: Vec<Vec<Vec<f64>>> = cnn::models()
            .iter()
            .map(|w| s.trace_set(ProcessorModel::gold_6226(), w, 3, 100))
            .collect();
        let d = distance_summary(&sets);
        assert!(
            d.separable(),
            "inter {:.3} must exceed intra {:.3}",
            d.inter,
            d.intra
        );
    }

    #[test]
    fn classifier_identifies_all_cnn_models() {
        let s = fast_sampler();
        let refs: Vec<(String, Vec<Vec<f64>>)> = cnn::models()
            .iter()
            .map(|w| {
                (
                    w.name().to_string(),
                    s.trace_set(ProcessorModel::gold_6226(), w, 3, 200),
                )
            })
            .collect();
        let lib = FingerprintLibrary::new(refs);
        for w in cnn::models() {
            let probe = s.trace(ProcessorModel::gold_6226(), &w, 999);
            assert_eq!(lib.classify(&probe), w.name());
        }
    }

    #[test]
    fn mobile_benchmarks_are_separable() {
        let s = IpcSampler {
            samples: 30,
            ..fast_sampler()
        };
        let sets: Vec<Vec<Vec<f64>>> = mobile::benchmarks()
            .iter()
            .map(|w| s.trace_set(ProcessorModel::gold_6226(), w, 2, 300))
            .collect();
        let d = distance_summary(&sets);
        assert!(d.separable());
    }
}

//! Fingerprinting attacks: microcode-patch detection (paper §X) and
//! application fingerprinting through the IPC side channel (paper §XI).

pub mod ipc;
pub mod microcode;

//! Microcode-patch fingerprinting (paper §X, Fig. 10).
//!
//! The newer Gold 6226 microcode (patch2) silently disables the LSD. An
//! attacker distinguishes the patches by timing (or measuring the power of)
//! a loop that *fits* the LSD and one that *exceeds* it: with the LSD
//! enabled the small loop streams at LSD pace; with it disabled the small
//! loop falls back to the DSB — a clearly different per-µop time and power
//! draw. The large loop behaves identically under both patches and serves
//! as the attacker's reference.

use leaky_cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{same_set_chain, Alignment, BlockChain, DsbSet};

/// Timing and power observations for one core under test (the four bars of
/// Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrocodeObservation {
    /// Mean cycles per block for the loop that fits the LSD.
    pub small_loop_cycles_per_block: f64,
    /// Mean cycles per block for the loop that exceeds LSD capacity.
    pub large_loop_cycles_per_block: f64,
    /// Mean package watts while running the small loop.
    pub small_loop_watts: f64,
    /// Mean package watts while running the large loop.
    pub large_loop_watts: f64,
}

/// Microcode-patch fingerprinter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrocodeFingerprint {
    /// Warm iterations before measuring.
    pub warmup: u64,
    /// Measured iterations.
    pub iterations: u64,
}

impl Default for MicrocodeFingerprint {
    fn default() -> Self {
        MicrocodeFingerprint {
            warmup: 8,
            iterations: 200,
        }
    }
}

impl MicrocodeFingerprint {
    /// The probe loop that fits the LSD: 8 same-set mix blocks
    /// (40 µops ≤ 64).
    fn small_chain() -> BlockChain {
        same_set_chain(0x0041_8000, DsbSet::new(5), 8, Alignment::Aligned)
    }

    /// The probe loop that exceeds LSD capacity: 16 blocks spread over two
    /// sets (80 µops > 64), still DSB-resident so the comparison isolates
    /// the LSD.
    fn large_chain() -> BlockChain {
        let a = same_set_chain(0x0082_0000, DsbSet::new(5), 8, Alignment::Aligned);
        let b = same_set_chain(0x00c3_0000, DsbSet::new(21), 8, Alignment::Aligned);
        a.concat(b)
    }

    /// Collects the Fig. 10 observation from a core.
    ///
    /// # Panics
    ///
    /// Panics on a DSB set index ≥ 32 (`DsbSet::new`).
    pub fn observe(&self, core: &mut Core) -> MicrocodeObservation {
        let tid = ThreadId::T0;
        let small = Self::small_chain();
        let large = Self::large_chain();

        core.run_loop(tid, &small, self.warmup);
        let t0 = core.rdtscp(tid);
        let run_small = core.run_loop(tid, &small, self.iterations);
        let t1 = core.rdtscp(tid);
        let small_cycles = (t1 - t0).max(1.0) / (self.iterations * small.len() as u64) as f64;
        let small_watts = core.mean_power_watts(&run_small.report);

        core.run_loop(tid, &large, self.warmup);
        let t2 = core.rdtscp(tid);
        let run_large = core.run_loop(tid, &large, self.iterations);
        let t3 = core.rdtscp(tid);
        let large_cycles = (t3 - t2).max(1.0) / (self.iterations * large.len() as u64) as f64;
        let large_watts = core.mean_power_watts(&run_large.report);

        MicrocodeObservation {
            small_loop_cycles_per_block: small_cycles,
            large_loop_cycles_per_block: large_cycles,
            small_loop_watts: small_watts,
            large_loop_watts: large_watts,
        }
    }

    /// Classifies the patch from an observation. With the LSD enabled
    /// (patch1), the small loop runs at LSD pace — *slower per block* than
    /// the large loop's DSB streaming and at lower power; with the LSD
    /// disabled (patch2), both loops stream from the DSB and the timing
    /// ratio collapses toward 1. The paper notes timing is the more
    /// reliable indicator (§X).
    pub fn classify(&self, obs: &MicrocodeObservation) -> MicrocodePatch {
        let ratio = obs.small_loop_cycles_per_block / obs.large_loop_cycles_per_block;
        if ratio > 1.4 {
            MicrocodePatch::Patch1
        } else {
            MicrocodePatch::Patch2
        }
    }

    /// End-to-end fingerprint of an (unknown-patch) core.
    ///
    /// # Panics
    ///
    /// Panics if probe and reference traces have inconsistent lengths
    /// (`mean_pairwise_distance`).
    pub fn fingerprint(&self, core: &mut Core) -> MicrocodePatch {
        let obs = self.observe(core);
        self.classify(&obs)
    }

    /// Accuracy over `trials` independent cores per patch — the §X claim
    /// is that the patches are "clearly" distinguishable.
    ///
    /// # Panics
    ///
    /// Panics if probe and reference traces have inconsistent lengths
    /// (`mean_pairwise_distance`).
    pub fn accuracy(&self, model: ProcessorModel, trials: u64) -> f64 {
        let mut correct = 0u64;
        for t in 0..trials {
            for patch in [MicrocodePatch::Patch1, MicrocodePatch::Patch2] {
                let mut core = Core::with_microcode(model, patch, 1000 + t);
                if self.fingerprint(&mut core) == patch {
                    correct += 1;
                }
            }
        }
        correct as f64 / (2 * trials) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch1_small_loop_streams_lsd_slower_than_dsb() {
        let fp = MicrocodeFingerprint::default();
        let mut core = Core::with_microcode(ProcessorModel::gold_6226(), MicrocodePatch::Patch1, 3);
        let obs = fp.observe(&mut core);
        assert!(
            obs.small_loop_cycles_per_block > obs.large_loop_cycles_per_block * 1.4,
            "LSD pace {:.2} vs DSB pace {:.2}",
            obs.small_loop_cycles_per_block,
            obs.large_loop_cycles_per_block
        );
        // Fig. 10(b): LSD draws less power than DSB/MITE delivery.
        assert!(obs.small_loop_watts < obs.large_loop_watts);
    }

    #[test]
    fn patch2_ratio_collapses() {
        let fp = MicrocodeFingerprint::default();
        let mut core = Core::with_microcode(ProcessorModel::gold_6226(), MicrocodePatch::Patch2, 3);
        let obs = fp.observe(&mut core);
        let ratio = obs.small_loop_cycles_per_block / obs.large_loop_cycles_per_block;
        assert!(
            (0.6..=1.4).contains(&ratio),
            "patch2 small/large ratio {ratio:.2}"
        );
    }

    #[test]
    fn fingerprint_is_essentially_perfect() {
        // §X: "attackers can clearly differentiate which patch has been
        // applied".
        let fp = MicrocodeFingerprint::default();
        let acc = fp.accuracy(ProcessorModel::gold_6226(), 10);
        assert!(acc > 0.95, "accuracy {acc}");
    }
}

//! Coded transmission sessions: [`crate::coding::Code`]s wired into the
//! covert-channel transmit path (§VI-B's "the simple encoding can in
//! future be replaced with other channel coding methods").
//!
//! A [`Session`] borrows any [`CovertChannel`], expands data bits through
//! a channel code, transmits the coded stream, and decodes what the
//! receiver heard — reporting both layers: the raw channel-bit run and
//! the data-bit run whose rate reflects the code overhead. Byte payloads
//! ride a small frame (a 16-bit length header) so the receiver knows
//! where the payload ends without an out-of-band length channel.
//!
//! # Examples
//!
//! ```
//! use leaky_frontends::channels::ChannelSpec;
//! use leaky_frontends::coding::Repetition;
//! use leaky_frontends::session::Session;
//!
//! let mut ch = ChannelSpec::new("non-mt-fast-eviction").seed(7).build().unwrap();
//! let run = Session::new(ch.as_mut(), Repetition::new(3)).send_bytes(b"hi");
//! assert_eq!(run.payload(), Some(&b"hi"[..]));
//! // Three channel bits carry one data bit: the data-layer rate pays 3x.
//! assert!(run.data().rate_kbps() < run.raw().rate_kbps());
//! ```

use crate::channels::CovertChannel;
use crate::coding::Code;
use crate::params::{bits_to_bytes, bytes_to_bits};
use crate::run::{ChannelRun, Evaluation};

/// Frame header: payload byte count, 16 bits MSB-first.
const LEN_HEADER_BITS: usize = 16;

/// A coded transmission session over a borrowed channel.
pub struct Session<'a, C: Code> {
    channel: &'a mut dyn CovertChannel,
    code: C,
}

impl<'a, C: Code> Session<'a, C> {
    /// Wraps a channel and a code. The channel is borrowed, so one
    /// calibrated channel can host many sessions (and codes) in turn.
    pub fn new(channel: &'a mut dyn CovertChannel, code: C) -> Self {
        Session { channel, code }
    }

    /// Transmits raw data bits through the code, without framing: the
    /// receiver is assumed to know the data length. The decoded stream
    /// is truncated to the sent length (block codes may pad).
    ///
    /// # Panics
    ///
    /// Panics if calibration found indistinguishable bit classes
    /// (`CovertChannel::transmit`).
    pub fn send_bits(&mut self, data: &[bool]) -> SessionRun {
        self.run(data, None)
    }

    /// Transmits a byte payload with framing: a 16-bit length header
    /// precedes the payload so the receiving side can recover the byte
    /// boundary from the bit stream alone.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds the 16-bit frame limit (65 535 bytes).
    pub fn send_bytes(&mut self, payload: &[u8]) -> SessionRun {
        assert!(
            payload.len() <= u16::MAX as usize,
            "payload exceeds the 16-bit frame limit"
        );
        let mut frame = bytes_to_bits(&(payload.len() as u16).to_be_bytes());
        frame.extend(bytes_to_bits(payload));
        self.run(&frame, Some(payload.len()))
    }

    fn run(&mut self, data: &[bool], framed_len: Option<usize>) -> SessionRun {
        let coded = self.code.encode(data);
        let raw = self.channel.transmit(&coded);
        let mut decoded = self.code.decode(raw.received());
        decoded.truncate(data.len());
        let payload = framed_len.is_some().then(|| {
            // The Code trait imposes no length contract on decode(); a
            // stream too short for even the header recovers zero bytes.
            if decoded.len() < LEN_HEADER_BITS {
                return Vec::new();
            }
            let header = &decoded[..LEN_HEADER_BITS];
            let mut len = header
                .iter()
                .fold(0usize, |acc, &b| (acc << 1) | b as usize);
            // A corrupted header cannot demand more bytes than arrived.
            let available = (decoded.len() - LEN_HEADER_BITS) / 8;
            len = len.min(available);
            bits_to_bytes(&decoded[LEN_HEADER_BITS..LEN_HEADER_BITS + len * 8])
        });
        let data_run = ChannelRun::new(data.to_vec(), decoded, raw.cycles(), raw.freq_hz());
        let data_run = match raw.provenance() {
            Some(p) => data_run.with_provenance(p.clone()),
            None => data_run,
        };
        SessionRun {
            raw,
            data: data_run,
            code: self.code.label(),
            code_rate: self.code.rate(),
            payload,
        }
    }
}

/// The outcome of one coded transmission: the raw channel-bit layer and
/// the decoded data-bit layer, sharing one wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRun {
    raw: ChannelRun,
    data: ChannelRun,
    code: String,
    code_rate: f64,
    payload: Option<Vec<u8>>,
}

impl SessionRun {
    /// The channel-bit layer: coded bits sent vs received, raw rate.
    pub fn raw(&self) -> &ChannelRun {
        &self.raw
    }

    /// The data-bit layer: data bits in vs decoded bits out, over the
    /// same wall time — so its rate and [`Evaluation`] charge the code's
    /// redundancy (and any framing) against throughput exactly.
    pub fn data(&self) -> &ChannelRun {
        &self.data
    }

    /// The code's label (e.g. `"repetition-3"`).
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The code's rate (data bits per channel bit).
    pub fn code_rate(&self) -> f64 {
        self.code_rate
    }

    /// The recovered byte payload of a framed [`Session::send_bytes`]
    /// transmission (`None` for unframed bit sends). Channel errors in
    /// the header or body may shorten or corrupt it — that is the
    /// attack failing, not the harness.
    pub fn payload(&self) -> Option<&[u8]> {
        self.payload.as_deref()
    }

    /// Data-layer summary metrics (the code-rate-discounted numbers a
    /// result table reports).
    pub fn evaluation(&self) -> Evaluation {
        self.data.evaluation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::non_mt::{NonMtChannel, NonMtKind};
    use crate::coding::{Hamming74, Repetition, Uncoded};
    use crate::params::{ChannelParams, EncodeMode, MessagePattern};
    use leaky_cpu::ProcessorModel;

    fn quiet_channel(seed: u64) -> NonMtChannel {
        NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            seed,
        )
    }

    #[test]
    fn framed_bytes_roundtrip_on_a_quiet_channel() {
        let mut ch = quiet_channel(7);
        let payload = b"leaky";
        let run = Session::new(&mut ch, Repetition::new(3)).send_bytes(payload);
        assert_eq!(run.payload(), Some(&payload[..]));
        assert_eq!(run.code(), "repetition-3");
        assert_eq!(run.data().error_rate(), 0.0);
        // Frame = 16 header bits + 40 payload bits, each tripled.
        assert_eq!(run.raw().sent().len(), (16 + 40) * 3);
        assert_eq!(run.data().sent().len(), 16 + 40);
    }

    #[test]
    fn data_layer_charges_the_code_rate_exactly() {
        // Both layers share one wall clock, so data rate / raw rate must
        // equal data bits / channel bits — the code rate, exactly (the
        // Evaluation accounting of the redundancy overhead).
        let mut ch = quiet_channel(8);
        let data = MessagePattern::Random.generate(40, 2);
        let run = Session::new(&mut ch, Repetition::new(5)).send_bits(&data);
        assert_eq!(run.raw().sent().len(), data.len() * 5);
        let expected = run.raw().rate_kbps() * run.code_rate();
        assert!(
            (run.data().rate_kbps() - expected).abs() / expected < 1e-12,
            "data {:.6} vs raw*rate {:.6} Kbps",
            run.data().rate_kbps(),
            expected
        );
        assert_eq!(run.evaluation().bits, data.len());
        assert_eq!(run.evaluation().rate_kbps, run.data().rate_kbps());
    }

    #[test]
    fn unframed_bits_truncate_block_padding() {
        let mut ch = quiet_channel(9);
        let data = MessagePattern::Random.generate(10, 4); // not a multiple of 4
        let run = Session::new(&mut ch, Hamming74).send_bits(&data);
        assert_eq!(run.data().sent(), &data[..]);
        assert_eq!(run.data().received().len(), data.len());
        assert_eq!(run.payload(), None);
    }

    #[test]
    fn uncoded_session_is_the_identity_layer() {
        let mut ch = quiet_channel(11);
        let data = MessagePattern::Alternating.generate(24, 0);
        let run = Session::new(&mut ch, Uncoded).send_bits(&data);
        assert_eq!(run.raw().sent(), run.data().sent());
        assert_eq!(run.code_rate(), 1.0);
        assert_eq!(run.data().rate_kbps(), run.raw().rate_kbps());
    }

    #[test]
    fn provenance_flows_to_both_layers() {
        let mut ch = quiet_channel(13);
        let run = Session::new(&mut ch, Repetition::new(3)).send_bytes(&[0xa5]);
        for layer in [run.raw(), run.data()] {
            let p = layer.provenance().expect("provenance attached");
            assert_eq!(p.channel, "non-mt-fast-eviction");
            assert_eq!(p.profile, "skylake");
        }
    }

    #[test]
    fn short_decode_streams_recover_an_empty_payload_without_panicking() {
        // The Code trait imposes no length contract: a decoder may
        // return fewer bits than the frame header needs. That is a
        // corrupted frame (empty payload), not a harness panic.
        #[derive(Debug)]
        struct Truncating;
        impl Code for Truncating {
            fn encode(&self, data: &[bool]) -> Vec<bool> {
                data.to_vec()
            }
            fn decode(&self, channel: &[bool]) -> Vec<bool> {
                channel.iter().take(5).copied().collect()
            }
            fn rate(&self) -> f64 {
                1.0
            }
        }
        let mut ch = quiet_channel(17);
        let run = Session::new(&mut ch, Truncating).send_bytes(&[0x5a]);
        assert_eq!(run.payload(), Some(&[][..]));
        assert_eq!(run.code(), "custom");
    }

    #[test]
    #[should_panic(expected = "frame limit")]
    fn oversized_payloads_are_rejected() {
        let mut ch = quiet_channel(15);
        let big = vec![0u8; 70_000];
        let _ = Session::new(&mut ch, Uncoded).send_bytes(&big);
    }
}

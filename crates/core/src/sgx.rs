//! SGX enclave exfiltration attacks (paper §VIII).
//!
//! The sender runs *inside* an enclave and modulates frontend paths; the
//! receiver decodes from outside. Two settings:
//!
//! * **non-MT** (§VIII-2): the receiver triggers the enclave and times the
//!   whole call (one `EENTER`/`EEXIT` per bit); the signal is the sender's
//!   internal interference, so it survives disabled hyper-threading.
//! * **MT** (§VIII-1): the sender thread stays inside the enclave and
//!   encodes continuously; the receiver on the sibling thread times its own
//!   loop, observing DSB partitioning and evictions.

use leaky_cpu::{Core, ProcessorModel, ThreadWork};
use leaky_frontend::ThreadId;
use leaky_isa::{BlockChain, FrontendGeometry};
use leaky_sgx::Enclave;
use leaky_stats::ThresholdDecoder;

use crate::channels::non_mt::NonMtKind;
use crate::channels::{calibrate_decoder, eviction_layout, misalignment_layout};
use crate::params::{ChannelParams, EncodeMode};
use crate::run::ChannelRun;

const CALIBRATION_BITS: usize = 16;

/// Errors from SGX attack construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgxAttackError {
    /// The processor lacks SGX (Gold 6226 in Table I).
    NoSgx {
        /// Model name.
        model: &'static str,
    },
    /// MT attack requested on a machine with hyper-threading disabled.
    NoSmt {
        /// Model name.
        model: &'static str,
    },
}

impl std::fmt::Display for SgxAttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxAttackError::NoSgx { model } => write!(f, "{model} has no SGX support"),
            SgxAttackError::NoSmt { model } => {
                write!(f, "{model} has hyper-threading disabled")
            }
        }
    }
}

impl std::error::Error for SgxAttackError {}

/// Non-MT SGX covert channel (§VIII-2): one enclave entry and exit per bit,
/// timed from outside.
#[derive(Debug, Clone)]
pub struct SgxNonMtChannel {
    core: Core,
    enclave: Enclave,
    params: ChannelParams,
    mode: EncodeMode,
    recv: BlockChain,
    send_one: BlockChain,
    send_zero: BlockChain,
    decoder: Option<ThresholdDecoder>,
}

impl SgxNonMtChannel {
    /// Builds the channel.
    ///
    /// # Errors
    ///
    /// Returns [`SgxAttackError::NoSgx`] for non-SGX processors.
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn new(
        model: ProcessorModel,
        kind: NonMtKind,
        mode: EncodeMode,
        params: ChannelParams,
        seed: u64,
    ) -> Result<Self, SgxAttackError> {
        if !model.sgx {
            return Err(SgxAttackError::NoSgx { model: model.name });
        }
        let geom = FrontendGeometry::skylake();
        params.validate(geom.dsb_ways, kind == NonMtKind::Misalignment);
        let (recv, send_one, send_zero) = match kind {
            NonMtKind::Eviction => {
                let l = eviction_layout(&params, &geom);
                (l.recv, l.send_one, l.send_zero)
            }
            NonMtKind::Misalignment => {
                let l = misalignment_layout(&params, &geom);
                (l.recv, l.send_one, l.send_zero)
            }
        };
        Ok(SgxNonMtChannel {
            core: Core::new(model, seed),
            enclave: Enclave::default(),
            params,
            mode,
            recv,
            send_one,
            send_zero,
            decoder: None,
        })
    }

    /// Times one whole enclave call that runs `p` Init/Encode/Decode rounds
    /// for bit `m` inside.
    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let t0 = self.core.rdtscp(tid);
        let recv = &self.recv;
        let send_one = &self.send_one;
        let send_zero = &self.send_zero;
        let rounds = self.params.p;
        let mode = self.mode;
        self.enclave.call(&mut self.core, tid, |core, tid| {
            // Simulate a prefix exactly, then fast-forward the steady tail
            // (the enclave body repeats identical rounds).
            let warm = 24u64.min(rounds);
            let mut last_cycles = 0.0;
            let mut last_report = leaky_frontend::IterationReport::default();
            for _ in 0..warm {
                let a = core.run_once(tid, recv);
                let b = if m {
                    Some(core.run_once(tid, send_one))
                } else if mode == EncodeMode::Stealthy {
                    Some(core.run_once(tid, send_zero))
                } else {
                    None
                };
                let c = core.run_once(tid, recv);
                last_cycles = a.cycles + b.as_ref().map_or(0.0, |x| x.cycles) + c.cycles;
                last_report =
                    a.report + b.as_ref().map_or_else(Default::default, |x| x.report) + c.report;
            }
            if rounds > warm {
                let round = leaky_cpu::LoopRun {
                    cycles: last_cycles,
                    iterations: 1,
                    report: last_report,
                };
                core.replay(tid, &round, rounds - warm);
            }
        });
        let t1 = self.core.rdtscp(tid);
        t1 - t0
    }

    fn ensure_calibrated(&mut self) {
        if self.decoder.is_some() {
            return;
        }
        for i in 0..4 {
            let _ = self.measure_bit(i % 2 == 1); // cold-start warmup
        }
        let mut samples = Vec::with_capacity(CALIBRATION_BITS);
        for i in 0..CALIBRATION_BITS {
            samples.push(self.measure_bit(i % 2 == 1));
        }
        let mut iter = samples.into_iter();
        self.decoder = Some(calibrate_decoder(
            move |_| iter.next().expect("calibration sample"), // lint: allow(panic-path) — closure is called exactly CALIBRATION_BITS times
            CALIBRATION_BITS,
        ));
    }

    /// Transmits a message out of the enclave.
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self.core.clock(ThreadId::T0);
        let received: Vec<bool> = message
            .iter()
            .map(|&bit| decoder.decode(self.measure_bit(bit)))
            .collect();
        let cycles = self.core.clock(ThreadId::T0) - start;
        ChannelRun::new(
            message.to_vec(),
            received,
            cycles,
            self.core.model().freq_hz(),
        )
    }
}

/// Power-based SGX covert channel (§VIII-3, sketched in the paper and
/// implemented here as an extension): even when unprivileged RAPL access is
/// disabled, a *privileged* (malicious-OS) attacker can read the package
/// energy counter around enclave calls — SGX explicitly distrusts the OS,
/// yet leaks through it. One RAPL-bracketed enclave call per bit.
#[derive(Debug, Clone)]
pub struct SgxPowerChannel {
    core: Core,
    enclave: Enclave,
    params: ChannelParams,
    recv: BlockChain,
    send_one: BlockChain,
    send_zero: BlockChain,
    decoder: Option<ThresholdDecoder>,
}

impl SgxPowerChannel {
    /// Builds the channel (stealthy zero-encoding, matching the §VII power
    /// channels).
    ///
    /// # Errors
    ///
    /// Returns [`SgxAttackError::NoSgx`] for non-SGX processors.
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn new(
        model: ProcessorModel,
        kind: NonMtKind,
        params: ChannelParams,
        seed: u64,
    ) -> Result<Self, SgxAttackError> {
        if !model.sgx {
            return Err(SgxAttackError::NoSgx { model: model.name });
        }
        let geom = FrontendGeometry::skylake();
        params.validate(geom.dsb_ways, kind == NonMtKind::Misalignment);
        let (recv, send_one, send_zero) = match kind {
            NonMtKind::Eviction => {
                let l = eviction_layout(&params, &geom);
                (l.recv, l.send_one, l.send_zero)
            }
            NonMtKind::Misalignment => {
                let l = misalignment_layout(&params, &geom);
                (l.recv, l.send_one, l.send_zero)
            }
        };
        Ok(SgxPowerChannel {
            core: Core::new(model, seed),
            enclave: Enclave::default(),
            params,
            recv,
            send_one,
            send_zero,
            decoder: None,
        })
    }

    /// One bit: RAPL-bracketed whole-enclave execution of `p` rounds.
    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let e0 = self.core.read_rapl();
        let t0 = self.core.seconds();
        let recv = &self.recv;
        let send_one = &self.send_one;
        let send_zero = &self.send_zero;
        let rounds = self.params.p;
        self.enclave.call(&mut self.core, tid, |core, tid| {
            let warm = 24u64.min(rounds);
            let mut last_cycles = 0.0;
            let mut last_report = leaky_frontend::IterationReport::default();
            for _ in 0..warm {
                let a = core.run_once(tid, recv);
                let b = if m {
                    core.run_once(tid, send_one)
                } else {
                    core.run_once(tid, send_zero)
                };
                let c = core.run_once(tid, recv);
                last_cycles = a.cycles + b.cycles + c.cycles;
                last_report = a.report + b.report + c.report;
            }
            if rounds > warm {
                let round = leaky_cpu::LoopRun {
                    cycles: last_cycles,
                    iterations: 1,
                    report: last_report,
                };
                core.replay(tid, &round, rounds - warm);
            }
        });
        let e1 = self.core.read_rapl();
        let t1 = self.core.seconds();
        let joules = e1.saturating_sub(e0) as f64 * 1e-6;
        joules / (t1 - t0).max(1e-9)
    }

    fn ensure_calibrated(&mut self) {
        if self.decoder.is_some() {
            return;
        }
        for i in 0..4 {
            let _ = self.measure_bit(i % 2 == 1);
        }
        let mut samples = Vec::with_capacity(CALIBRATION_BITS);
        for i in 0..CALIBRATION_BITS {
            samples.push(self.measure_bit(i % 2 == 1));
        }
        let mut iter = samples.into_iter();
        self.decoder = Some(calibrate_decoder(
            move |_| iter.next().expect("calibration sample"), // lint: allow(panic-path) — closure is called exactly CALIBRATION_BITS times
            CALIBRATION_BITS,
        ));
    }

    /// Transmits a message out of the enclave over package power.
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self.core.clock(ThreadId::T0);
        let received: Vec<bool> = message
            .iter()
            .map(|&bit| decoder.decode(self.measure_bit(bit)))
            .collect();
        let cycles = self.core.clock(ThreadId::T0) - start;
        ChannelRun::new(
            message.to_vec(),
            received,
            cycles,
            self.core.model().freq_hz(),
        )
    }
}

/// MT SGX covert channel (§VIII-1): the sender encodes from inside the
/// enclave on the sibling thread; the receiver times its own loop.
#[derive(Debug, Clone)]
pub struct SgxMtChannel {
    core: Core,
    enclave: Enclave,
    params: ChannelParams,
    recv: BlockChain,
    send_one: BlockChain,
    decoder: Option<ThresholdDecoder>,
}

impl SgxMtChannel {
    /// Builds the channel.
    ///
    /// # Errors
    ///
    /// Returns [`SgxAttackError::NoSgx`] or [`SgxAttackError::NoSmt`] when
    /// the processor cannot host the attack.
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn new(
        model: ProcessorModel,
        kind: NonMtKind,
        params: ChannelParams,
        seed: u64,
    ) -> Result<Self, SgxAttackError> {
        if !model.sgx {
            return Err(SgxAttackError::NoSgx { model: model.name });
        }
        if !model.smt_enabled {
            return Err(SgxAttackError::NoSmt { model: model.name });
        }
        let geom = FrontendGeometry::skylake();
        params.validate(geom.dsb_ways, kind == NonMtKind::Misalignment);
        let (recv, send_one) = match kind {
            NonMtKind::Eviction => {
                let l = eviction_layout(&params, &geom);
                (l.recv, l.send_one)
            }
            NonMtKind::Misalignment => {
                let l = misalignment_layout(&params, &geom);
                (l.recv, l.send_one)
            }
        };
        Ok(SgxMtChannel {
            core: Core::new(model, seed),
            enclave: Enclave::default(),
            params,
            recv,
            send_one,
            decoder: None,
        })
    }

    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let t0 = self.core.rdtscp(tid);
        let p = self.params.p;
        let q = self.params.q;
        if m {
            // The sender enters the enclave on T1 and encodes concurrently.
            let recv = self.recv.clone();
            let send = self.send_one.clone();
            // Enclave transition cost on the sender thread.
            self.core
                .idle(ThreadId::T1, self.enclave.round_trip_cycles());
            self.core.frontend_mut().flush_thread_state(ThreadId::T1);
            let (r, _s) = self.core.run_concurrent(
                ThreadWork {
                    chain: &recv,
                    iterations: p,
                },
                ThreadWork {
                    chain: &send,
                    iterations: q,
                },
            );
            let _ = r;
        } else {
            self.core.run_loop(tid, &self.recv, p);
        }
        let t1 = self.core.rdtscp(tid);
        (t1 - t0).max(1.0) / p as f64
    }

    fn ensure_calibrated(&mut self) {
        if self.decoder.is_some() {
            return;
        }
        for i in 0..4 {
            let _ = self.measure_bit(i % 2 == 1); // cold-start warmup
        }
        let mut samples = Vec::with_capacity(CALIBRATION_BITS);
        for i in 0..CALIBRATION_BITS {
            samples.push(self.measure_bit(i % 2 == 1));
        }
        let mut iter = samples.into_iter();
        self.decoder = Some(calibrate_decoder(
            move |_| iter.next().expect("calibration sample"), // lint: allow(panic-path) — closure is called exactly CALIBRATION_BITS times
            CALIBRATION_BITS,
        ));
    }

    /// Transmits a message out of the enclave via the sibling thread.
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self
            .core
            .clock(ThreadId::T0)
            .max(self.core.clock(ThreadId::T1));
        let received: Vec<bool> = message
            .iter()
            .map(|&bit| decoder.decode(self.measure_bit(bit)))
            .collect();
        let end = self
            .core
            .clock(ThreadId::T0)
            .max(self.core.clock(ThreadId::T1));
        ChannelRun::new(
            message.to_vec(),
            received,
            end - start,
            self.core.model().freq_hz(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    #[test]
    fn non_sgx_machine_rejected() {
        let err = SgxNonMtChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::sgx_non_mt_defaults(),
            1,
        )
        .unwrap_err();
        assert_eq!(err, SgxAttackError::NoSgx { model: "Gold 6226" });
    }

    #[test]
    fn smt_disabled_rejected_for_mt() {
        let err = SgxMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            ChannelParams::sgx_mt_defaults(),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SgxAttackError::NoSmt {
                model: "Xeon E-2288G"
            }
        );
    }

    #[test]
    fn non_mt_sgx_eviction_transmits() {
        let mut ch = SgxNonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::sgx_non_mt_defaults(),
            31,
        )
        .unwrap();
        let msg = MessagePattern::Alternating.generate(24, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.10,
            "SGX non-MT error {:.1}%",
            run.error_rate() * 100.0
        );
        // Table VI: tens of Kbps — two orders below the non-SGX channels.
        assert!(
            run.rate_kbps() > 1.0 && run.rate_kbps() < 300.0,
            "SGX rate {:.1} Kbps",
            run.rate_kbps()
        );
    }

    #[test]
    fn mt_sgx_eviction_transmits() {
        let mut ch = SgxMtChannel::new(
            ProcessorModel::xeon_e2174g(),
            NonMtKind::Eviction,
            ChannelParams::sgx_mt_defaults(),
            37,
        )
        .unwrap();
        let msg = MessagePattern::Alternating.generate(16, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.25,
            "SGX MT error {:.1}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn sgx_power_channel_leaks_despite_rapl_lockdown() {
        // §VIII-3: the privileged-OS power attack. Slow (power-channel
        // iteration counts) but functional.
        let mut ch = SgxPowerChannel::new(
            ProcessorModel::xeon_e2286g(),
            NonMtKind::Eviction,
            ChannelParams::power_defaults(),
            51,
        )
        .unwrap();
        let msg = MessagePattern::Alternating.generate(16, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.30,
            "SGX power error {:.1}%",
            run.error_rate() * 100.0
        );
        assert!(run.rate_kbps() < 5.0, "power channels are RAPL-limited");
    }

    #[test]
    fn sgx_power_channel_requires_sgx() {
        assert!(SgxPowerChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            ChannelParams::power_defaults(),
            1,
        )
        .is_err());
    }

    #[test]
    fn sgx_slower_than_direct_channel() {
        // Table VI vs Table III: SGX rates are roughly 1/25 – 1/30 of the
        // direct non-MT rates.
        use crate::channels::non_mt::NonMtChannel;
        let msg = MessagePattern::Alternating.generate(24, 0);
        let mut direct = NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            41,
        );
        let mut sgx = SgxNonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::sgx_non_mt_defaults(),
            41,
        )
        .unwrap();
        let rd = direct.transmit(&msg);
        let rs = sgx.transmit(&msg);
        let ratio = rd.rate_kbps() / rs.rate_kbps();
        assert!(
            (5.0..=200.0).contains(&ratio),
            "direct/SGX ratio {ratio:.1} (direct {:.1}, sgx {:.1})",
            rd.rate_kbps(),
            rs.rate_kbps()
        );
    }
}

//! The string-keyed covert-channel registry and [`ChannelSpec`] builder.
//!
//! The paper's §V/§VII channels all share the Init/Encode/Decode protocol
//! and the §VI evaluation; this module makes them *enumerable data* the
//! way `leaky_exp`'s experiment registry treats sweeps: every channel
//! variant is a [`ChannelInfo`] row under a stable name, and a
//! [`ChannelSpec`] turns a name plus configuration (machine, profile,
//! parameters, noise, seed) into a `Box<dyn CovertChannel>` — fallibly,
//! so structurally unsupported combinations (an MT channel on an SMT-less
//! machine) surface as values instead of panics.
//!
//! # Examples
//!
//! ```
//! use leaky_frontends::channels::{channel_names, ChannelSpec, CovertChannel};
//! use leaky_frontends::params::MessagePattern;
//!
//! // Enumerate instead of matching on types:
//! assert!(channel_names().contains(&"slow-switch"));
//!
//! let mut ch = ChannelSpec::new("non-mt-fast-eviction")
//!     .seed(7)
//!     .build()
//!     .expect("registered channel on an SMT-independent machine");
//! let run = ch.transmit(&MessagePattern::Alternating.generate(32, 0));
//! assert!(run.error_rate() < 0.1);
//! assert_eq!(run.provenance().unwrap().channel, "non-mt-fast-eviction");
//! ```

use leaky_cpu::ProcessorModel;
use leaky_frontend::{FrontendConfig, UarchProfile};

use crate::channels::mt::{MtChannel, MtKind, MtNoise, MtUnsupported};
use crate::channels::non_mt::{NonMtChannel, NonMtKind};
use crate::channels::power::PowerChannel;
use crate::channels::slow_switch::SlowSwitchChannel;
use crate::channels::CovertChannel;
use crate::params::{ChannelParams, EncodeMode};

/// One registry row: a channel variant under its stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelInfo {
    /// Stable registry name (sweep axis value, CLI argument).
    pub name: &'static str,
    /// The paper section that introduces the channel.
    pub section: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Whether the channel needs both hyper-threads of a core (builds
    /// fail with [`BuildError::SmtUnavailable`] on SMT-less machines).
    pub requires_smt: bool,
    /// Whether the channel has an environmental-noise knob
    /// ([`ChannelSpec::noise`]; only the MT channels model co-runner
    /// jitter).
    pub supports_noise: bool,
    /// Whether the channel has a frontend-config override hook
    /// ([`ChannelSpec::frontend_config`]; the §XII/ablation surface of
    /// the timing channels).
    pub supports_frontend_override: bool,
}

/// Every registered channel, in paper-section order. Names double as the
/// sweep axis vocabulary (`tab3_*` grids) so results, specs and CLIs all
/// speak the same strings.
pub const REGISTRY: [ChannelInfo; 9] = [
    ChannelInfo {
        name: "mt-eviction",
        section: "V-A",
        description: "cross-thread DSB way-eviction timing channel",
        requires_smt: true,
        supports_noise: true,
        supports_frontend_override: true,
    },
    ChannelInfo {
        name: "mt-misalignment",
        section: "V-B",
        description: "cross-thread LSD misalignment-collision timing channel",
        requires_smt: true,
        supports_noise: true,
        supports_frontend_override: true,
    },
    ChannelInfo {
        name: "non-mt-stealthy-eviction",
        section: "V-C",
        description: "same-thread DSB eviction channel, decoy-set 0-encoding",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: true,
    },
    ChannelInfo {
        name: "non-mt-fast-eviction",
        section: "V-C",
        description: "same-thread DSB eviction channel, silent 0-encoding",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: true,
    },
    ChannelInfo {
        name: "non-mt-stealthy-misalignment",
        section: "V-D",
        description: "same-thread misalignment channel, aligned-decoy 0-encoding",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: true,
    },
    ChannelInfo {
        name: "non-mt-fast-misalignment",
        section: "V-D",
        description: "same-thread misalignment channel, silent 0-encoding",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: true,
    },
    ChannelInfo {
        name: "slow-switch",
        section: "V-E",
        description: "LCP stall / DSB-MITE switch-interleaving channel",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: false,
    },
    ChannelInfo {
        name: "power-eviction",
        section: "VII",
        description: "RAPL power reading of the DSB eviction channel",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: false,
    },
    ChannelInfo {
        name: "power-misalignment",
        section: "VII",
        description: "RAPL power reading of the misalignment channel",
        requires_smt: false,
        supports_noise: false,
        supports_frontend_override: false,
    },
];

/// All registered channel names, in paper-section order.
pub fn channel_names() -> [&'static str; REGISTRY.len()] {
    REGISTRY.map(|c| c.name)
}

/// Looks a channel up by its registry name.
pub fn channel_info(name: &str) -> Option<&'static ChannelInfo> {
    REGISTRY.iter().find(|c| c.name == name)
}

/// The §V/§VII default parameters of a registered channel (the operating
/// points Tables II-V evaluate).
pub fn default_params(name: &str) -> Option<ChannelParams> {
    Some(match name {
        "mt-eviction" => ChannelParams::mt_defaults(),
        "mt-misalignment" => ChannelParams::mt_misalignment_defaults(),
        "non-mt-stealthy-eviction" | "non-mt-fast-eviction" => ChannelParams::eviction_defaults(),
        "non-mt-stealthy-misalignment" | "non-mt-fast-misalignment" => {
            ChannelParams::misalignment_defaults()
        }
        "slow-switch" => ChannelParams::slow_switch_defaults(),
        "power-eviction" => ChannelParams::power_defaults(),
        "power-misalignment" => ChannelParams {
            d: 5,
            ..ChannelParams::power_defaults()
        },
        _ => return None,
    })
}

/// Why a [`ChannelSpec`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The requested name is not in [`REGISTRY`].
    UnknownChannel(String),
    /// The channel needs SMT and the processor model has it disabled.
    SmtUnavailable(MtUnsupported),
    /// A noise model was supplied but the channel has no environmental
    /// noise knob (only the MT channels do).
    NoiseUnsupported(&'static str),
    /// A frontend-config override was supplied but the channel has no
    /// such hook (only the timing channels used by the §XII/ablation
    /// evaluations do).
    FrontendOverrideUnsupported(&'static str),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownChannel(name) => write!(f, "unknown channel {name:?}"),
            BuildError::SmtUnavailable(e) => write!(f, "{e}"),
            BuildError::NoiseUnsupported(name) => {
                write!(f, "{name} has no environmental-noise model")
            }
            BuildError::FrontendOverrideUnsupported(name) => {
                write!(f, "{name} has no frontend-config override hook")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A declarative channel configuration: registry name plus everything a
/// build needs. Unset options fall back to the paper's operating point
/// (Gold 6226, `skylake` profile, per-channel default parameters,
/// default noise, seed 0).
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    kind: String,
    model: ProcessorModel,
    profile: UarchProfile,
    params: Option<ChannelParams>,
    noise: Option<MtNoise>,
    frontend: Option<(FrontendConfig, u64)>,
    seed: u64,
}

impl ChannelSpec {
    /// Starts a spec for a registered channel name (validated at
    /// [`ChannelSpec::build`] time, so specs can be carried around as
    /// data).
    pub fn new(kind: impl Into<String>) -> Self {
        ChannelSpec {
            kind: kind.into(),
            model: ProcessorModel::gold_6226(),
            profile: UarchProfile::skylake(),
            params: None,
            noise: None,
            frontend: None,
            seed: 0,
        }
    }

    /// Selects another registered channel (same validation as
    /// [`ChannelSpec::new`]).
    pub fn kind(mut self, kind: impl Into<String>) -> Self {
        self.kind = kind.into();
        self
    }

    /// The Table I machine to run on (default: Gold 6226, the paper's
    /// primary test machine).
    pub fn model(mut self, model: ProcessorModel) -> Self {
        self.model = model;
        self
    }

    /// The microarchitecture profile (default: `skylake`; perturbed
    /// copies are fine — caches key on the profile's content).
    pub fn profile(mut self, profile: UarchProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Overrides the channel's default §V parameters.
    pub fn params(mut self, params: ChannelParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Overrides the environmental-noise model (MT channels only; other
    /// channels fail the build with [`BuildError::NoiseUnsupported`]).
    pub fn noise(mut self, noise: MtNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Replaces the built channel's frontend with an explicit
    /// configuration (the §XII defense-evaluation and ablation hook;
    /// only channels with `supports_frontend_override` accept it).
    ///
    /// `seed` re-seeds the rebuilt core exactly as the concrete
    /// channels' legacy override methods do — which means it applies to
    /// the non-MT channels only: `MtChannel::set_frontend_config`
    /// re-seeds with a fixed internal constant, a legacy semantic kept
    /// so the committed ablation outputs stay byte-identical.
    pub fn frontend_config(mut self, config: FrontendConfig, seed: u64) -> Self {
        self.frontend = Some((config, seed));
        self
    }

    /// The channel's RNG/core seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the channel.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownChannel`] for names outside [`REGISTRY`];
    /// [`BuildError::SmtUnavailable`] for MT channels on SMT-less
    /// machines; [`BuildError::NoiseUnsupported`] /
    /// [`BuildError::FrontendOverrideUnsupported`] when an override has
    /// no hook on the selected channel.
    ///
    /// # Panics
    ///
    /// Panics if explicit parameters violate the §V constraints under
    /// the profile's geometry (see [`ChannelParams::validate`]), exactly
    /// as the concrete constructors do.
    pub fn build(&self) -> Result<Box<dyn CovertChannel>, BuildError> {
        let info = channel_info(&self.kind)
            .ok_or_else(|| BuildError::UnknownChannel(self.kind.clone()))?;
        let params = match self.params {
            Some(params) => params,
            None => default_params(info.name)
                .ok_or_else(|| BuildError::UnknownChannel(self.kind.clone()))?,
        };
        if self.noise.is_some() && !info.supports_noise {
            return Err(BuildError::NoiseUnsupported(info.name));
        }
        if self.frontend.is_some() && !info.supports_frontend_override {
            return Err(BuildError::FrontendOverrideUnsupported(info.name));
        }
        let non_mt = |kind, mode| {
            let mut ch = NonMtChannel::with_profile(
                self.model,
                kind,
                mode,
                params,
                &self.profile,
                self.seed,
            );
            if let Some((config, fseed)) = &self.frontend {
                ch = ch.with_frontend_config(*config, *fseed);
            }
            Box::new(ch) as Box<dyn CovertChannel>
        };
        let mt = |kind| -> Result<Box<dyn CovertChannel>, BuildError> {
            let mut ch =
                MtChannel::with_profile(self.model, kind, params, &self.profile, self.seed)
                    .map_err(BuildError::SmtUnavailable)?;
            if let Some(noise) = self.noise {
                ch.set_noise(noise);
            }
            if let Some((config, _)) = &self.frontend {
                // MtChannel's legacy hook re-seeds internally.
                ch.set_frontend_config(*config);
            }
            Ok(Box::new(ch))
        };
        Ok(match info.name {
            "mt-eviction" => mt(MtKind::Eviction)?,
            "mt-misalignment" => mt(MtKind::Misalignment)?,
            "non-mt-stealthy-eviction" => non_mt(NonMtKind::Eviction, EncodeMode::Stealthy),
            "non-mt-fast-eviction" => non_mt(NonMtKind::Eviction, EncodeMode::Fast),
            "non-mt-stealthy-misalignment" => non_mt(NonMtKind::Misalignment, EncodeMode::Stealthy),
            "non-mt-fast-misalignment" => non_mt(NonMtKind::Misalignment, EncodeMode::Fast),
            "slow-switch" => Box::new(SlowSwitchChannel::with_profile(
                self.model,
                params,
                &self.profile,
                self.seed,
            )),
            "power-eviction" => Box::new(PowerChannel::with_profile(
                self.model,
                NonMtKind::Eviction,
                params,
                &self.profile,
                self.seed,
            )),
            "power-misalignment" => Box::new(PowerChannel::with_profile(
                self.model,
                NonMtKind::Misalignment,
                params,
                &self.profile,
                self.seed,
            )),
            other => unreachable!("registered but unbuilt channel {other:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = channel_names();
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate registry names");
        for name in names {
            assert_eq!(channel_info(name).unwrap().name, name);
            assert!(default_params(name).is_some(), "{name} lacks defaults");
        }
        assert!(channel_info("prime-and-probe").is_none());
        assert!(default_params("prime-and-probe").is_none());
    }

    #[test]
    fn built_channels_report_their_registry_identity() {
        for info in &REGISTRY {
            let mut spec = ChannelSpec::new(info.name).seed(3);
            if info.requires_smt {
                spec = spec.model(ProcessorModel::gold_6226());
            }
            let ch = spec.build().expect("6226 supports every channel");
            assert_eq!(ch.name(), info.name);
            assert_eq!(ch.profile_key(), "skylake");
            assert_eq!(
                ch.params(),
                default_params(info.name).unwrap(),
                "{} defaults",
                info.name
            );
        }
    }

    #[test]
    fn unknown_channel_is_a_value_not_a_panic() {
        let err = ChannelSpec::new("flush-reload").build().unwrap_err();
        assert_eq!(err, BuildError::UnknownChannel("flush-reload".into()));
        assert!(err.to_string().contains("flush-reload"));
    }

    #[test]
    fn smt_requirement_is_enforced_per_registry_row() {
        for info in &REGISTRY {
            let built = ChannelSpec::new(info.name)
                .model(ProcessorModel::xeon_e2288g())
                .build();
            if info.requires_smt {
                assert!(
                    matches!(built, Err(BuildError::SmtUnavailable(_))),
                    "{} must fail on the SMT-less E-2288G",
                    info.name
                );
            } else {
                assert!(built.is_ok(), "{} must build on the E-2288G", info.name);
            }
        }
    }

    #[test]
    fn noise_override_is_mt_only() {
        let quiet = MtNoise {
            burst_probability: 0.0,
            burst_relative: 0.0,
            desync_probability: 0.0,
            phase_slip_probability: 0.0,
        };
        let mut ch = ChannelSpec::new("mt-eviction")
            .noise(quiet)
            .seed(17)
            .build()
            .expect("MT channel accepts noise");
        let run = ch.transmit(&MessagePattern::Alternating.generate(32, 0));
        assert_eq!(run.error_rate(), 0.0, "noiseless MT channel is clean");

        let err = ChannelSpec::new("slow-switch").noise(quiet).build();
        assert_eq!(
            err.unwrap_err(),
            BuildError::NoiseUnsupported("slow-switch")
        );
    }

    #[test]
    fn spec_build_matches_legacy_constructors_bit_for_bit() {
        // The registry is a relabeling, not a re-implementation: a spec
        // build and the concrete constructor produce identical runs.
        let msg = MessagePattern::Alternating.generate(32, 0);
        let mut legacy = NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            42,
        );
        let mut spec = ChannelSpec::new("non-mt-fast-eviction")
            .model(ProcessorModel::xeon_e2288g())
            .seed(42)
            .build()
            .unwrap();
        let a = legacy.transmit(&msg);
        let b = spec.transmit(&msg);
        assert_eq!(a.received(), b.received());
        assert_eq!(a.cycles(), b.cycles());

        let mut legacy = SlowSwitchChannel::new(
            ProcessorModel::xeon_e2288g(),
            ChannelParams::slow_switch_defaults(),
            77,
        );
        let mut spec = ChannelSpec::new("slow-switch")
            .model(ProcessorModel::xeon_e2288g())
            .seed(77)
            .build()
            .unwrap();
        let a = legacy.transmit(&msg);
        let b = spec.transmit(&msg);
        assert_eq!(a.received(), b.received());
        assert_eq!(a.cycles(), b.cycles());
    }

    #[test]
    fn frontend_override_reaches_the_built_channel() {
        use leaky_frontend::CostModel;
        // A constant-time frontend kills the stealthy channel through the
        // spec exactly as through the concrete hook (§XII).
        let config = FrontendConfig {
            costs: CostModel::constant_time(),
            ..FrontendConfig::default()
        };
        let mut ch = ChannelSpec::new("non-mt-stealthy-eviction")
            .model(ProcessorModel::xeon_e2288g())
            .frontend_config(config, 5)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(ch.profile_key(), "custom");
        match ch.try_calibrate() {
            Err(_) => {}
            Ok(()) => {
                let run = ch.transmit(&MessagePattern::Random.generate(64, 9));
                assert!(run.error_rate() > 0.25, "defended channel leaked");
            }
        }
        // ...and has no hook on the power channels.
        let err = ChannelSpec::new("power-eviction")
            .frontend_config(FrontendConfig::default(), 5)
            .build();
        assert_eq!(
            err.unwrap_err(),
            BuildError::FrontendOverrideUnsupported("power-eviction")
        );
    }

    #[test]
    fn dyn_channels_transmit_through_the_trait() {
        // The uniform surface: every 6226-supported channel calibrates
        // and transmits behind the trait object. (Power channels ride a
        // 16-bit message to keep the test fast.)
        for info in &REGISTRY {
            let bits = if info.section == "VII" { 16 } else { 24 };
            let mut ch = ChannelSpec::new(info.name).seed(9).build().unwrap();
            ch.try_calibrate().expect("skylake profile calibrates");
            let run = ch.transmit(&MessagePattern::Alternating.generate(bits, 0));
            assert_eq!(run.sent().len(), bits);
            let prov = run.provenance().expect("channels attach provenance");
            assert_eq!(prov.channel, info.name);
            assert_eq!(prov.profile, "skylake");
        }
    }
}

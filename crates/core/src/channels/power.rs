//! Power-based covert channels over RAPL (paper §VII).
//!
//! Same Init/Encode/Decode structure as the non-MT timing channels, but the
//! receiver reads Intel RAPL energy counters instead of a timer. Because
//! RAPL updates only every ~50 µs, each bit must span many update intervals:
//! p = q = 240 000 iterations per bit (§VII), which caps the bandwidth near
//! 0.6 Kbps (Table V).
//!
//! The per-bit work is simulated exactly for a warm-up prefix and then
//! fast-forwarded with [`leaky_cpu::Core::replay`], which deposits energy
//! identically to full simulation.

use leaky_cpu::{Core, LoopRun, MicrocodePatch, ProcessorModel};
use leaky_frontend::{ThreadId, UarchProfile};
use leaky_isa::BlockChain;
use leaky_stats::ThresholdDecoder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channels::non_mt::NonMtKind;
use crate::channels::{eviction_layout, misalignment_layout, CovertChannel};
use crate::params::ChannelParams;
use crate::run::{ChannelRun, Provenance};

/// Rounds simulated exactly before fast-forwarding the remainder.
const WARM_ROUNDS: u64 = 24;

/// System power noise on a per-bit watts estimate (σ, watts): co-running
/// package activity that RAPL cannot separate from the attack (§VII's
/// error-rate source).
const WATTS_NOISE_SIGMA: f64 = 1.8;

const CALIBRATION_BITS: usize = 16;

/// A power-based non-MT covert channel (§VII, Table V).
///
/// # Examples
///
/// ```
/// use leaky_cpu::ProcessorModel;
/// use leaky_frontends::channels::non_mt::NonMtKind;
/// use leaky_frontends::channels::power::PowerChannel;
/// use leaky_frontends::params::{ChannelParams, MessagePattern};
///
/// let mut ch = PowerChannel::new(
///     ProcessorModel::gold_6226(),
///     NonMtKind::Eviction,
///     ChannelParams::power_defaults(),
///     3,
/// );
/// let msg = MessagePattern::Alternating.generate(8, 0);
/// let run = ch.transmit(&msg);
/// assert!(run.rate_kbps() < 10.0, "power channels are slow");
/// ```
#[derive(Debug, Clone)]
pub struct PowerChannel {
    core: Core,
    kind: NonMtKind,
    params: ChannelParams,
    profile_key: &'static str,
    recv: BlockChain,
    send_one: BlockChain,
    send_zero: BlockChain,
    decoder: Option<ThresholdDecoder>,
    rng: StdRng,
}

/// The registry name of a power variant (see
/// [`crate::channels::registry`]).
const fn power_name(kind: NonMtKind) -> &'static str {
    match kind {
        NonMtKind::Eviction => "power-eviction",
        NonMtKind::Misalignment => "power-misalignment",
    }
}

impl PowerChannel {
    /// Builds the channel (stealthy zero-encoding, as in the paper's power
    /// evaluation) under the default (`skylake`) profile.
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn new(model: ProcessorModel, kind: NonMtKind, params: ChannelParams, seed: u64) -> Self {
        Self::with_profile(model, kind, params, &UarchProfile::skylake(), seed)
    }

    /// Builds the channel under an explicit microarchitecture profile
    /// (layout geometry and cost model from the profile).
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn with_profile(
        model: ProcessorModel,
        kind: NonMtKind,
        params: ChannelParams,
        profile: &UarchProfile,
        seed: u64,
    ) -> Self {
        let geom = &profile.geometry;
        params.validate(geom.dsb_ways, kind == NonMtKind::Misalignment);
        let (recv, send_one, send_zero) = match kind {
            NonMtKind::Eviction => {
                let l = eviction_layout(&params, geom);
                (l.recv, l.send_one, l.send_zero)
            }
            NonMtKind::Misalignment => {
                let l = misalignment_layout(&params, geom);
                (l.recv, l.send_one, l.send_zero)
            }
        };
        PowerChannel {
            core: Core::with_profile(model, MicrocodePatch::Patch1, profile, seed),
            kind,
            params,
            profile_key: profile.key,
            recv,
            send_one,
            send_zero,
            decoder: None,
            rng: StdRng::seed_from_u64(seed ^ 0x70f_f4e7),
        }
    }

    /// The underlying frontend primitive.
    pub fn kind(&self) -> NonMtKind {
        self.kind
    }

    /// One Init/Encode/Decode round for bit `m`; returns the round's run.
    fn one_round(&mut self, m: bool) -> LoopRun {
        let tid = ThreadId::T0;
        let a = self.core.run_once(tid, &self.recv);
        let b = if m {
            self.core.run_once(tid, &self.send_one)
        } else {
            self.core.run_once(tid, &self.send_zero)
        };
        let c = self.core.run_once(tid, &self.recv);
        LoopRun {
            cycles: a.cycles + b.cycles + c.cycles,
            iterations: a.iterations + b.iterations + c.iterations,
            report: a.report + b.report + c.report,
        }
    }

    /// Measures one bit as average watts over the bit window: bracket the
    /// p-round workload with RAPL reads and divide energy by time.
    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let e0 = self.core.read_rapl();
        let t0 = self.core.seconds();
        // Warm rounds simulated exactly...
        let mut last = self.one_round(m);
        for _ in 1..WARM_ROUNDS.min(self.params.p) {
            last = self.one_round(m);
        }
        // ...then fast-forward the remaining identical rounds.
        if self.params.p > WARM_ROUNDS {
            self.core.replay(tid, &last, self.params.p - WARM_ROUNDS);
        }
        let e1 = self.core.read_rapl();
        let t1 = self.core.seconds();
        let joules = (e1.saturating_sub(e0)) as f64 * 1e-6;
        let dt = (t1 - t0).max(1e-9);
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let noise =
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * WATTS_NOISE_SIGMA;
        joules / dt + noise // watts
    }

    /// Attempts calibration, reporting failure instead of panicking (a
    /// cost-equalized frontend may show no per-bit power difference).
    /// The watts samples are collected up front and fed to the shared
    /// `try_calibrate_decoder` routine, the single home of the decoder
    /// settings.
    ///
    /// # Panics
    ///
    /// Panics if rebuilding the channel spec for calibration fails
    /// validation (`ChannelSpec::build`); parameters accepted at
    /// construction never do.
    pub fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        if self.decoder.is_some() {
            return Ok(());
        }
        for i in 0..4 {
            let _ = self.measure_bit(i % 2 == 1); // cold-start warmup
        }
        let mut samples = Vec::with_capacity(CALIBRATION_BITS);
        for i in 0..CALIBRATION_BITS {
            let bit = i % 2 == 1;
            samples.push(self.measure_bit(bit));
        }
        let mut iter = samples.into_iter();
        self.decoder = Some(crate::channels::try_calibrate_decoder(
            move |_| iter.next().expect("calibration sample"), // lint: allow(panic-path) — closure is called exactly CALIBRATION_BITS times
            CALIBRATION_BITS,
        )?);
        Ok(())
    }

    fn ensure_calibrated(&mut self) {
        self.try_calibrate()
            .expect("calibration produced indistinguishable classes"); // lint: allow(panic-path) — undefended layouts always separate classes
    }

    /// Transmits a message over the power channel.
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self.core.clock(ThreadId::T0);
        let mut received = Vec::with_capacity(message.len());
        for &bit in message {
            let watts = self.measure_bit(bit);
            received.push(decoder.decode(watts));
        }
        let cycles = self.core.clock(ThreadId::T0) - start;
        ChannelRun::new(
            message.to_vec(),
            received,
            cycles,
            self.core.model().freq_hz(),
        )
        .with_provenance(Provenance {
            channel: power_name(self.kind),
            profile: self.profile_key,
            params: self.params,
        })
    }
}

impl CovertChannel for PowerChannel {
    fn name(&self) -> &'static str {
        power_name(self.kind)
    }

    fn profile_key(&self) -> &'static str {
        self.profile_key
    }

    fn params(&self) -> ChannelParams {
        self.params
    }

    fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        PowerChannel::try_calibrate(self)
    }

    fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        PowerChannel::transmit(self, message)
    }

    fn debug_measure(&mut self, bit: bool) -> f64 {
        self.measure_bit(bit)
    }

    fn debug_decoder(&mut self) -> Option<ThresholdDecoder> {
        PowerChannel::try_calibrate(self).ok()?;
        self.decoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    #[test]
    fn power_eviction_channel_is_slow_but_works() {
        let mut ch = PowerChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            ChannelParams::power_defaults(),
            21,
        );
        let msg = MessagePattern::Alternating.generate(24, 0);
        let run = ch.transmit(&msg);
        // Table V: ~0.66 Kbps, 18.87% error. Require the same regime.
        assert!(
            run.rate_kbps() < 5.0,
            "power channel too fast: {:.3} Kbps",
            run.rate_kbps()
        );
        assert!(
            run.rate_kbps() > 0.05,
            "power channel unusably slow: {:.4} Kbps",
            run.rate_kbps()
        );
        assert!(
            run.error_rate() < 0.35,
            "error {:.1}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn power_misalignment_channel_works() {
        let mut ch = PowerChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Misalignment,
            ChannelParams {
                d: 5,
                ..ChannelParams::power_defaults()
            },
            22,
        );
        let msg = MessagePattern::Alternating.generate(24, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.35,
            "misalignment power error {:.1}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn rapl_energy_grows_during_transmission() {
        let mut ch = PowerChannel::new(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            ChannelParams::power_defaults(),
            23,
        );
        let before = ch.core.read_rapl();
        ch.transmit(&MessagePattern::AllOnes.generate(4, 0));
        let after = ch.core.read_rapl();
        assert!(after > before);
    }
}

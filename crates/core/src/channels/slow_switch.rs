//! The slow-switch covert channel (paper §V-E): encoding bits in
//! Length-Changing-Prefix stall and DSB↔MITE switch behaviour.
//!
//! The 1-encoding alternates normal and LCP `add`s ("mixed issue"),
//! maximising path switches; the 0-encoding groups them ("ordered issue"),
//! serialising LCP pre-decode stalls instead. The two loop bodies contain
//! identical instruction multisets, so the channel is invisible to
//! instruction-count monitoring — only the *interleaving* differs (§IV-H,
//! Fig. 4).

use leaky_cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontend::{ThreadId, UarchProfile};
use leaky_isa::{BlockChain, CodeRegion, LcpPattern};
use leaky_stats::ThresholdDecoder;

use crate::channels::CovertChannel;
use crate::params::ChannelParams;
use crate::run::{ChannelRun, Provenance};

/// Per-bit protocol overhead (cycles), calibrated alongside the non-MT
/// channels.
const PER_BIT_OVERHEAD_CYCLES: f64 = 2_200.0;

const CALIBRATION_BITS: usize = 32;
const MAX_RESAMPLE: u32 = 3;

/// The §V-E slow-switch channel.
///
/// # Examples
///
/// ```
/// use leaky_cpu::ProcessorModel;
/// use leaky_frontends::channels::slow_switch::SlowSwitchChannel;
/// use leaky_frontends::params::{ChannelParams, MessagePattern};
///
/// let mut ch = SlowSwitchChannel::new(
///     ProcessorModel::xeon_e2288g(),
///     ChannelParams::slow_switch_defaults(),
///     3,
/// );
/// let msg = MessagePattern::Alternating.generate(16, 0);
/// let run = ch.transmit(&msg);
/// assert!(run.error_rate() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct SlowSwitchChannel {
    core: Core,
    params: ChannelParams,
    profile_key: &'static str,
    mixed: BlockChain,
    ordered: BlockChain,
    decoder: Option<ThresholdDecoder>,
}

impl SlowSwitchChannel {
    /// Builds the channel under the default (`skylake`) profile: two loop
    /// bodies of `2r` adds each (mixed and ordered interleavings) in
    /// disjoint code regions.
    ///
    /// # Panics
    ///
    /// Panics if the derived block chain is empty (`BlockChain::new`).
    pub fn new(model: ProcessorModel, params: ChannelParams, seed: u64) -> Self {
        Self::with_profile(model, params, &UarchProfile::skylake(), seed)
    }

    /// Builds the channel under an explicit microarchitecture profile:
    /// the loop bodies live in a geometry-aware code region and the core
    /// runs the profile's cost model — the LCP stall and path-switch
    /// penalties the channel rides on come from the profile (§V-E works,
    /// or dies, per microarchitecture).
    ///
    /// # Panics
    ///
    /// Panics if the derived block chain is empty (`BlockChain::new`).
    pub fn with_profile(
        model: ProcessorModel,
        params: ChannelParams,
        profile: &UarchProfile,
        seed: u64,
    ) -> Self {
        assert!(params.r > 0, "r must be positive");
        let mut region =
            CodeRegion::with_geometry(crate::channels::SENDER_REGION, profile.geometry);
        let mixed = BlockChain::new(vec![region.lcp_block(LcpPattern::Mixed, params.r)]);
        let ordered = BlockChain::new(vec![region.lcp_block(LcpPattern::Ordered, params.r)]);
        SlowSwitchChannel {
            core: Core::with_profile(model, MicrocodePatch::Patch1, profile, seed),
            params,
            profile_key: profile.key,
            mixed,
            ordered,
            decoder: None,
        }
    }

    /// One bit measurement: the receiver brackets `p` iterations of the
    /// secret-selected loop body with the timer (§V-E: Init starts the
    /// timer, Decode stops it).
    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let t0 = self.core.rdtscp(tid);
        let chain = if m { &self.mixed } else { &self.ordered };
        for _ in 0..self.params.p {
            self.core.run_once(tid, chain);
        }
        let t1 = self.core.rdtscp(tid);
        self.core.idle(tid, PER_BIT_OVERHEAD_CYCLES);
        t1 - t0
    }

    /// Attempts calibration, reporting failure instead of panicking: on a
    /// cost model without LCP/path-switch asymmetry (e.g. the §XII
    /// constant-time profile) the mixed and ordered loop bodies time
    /// identically, which is a dead channel rather than a harness error.
    /// The samples route through the shared `try_calibrate_decoder`, the
    /// single home of the decoder settings.
    ///
    /// # Panics
    ///
    /// Panics if rebuilding the channel spec for calibration fails
    /// validation (`ChannelSpec::build`); parameters accepted at
    /// construction never do.
    pub fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        if self.decoder.is_some() {
            return Ok(());
        }
        let mut samples = Vec::with_capacity(CALIBRATION_BITS);
        for i in 0..CALIBRATION_BITS {
            let bit = i % 2 == 1;
            samples.push(self.measure_bit(bit));
        }
        let mut iter = samples.into_iter();
        self.decoder = Some(crate::channels::try_calibrate_decoder(
            move |_| iter.next().expect("calibration sample"), // lint: allow(panic-path) — closure is called exactly CALIBRATION_BITS times
            CALIBRATION_BITS,
        )?);
        Ok(())
    }

    fn ensure_calibrated(&mut self) {
        self.try_calibrate()
            .expect("calibration produced indistinguishable classes"); // lint: allow(panic-path) — undefended layouts always separate classes
    }

    /// Transmits a message (calibration excluded from the reported rate).
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self.core.clock(ThreadId::T0);
        let mut received = Vec::with_capacity(message.len());
        for &bit in message {
            let mut decoded = decoder.decode_checked(self.measure_bit(bit));
            let mut tries = 0;
            while decoded.is_ambiguous() && tries < MAX_RESAMPLE {
                decoded = decoder.decode_checked(self.measure_bit(bit));
                tries += 1;
            }
            received.push(decoded.bit());
        }
        let cycles = self.core.clock(ThreadId::T0) - start;
        ChannelRun::new(
            message.to_vec(),
            received,
            cycles,
            self.core.model().freq_hz(),
        )
        .with_provenance(Provenance {
            channel: "slow-switch",
            profile: self.profile_key,
            params: self.params,
        })
    }
}

impl CovertChannel for SlowSwitchChannel {
    fn name(&self) -> &'static str {
        "slow-switch"
    }

    fn profile_key(&self) -> &'static str {
        self.profile_key
    }

    fn params(&self) -> ChannelParams {
        self.params
    }

    fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        SlowSwitchChannel::try_calibrate(self)
    }

    fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        SlowSwitchChannel::transmit(self, message)
    }

    fn debug_measure(&mut self, bit: bool) -> f64 {
        self.measure_bit(bit)
    }

    fn debug_decoder(&mut self) -> Option<ThresholdDecoder> {
        SlowSwitchChannel::try_calibrate(self).ok()?;
        self.decoder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    #[test]
    fn transmits_on_table4_machines() {
        // Table IV evaluates the Gold 6226 and E-2288G.
        for model in [ProcessorModel::gold_6226(), ProcessorModel::xeon_e2288g()] {
            let mut ch = SlowSwitchChannel::new(model, ChannelParams::slow_switch_defaults(), 9);
            let msg = MessagePattern::Alternating.generate(48, 0);
            let run = ch.transmit(&msg);
            assert!(
                run.error_rate() < 0.10,
                "{}: slow-switch error {:.2}%",
                model.name,
                run.error_rate() * 100.0
            );
            assert!(
                run.rate_kbps() > 100.0,
                "{}: rate {:.1} Kbps",
                model.name,
                run.rate_kbps()
            );
        }
    }

    #[test]
    fn mixed_and_ordered_have_identical_instruction_multisets() {
        let ch = SlowSwitchChannel::new(
            ProcessorModel::gold_6226(),
            ChannelParams::slow_switch_defaults(),
            1,
        );
        let count = |c: &BlockChain, lcp: bool| {
            c.blocks()[0]
                .instructions()
                .iter()
                .filter(|i| i.has_lcp() == lcp)
                .count()
        };
        assert_eq!(count(&ch.mixed, true), count(&ch.ordered, true));
        assert_eq!(count(&ch.mixed, false), count(&ch.ordered, false));
    }

    #[test]
    fn random_message_roundtrip() {
        let mut ch = SlowSwitchChannel::new(
            ProcessorModel::xeon_e2288g(),
            ChannelParams::slow_switch_defaults(),
            5,
        );
        let msg = MessagePattern::Random.generate(64, 77);
        let run = ch.transmit(&msg);
        assert!(run.error_rate() < 0.15);
    }
}

//! The slow-switch covert channel (paper §V-E): encoding bits in
//! Length-Changing-Prefix stall and DSB↔MITE switch behaviour.
//!
//! The 1-encoding alternates normal and LCP `add`s ("mixed issue"),
//! maximising path switches; the 0-encoding groups them ("ordered issue"),
//! serialising LCP pre-decode stalls instead. The two loop bodies contain
//! identical instruction multisets, so the channel is invisible to
//! instruction-count monitoring — only the *interleaving* differs (§IV-H,
//! Fig. 4).

use leaky_cpu::{Core, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{BlockChain, CodeRegion, LcpPattern};
use leaky_stats::ThresholdDecoder;

use crate::channels::calibrate_decoder;
use crate::params::ChannelParams;
use crate::run::ChannelRun;

/// Per-bit protocol overhead (cycles), calibrated alongside the non-MT
/// channels.
const PER_BIT_OVERHEAD_CYCLES: f64 = 2_200.0;

const CALIBRATION_BITS: usize = 32;
const MAX_RESAMPLE: u32 = 3;

/// The §V-E slow-switch channel.
///
/// # Examples
///
/// ```
/// use leaky_cpu::ProcessorModel;
/// use leaky_frontends::channels::slow_switch::SlowSwitchChannel;
/// use leaky_frontends::params::{ChannelParams, MessagePattern};
///
/// let mut ch = SlowSwitchChannel::new(
///     ProcessorModel::xeon_e2288g(),
///     ChannelParams::slow_switch_defaults(),
///     3,
/// );
/// let msg = MessagePattern::Alternating.generate(16, 0);
/// let run = ch.transmit(&msg);
/// assert!(run.error_rate() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct SlowSwitchChannel {
    core: Core,
    params: ChannelParams,
    mixed: BlockChain,
    ordered: BlockChain,
    decoder: Option<ThresholdDecoder>,
}

impl SlowSwitchChannel {
    /// Builds the channel: two loop bodies of `2r` adds each (mixed and
    /// ordered interleavings) in disjoint code regions.
    pub fn new(model: ProcessorModel, params: ChannelParams, seed: u64) -> Self {
        assert!(params.r > 0, "r must be positive");
        let mut region = CodeRegion::new(crate::channels::SENDER_REGION);
        let mixed = BlockChain::new(vec![region.lcp_block(LcpPattern::Mixed, params.r)]);
        let ordered = BlockChain::new(vec![region.lcp_block(LcpPattern::Ordered, params.r)]);
        SlowSwitchChannel {
            core: Core::new(model, seed),
            params,
            mixed,
            ordered,
            decoder: None,
        }
    }

    /// One bit measurement: the receiver brackets `p` iterations of the
    /// secret-selected loop body with the timer (§V-E: Init starts the
    /// timer, Decode stops it).
    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let t0 = self.core.rdtscp(tid);
        let chain = if m { &self.mixed } else { &self.ordered };
        for _ in 0..self.params.p {
            self.core.run_once(tid, chain);
        }
        let t1 = self.core.rdtscp(tid);
        self.core.idle(tid, PER_BIT_OVERHEAD_CYCLES);
        t1 - t0
    }

    fn ensure_calibrated(&mut self) {
        if self.decoder.is_some() {
            return;
        }
        let mut samples = Vec::with_capacity(CALIBRATION_BITS);
        for i in 0..CALIBRATION_BITS {
            let bit = i % 2 == 1;
            samples.push(self.measure_bit(bit));
        }
        let mut iter = samples.into_iter();
        self.decoder = Some(calibrate_decoder(
            move |_| iter.next().expect("calibration sample"),
            CALIBRATION_BITS,
        ));
    }

    /// Transmits a message (calibration excluded from the reported rate).
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above");
        let start = self.core.clock(ThreadId::T0);
        let mut received = Vec::with_capacity(message.len());
        for &bit in message {
            let mut decoded = decoder.decode_checked(self.measure_bit(bit));
            let mut tries = 0;
            while decoded.is_ambiguous() && tries < MAX_RESAMPLE {
                decoded = decoder.decode_checked(self.measure_bit(bit));
                tries += 1;
            }
            received.push(decoded.bit());
        }
        let cycles = self.core.clock(ThreadId::T0) - start;
        ChannelRun::new(
            message.to_vec(),
            received,
            cycles,
            self.core.model().freq_hz(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    #[test]
    fn transmits_on_table4_machines() {
        // Table IV evaluates the Gold 6226 and E-2288G.
        for model in [ProcessorModel::gold_6226(), ProcessorModel::xeon_e2288g()] {
            let mut ch = SlowSwitchChannel::new(model, ChannelParams::slow_switch_defaults(), 9);
            let msg = MessagePattern::Alternating.generate(48, 0);
            let run = ch.transmit(&msg);
            assert!(
                run.error_rate() < 0.10,
                "{}: slow-switch error {:.2}%",
                model.name,
                run.error_rate() * 100.0
            );
            assert!(
                run.rate_kbps() > 100.0,
                "{}: rate {:.1} Kbps",
                model.name,
                run.rate_kbps()
            );
        }
    }

    #[test]
    fn mixed_and_ordered_have_identical_instruction_multisets() {
        let ch = SlowSwitchChannel::new(
            ProcessorModel::gold_6226(),
            ChannelParams::slow_switch_defaults(),
            1,
        );
        let count = |c: &BlockChain, lcp: bool| {
            c.blocks()[0]
                .instructions()
                .iter()
                .filter(|i| i.has_lcp() == lcp)
                .count()
        };
        assert_eq!(count(&ch.mixed, true), count(&ch.ordered, true));
        assert_eq!(count(&ch.mixed, false), count(&ch.ordered, false));
    }

    #[test]
    fn random_message_roundtrip() {
        let mut ch = SlowSwitchChannel::new(
            ProcessorModel::xeon_e2288g(),
            ChannelParams::slow_switch_defaults(),
            5,
        );
        let msg = MessagePattern::Random.generate(64, 77);
        let run = ch.transmit(&msg);
        assert!(run.error_rate() < 0.15);
    }
}

//! Multi-threaded covert channels (paper §V-A, §V-B).
//!
//! Sender and receiver occupy the two hardware threads of one physical
//! core. The receiver continuously times its own d-block loop; the sender's
//! 1-encoding perturbs the shared frontend — by DSB way evictions (§V-A) or
//! by misaligned accesses that collide in LSD window tracking (§V-B) — and
//! the 0-encoding stays idle.
//!
//! Per transmitted bit the receiver performs `p` decode iterations while
//! the sender performs `q` encode iterations (§VI-A: p = 1000, q = 100).
//! Decoding works on the receiver's mean per-iteration time and supports
//! early bit declaration once the signal is decisive, which is why all-1s
//! messages transmit faster than all-0s (Table II).

use leaky_cpu::{Core, MicrocodePatch, ProcessorModel, ThreadWork};
use leaky_frontend::{ThreadId, UarchProfile};
use leaky_isa::BlockChain;
use leaky_stats::ThresholdDecoder;
use leaky_trace::{TraceEvent, TraceHook};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channels::{eviction_layout, misalignment_layout, CovertChannel};
use crate::params::ChannelParams;
use crate::run::{ChannelRun, Provenance};

/// Which frontend primitive the MT channel modulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MtKind {
    /// Cross-thread DSB way evictions (§V-A).
    Eviction,
    /// Cross-thread LSD misalignment collisions (§V-B).
    Misalignment,
}

impl std::fmt::Display for MtKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtKind::Eviction => f.write_str("eviction"),
            MtKind::Misalignment => f.write_str("misalignment"),
        }
    }
}

/// Environmental-noise model for the MT setting. Two hyper-threads sharing
/// a core in a real system suffer scheduling jitter and interference that
/// the single-thread channels do not (§VI: MT error rates are an order of
/// magnitude higher); these parameters reproduce that regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtNoise {
    /// Probability that a bit slot suffers an interference burst.
    pub burst_probability: f64,
    /// Burst magnitude relative to the receiver's mean per-iteration time
    /// (co-runner interference slows everything proportionally).
    pub burst_relative: f64,
    /// Probability that sender and receiver desynchronise so the encode
    /// only partially overlaps the decode window.
    pub desync_probability: f64,
    /// Probability that a bit *transition* causes a phase slip: part of the
    /// previous bit's frontend state bleeds into the measurement window.
    /// Messages with many transitions (alternating, random) suffer more
    /// (Table II's pattern-dependent error rates).
    pub phase_slip_probability: f64,
}

impl Default for MtNoise {
    fn default() -> Self {
        MtNoise {
            burst_probability: 0.10,
            burst_relative: 0.2,
            desync_probability: 0.08,
            phase_slip_probability: 0.30,
        }
    }
}

/// Bits used for threshold calibration.
const CALIBRATION_BITS: usize = 24;

/// Receiver decode batches per bit; early declaration is possible after
/// [`MIN_BATCHES`].
const BATCHES: u64 = 10;
const MIN_BATCHES: u64 = 3;

/// Extra confirmation batches when a bit decodes as 0: a present signal is
/// positive evidence, but *absence* of interference needs longer
/// observation to rule out desynchronisation — which is why all-1s
/// messages transmit faster than all-0s (Table II).
const ZERO_CONFIRM_BATCHES: u64 = 5;

/// Per-bit synchronisation overhead between the threads (cycles).
const PER_BIT_SYNC_CYCLES: f64 = 1_500.0;

/// Absolute per-iteration margin (cycles) required for early declaration.
const NOISE_FLOOR_CYCLES: f64 = 2.5;

/// A multi-threaded covert channel (§V-A / §V-B).
#[derive(Debug, Clone)]
pub struct MtChannel {
    core: Core,
    kind: MtKind,
    params: ChannelParams,
    noise: MtNoise,
    profile_key: &'static str,
    recv: BlockChain,
    send_one: BlockChain,
    decoder: Option<ThresholdDecoder>,
    rng: StdRng,
}

/// The registry name of an MT variant (see [`crate::channels::registry`]).
const fn mt_name(kind: MtKind) -> &'static str {
    match kind {
        MtKind::Eviction => "mt-eviction",
        MtKind::Misalignment => "mt-misalignment",
    }
}

impl MtChannel {
    /// Builds the channel on a fresh core.
    ///
    /// # Errors
    ///
    /// Returns [`MtUnsupported`] if the processor model has hyper-threading
    /// disabled (the Azure E-2288G — Table III's missing MT column).
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn new(
        model: ProcessorModel,
        kind: MtKind,
        params: ChannelParams,
        seed: u64,
    ) -> Result<Self, MtUnsupported> {
        Self::with_profile(model, kind, params, &UarchProfile::skylake(), seed)
    }

    /// Builds the channel under an explicit microarchitecture profile
    /// (layout geometry and cost model from the profile; see
    /// [`NonMtChannel::with_profile`](crate::channels::non_mt::NonMtChannel::with_profile)).
    ///
    /// # Errors
    ///
    /// Returns [`MtUnsupported`] if the processor model has hyper-threading
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if the channel parameters violate the §V constraints
    /// (`ChannelParams::validate`).
    pub fn with_profile(
        model: ProcessorModel,
        kind: MtKind,
        params: ChannelParams,
        profile: &UarchProfile,
        seed: u64,
    ) -> Result<Self, MtUnsupported> {
        if !model.smt_enabled {
            return Err(MtUnsupported { model: model.name });
        }
        let geom = &profile.geometry;
        params.validate(geom.dsb_ways, kind == MtKind::Misalignment);
        let (recv, send_one) = match kind {
            MtKind::Eviction => {
                let l = eviction_layout(&params, geom);
                (l.recv, l.send_one)
            }
            MtKind::Misalignment => {
                let l = misalignment_layout(&params, geom);
                (l.recv, l.send_one)
            }
        };
        Ok(MtChannel {
            core: Core::with_profile(model, MicrocodePatch::Patch1, profile, seed),
            kind,
            params,
            noise: MtNoise::default(),
            profile_key: profile.key,
            recv,
            send_one,
            decoder: None,
            rng: StdRng::seed_from_u64(seed ^ 0xc0ff_ee00),
        })
    }

    /// Overrides the environmental-noise model (for ablations; the default
    /// reproduces the paper's MT error regime).
    pub fn set_noise(&mut self, noise: MtNoise) {
        self.noise = noise;
    }

    /// Rebuilds the channel's core with an explicit frontend configuration
    /// (defense evaluation and DSB-policy ablations). Resets calibration.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn set_frontend_config(&mut self, config: leaky_frontend::FrontendConfig) {
        self.core =
            Core::with_frontend_config(*self.core.model(), self.core.microcode(), config, 0xab1a7e);
        self.decoder = None;
        self.profile_key = "custom";
    }

    /// The channel variant.
    pub fn kind(&self) -> MtKind {
        self.kind
    }

    /// Measures one bit: mean receiver per-iteration cycles across up to
    /// [`BATCHES`] batches, with early declaration once decisive.
    fn measure_bit(
        &mut self,
        m: bool,
        decoder: Option<&ThresholdDecoder>,
        transition: bool,
    ) -> f64 {
        let p_batch = (self.params.p / BATCHES).max(1);
        // The sender keeps encoding for the whole decode window (the paper's
        // q encode *steps* repeat until the bit slot ends). Iterations are
        // balanced by block count so sender and receiver finish their batch
        // at roughly the same wall time regardless of d.
        let recv_blocks = self.recv.len().max(1) as u64;
        let send_blocks = self.send_one.len().max(1) as u64;
        // Sender blocks decode via the contended MITE (~2x a receiver
        // block), so halve the iteration ratio to balance wall time.
        let q_batch = (p_batch * recv_blocks / (2 * send_blocks)).max(1);
        let burst = self.rng.gen_bool(self.noise.burst_probability);
        // Sender/receiver desynchronisation mostly happens when the sender
        // switches activity between bits (§VI-D: constant patterns are
        // stable); constant runs stay in lock-step.
        let desync = transition && self.rng.gen_bool(self.noise.desync_probability);

        let mut cycles = 0.0;
        let mut iters = 0u64;
        let t0 = self.core.rdtscp(ThreadId::T0);
        // Phase slip on transitions: the first measured batches still see
        // the *previous* bit's frontend state.
        if transition && self.rng.gen_bool(self.noise.phase_slip_probability) {
            for _ in 0..2 {
                if !m {
                    // Previous bit was 1: stale contention bleeds in.
                    let (r, _s) = self.core.run_concurrent(
                        ThreadWork {
                            chain: &self.recv,
                            iterations: p_batch,
                        },
                        ThreadWork {
                            chain: &self.send_one,
                            iterations: q_batch,
                        },
                    );
                    cycles += r.cycles;
                } else {
                    // Previous bit was 0: a quiet prefix dilutes the signal.
                    let r = self.core.run_loop(ThreadId::T0, &self.recv, p_batch);
                    cycles += r.cycles;
                }
                iters += p_batch;
            }
        }
        for batch in 0..BATCHES {
            if m {
                // Desync: the sender misses most of the decode window.
                let q_eff = if desync { q_batch / 4 } else { q_batch };
                let (r, _s) = self.core.run_concurrent(
                    ThreadWork {
                        chain: &self.recv,
                        iterations: p_batch,
                    },
                    ThreadWork {
                        chain: &self.send_one,
                        iterations: q_eff.max(1),
                    },
                );
                cycles += r.cycles;
            } else {
                let r = self.core.run_loop(ThreadId::T0, &self.recv, p_batch);
                cycles += r.cycles;
            }
            if burst {
                // Interference inflates the receiver's wall time in
                // proportion to its current pace.
                let pace = cycles / (iters + p_batch) as f64;
                let extra = self.noise.burst_relative * pace * p_batch as f64;
                self.core.idle(ThreadId::T0, extra);
                cycles += extra;
            }
            iters += p_batch;
            // Early declaration: a decisively slow/fast signal lets the
            // receiver move to the next bit without burning all batches.
            if let Some(dec) = decoder {
                if batch + 1 >= MIN_BATCHES {
                    let avg = cycles / iters as f64;
                    let decided_one = dec.decode(avg);
                    let margin = (avg - dec.threshold()).abs();
                    // Early declaration needs the margin to clear both the
                    // relative band and an absolute noise floor — small-d
                    // channels (tiny timing deltas) must keep sampling,
                    // which is why rate grows with d (Fig. 8).
                    if decided_one && margin > (dec.separation() * 0.4).max(NOISE_FLOOR_CYCLES) {
                        break;
                    }
                }
            }
        }
        // Confirmation pass: a 0-looking measurement is re-observed before
        // the receiver commits to "no signal".
        if let Some(dec) = decoder {
            let looks_zero = !dec.decode(cycles / iters as f64);
            if looks_zero {
                for _ in 0..ZERO_CONFIRM_BATCHES {
                    if m {
                        let (r, _s) = self.core.run_concurrent(
                            ThreadWork {
                                chain: &self.recv,
                                iterations: p_batch,
                            },
                            ThreadWork {
                                chain: &self.send_one,
                                iterations: q_batch,
                            },
                        );
                        cycles += r.cycles;
                    } else {
                        let r = self.core.run_loop(ThreadId::T0, &self.recv, p_batch);
                        cycles += r.cycles;
                    }
                    iters += p_batch;
                }
            }
        }
        let t1 = self.core.rdtscp(ThreadId::T0);
        let _ = cycles; // receiver-only cycles; the timed bracket is used
        self.core.idle(ThreadId::T0, PER_BIT_SYNC_CYCLES);
        // Per-iteration average; timer noise and bursts are folded into the
        // rdtscp bracket, and calibration absorbs fixed offsets.
        let value = (t1 - t0).max(1.0) / iters as f64;
        self.core
            .trace_mut()
            .emit(|| TraceEvent::ChannelMeasure { sent: m, value });
        value
    }

    /// Attempts calibration, reporting failure instead of panicking: a
    /// hardened (e.g. constant-time-profile) frontend may present no
    /// timing difference between the bit classes, which is the §XII
    /// defense succeeding rather than a harness error.
    ///
    /// # Panics
    ///
    /// Panics if rebuilding the channel spec for calibration fails
    /// validation (`ChannelSpec::build`); parameters accepted at
    /// construction never do.
    pub fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        if self.decoder.is_some() {
            return Ok(());
        }
        for i in 0..8 {
            let _ = self.measure_bit(i % 2 == 1, None, false); // warmup
        }
        match crate::channels::try_calibrate_decoder(
            |bit| self.measure_bit(bit, None, false),
            CALIBRATION_BITS,
        ) {
            Ok(decoder) => {
                self.core.trace_mut().emit(|| TraceEvent::Calibration {
                    zero_mean: decoder.zero_mean(),
                    one_mean: decoder.one_mean(),
                    threshold: decoder.threshold(),
                    separation: decoder.separation(),
                });
                self.decoder = Some(decoder);
                Ok(())
            }
            Err(err) => {
                self.core.trace_mut().emit(|| TraceEvent::CalibrationFailed);
                Err(err)
            }
        }
    }

    fn ensure_calibrated(&mut self) {
        self.try_calibrate()
            .expect("calibration produced indistinguishable classes"); // lint: allow(panic-path) — undefended layouts always separate classes
    }

    /// Transmits a message; calibration happens first and is excluded from
    /// the reported rate.
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self
            .core
            .clock(ThreadId::T0)
            .max(self.core.clock(ThreadId::T1));
        self.core.trace_mut().emit(|| TraceEvent::SessionStart {
            bits: message.len() as u64,
        });
        let mut received = Vec::with_capacity(message.len());
        let mut errors = 0u64;
        let mut prev: Option<bool> = None;
        for (index, &bit) in message.iter().enumerate() {
            let transition = prev.is_some_and(|p| p != bit);
            let meas = self.measure_bit(bit, Some(&decoder), transition);
            let out = decoder.decode(meas);
            errors += u64::from(out != bit);
            self.core.trace_mut().emit(|| TraceEvent::BitDecoded {
                index: index as u64,
                sent: bit,
                received: out,
                value: meas,
                resamples: 0,
            });
            received.push(out);
            prev = Some(bit);
        }
        self.core.trace_mut().emit(|| TraceEvent::SessionEnd {
            bits: message.len() as u64,
            errors,
        });
        let end = self
            .core
            .clock(ThreadId::T0)
            .max(self.core.clock(ThreadId::T1));
        ChannelRun::new(
            message.to_vec(),
            received,
            end - start,
            self.core.model().freq_hz(),
        )
        .with_provenance(Provenance {
            channel: mt_name(self.kind),
            profile: self.profile_key,
            params: self.params,
        })
    }
}

impl CovertChannel for MtChannel {
    fn name(&self) -> &'static str {
        mt_name(self.kind)
    }

    fn profile_key(&self) -> &'static str {
        self.profile_key
    }

    fn params(&self) -> ChannelParams {
        self.params
    }

    fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        MtChannel::try_calibrate(self)
    }

    fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        MtChannel::transmit(self, message)
    }

    fn debug_measure(&mut self, bit: bool) -> f64 {
        self.measure_bit(bit, None, false)
    }

    fn debug_decoder(&mut self) -> Option<ThresholdDecoder> {
        MtChannel::try_calibrate(self).ok()?;
        self.decoder
    }

    fn set_trace(&mut self, hook: TraceHook) {
        self.core.set_trace(hook);
    }

    fn take_trace(&mut self) -> TraceHook {
        self.core.take_trace()
    }
}

/// Error: the processor model cannot host MT attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtUnsupported {
    /// The offending model.
    pub model: &'static str,
}

impl std::fmt::Display for MtUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} has hyper-threading disabled", self.model)
    }
}

impl std::error::Error for MtUnsupported {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    fn eviction_channel(seed: u64) -> MtChannel {
        MtChannel::new(
            ProcessorModel::gold_6226(),
            MtKind::Eviction,
            ChannelParams::mt_defaults(),
            seed,
        )
        .expect("6226 supports SMT")
    }

    #[test]
    fn profile_construction_matches_default_and_respects_smt() {
        // skylake profile == legacy construction, bit for bit.
        let msg = MessagePattern::Alternating.generate(16, 0);
        let mut a = eviction_channel(7);
        let mut b = MtChannel::with_profile(
            ProcessorModel::gold_6226(),
            MtKind::Eviction,
            ChannelParams::mt_defaults(),
            &UarchProfile::skylake(),
            7,
        )
        .unwrap();
        assert_eq!(a.transmit(&msg).received(), b.transmit(&msg).received());
        // SMT-less machines stay unsupported on every profile.
        assert!(MtChannel::with_profile(
            ProcessorModel::xeon_e2288g(),
            MtKind::Eviction,
            ChannelParams::mt_defaults(),
            &UarchProfile::icelake(),
            7,
        )
        .is_err());
    }

    #[test]
    fn icelake_profile_eviction_channel_still_works() {
        // No LSD on the profile: the eviction channel leaks through DSB
        // way contention alone; try_calibrate must succeed.
        let mut ch = MtChannel::with_profile(
            ProcessorModel::gold_6226(),
            MtKind::Eviction,
            ChannelParams::mt_defaults(),
            &UarchProfile::icelake(),
            11,
        )
        .unwrap();
        ch.try_calibrate().expect("DSB contention is calibratable");
        let run = ch.transmit(&MessagePattern::Alternating.generate(24, 0));
        assert!(
            run.error_rate() < 0.35,
            "icelake MT eviction error {:.1}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn smt_disabled_machine_is_rejected() {
        let err = MtChannel::new(
            ProcessorModel::xeon_e2288g(),
            MtKind::Eviction,
            ChannelParams::mt_defaults(),
            1,
        )
        .unwrap_err();
        assert!(err.to_string().contains("E-2288G"));
    }

    #[test]
    fn mt_eviction_transmits() {
        let mut ch = eviction_channel(11);
        let msg = MessagePattern::Alternating.generate(32, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.30,
            "MT eviction error {:.1}%",
            run.error_rate() * 100.0
        );
        // Table III: MT rates are tens to ~200 Kbps.
        assert!(
            run.rate_kbps() > 10.0 && run.rate_kbps() < 1000.0,
            "MT rate {:.1} Kbps",
            run.rate_kbps()
        );
    }

    #[test]
    fn mt_misalignment_transmits() {
        let mut ch = MtChannel::new(
            ProcessorModel::gold_6226(),
            MtKind::Misalignment,
            ChannelParams::mt_misalignment_defaults(),
            13,
        )
        .unwrap();
        let msg = MessagePattern::Alternating.generate(32, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.30,
            "MT misalignment error {:.1}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn noiseless_mt_channel_is_error_free() {
        let mut ch = eviction_channel(17);
        ch.set_noise(MtNoise {
            burst_probability: 0.0,
            burst_relative: 0.0,
            desync_probability: 0.0,
            phase_slip_probability: 0.0,
        });
        let msg = MessagePattern::Alternating.generate(32, 0);
        let run = ch.transmit(&msg);
        assert_eq!(
            run.error_rate(),
            0.0,
            "without environmental noise the channel must be clean"
        );
    }

    #[test]
    fn all_ones_faster_than_all_zeros() {
        // Table II: early declaration makes 1-heavy messages faster.
        let ones = MessagePattern::AllOnes.generate(24, 0);
        let zeros = MessagePattern::AllZeros.generate(24, 0);
        let r1 = eviction_channel(23).transmit(&ones);
        let r0 = eviction_channel(23).transmit(&zeros);
        assert!(
            r1.rate_kbps() > r0.rate_kbps(),
            "all-1s {:.1} vs all-0s {:.1} Kbps",
            r1.rate_kbps(),
            r0.rate_kbps()
        );
    }
}

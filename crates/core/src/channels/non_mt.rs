//! Non-multithreaded covert channels (paper §V-C, §V-D).
//!
//! Sender and receiver run on the *same* hardware thread; the receiver
//! times the sender's whole Init-Encode-Decode sequence and the signal is
//! the sender's **internal interference**: the 1-encoding perturbs the
//! frontend path of the blocks that the Init and Decode steps execute,
//! while the 0-encoding (silent or decoy-set) leaves them alone.

use leaky_cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontend::{ThreadId, UarchProfile};
use leaky_isa::BlockChain;
use leaky_stats::ThresholdDecoder;
use leaky_trace::{TraceEvent, TraceHook};

use crate::channels::{eviction_layout, misalignment_layout, CovertChannel};
use crate::params::{ChannelParams, EncodeMode};
use crate::run::{ChannelRun, Provenance};

/// Which frontend primitive the channel modulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonMtKind {
    /// DSB set-collision evictions (§V-C): the 1-encoding pushes the set
    /// over its 8 ways, forcing receiver blocks back to the MITE.
    Eviction,
    /// Misaligned (window-crossing) accesses (§V-D): the 1-encoding's
    /// crossing blocks perturb LSD/DSB residency without full evictions.
    Misalignment,
}

impl std::fmt::Display for NonMtKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonMtKind::Eviction => f.write_str("eviction"),
            NonMtKind::Misalignment => f.write_str("misalignment"),
        }
    }
}

/// Fixed per-bit protocol overhead (loop management, synchronisation,
/// decision logic) in cycles; calibrated so absolute rates land in the
/// paper's range (Table III). The stealthy mode pays extra for its decoy
/// work and activity masking.
const FAST_OVERHEAD_CYCLES: f64 = 2_200.0;
const STEALTHY_OVERHEAD_CYCLES: f64 = 2_600.0;

/// Warm-up bits discarded before calibration (cold-start transients).
const WARMUP_BITS: usize = 8;

/// Bits used for threshold calibration before a transmission.
const CALIBRATION_BITS: usize = 32;

/// Maximum re-measurements when a reading falls in the ambiguity band.
const MAX_RESAMPLE: u32 = 3;

/// A non-MT covert channel (§V-C eviction or §V-D misalignment variant, in
/// stealthy or fast mode).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct NonMtChannel {
    core: Core,
    kind: NonMtKind,
    mode: EncodeMode,
    params: ChannelParams,
    profile_key: &'static str,
    recv: BlockChain,
    send_one: BlockChain,
    send_zero: Option<BlockChain>,
    decoder: Option<ThresholdDecoder>,
}

/// The registry name of a non-MT variant (see
/// [`crate::channels::registry`]).
const fn non_mt_name(kind: NonMtKind, mode: EncodeMode) -> &'static str {
    match (kind, mode) {
        (NonMtKind::Eviction, EncodeMode::Stealthy) => "non-mt-stealthy-eviction",
        (NonMtKind::Eviction, EncodeMode::Fast) => "non-mt-fast-eviction",
        (NonMtKind::Misalignment, EncodeMode::Stealthy) => "non-mt-stealthy-misalignment",
        (NonMtKind::Misalignment, EncodeMode::Fast) => "non-mt-fast-misalignment",
    }
}

impl NonMtChannel {
    /// Builds the channel on a fresh core for `model`, under the default
    /// (`skylake`) microarchitecture profile.
    ///
    /// # Panics
    ///
    /// Panics if `params` violate the §V constraints (see
    /// [`ChannelParams::validate`]).
    pub fn new(
        model: ProcessorModel,
        kind: NonMtKind,
        mode: EncodeMode,
        params: ChannelParams,
        seed: u64,
    ) -> Self {
        Self::with_profile(model, kind, mode, params, &UarchProfile::skylake(), seed)
    }

    /// Builds the channel for an explicit microarchitecture profile: the
    /// code layout is derived from the profile's geometry (sender block
    /// counts follow its DSB way count) and the core runs the profile's
    /// cost model, with loop streaming gated by both the profile and the
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `params` violate the §V constraints under the profile's
    /// geometry.
    pub fn with_profile(
        model: ProcessorModel,
        kind: NonMtKind,
        mode: EncodeMode,
        params: ChannelParams,
        profile: &UarchProfile,
        seed: u64,
    ) -> Self {
        let geom = &profile.geometry;
        params.validate(geom.dsb_ways, kind == NonMtKind::Misalignment);
        let (recv, send_one, send_zero) = match kind {
            NonMtKind::Eviction => {
                let l = eviction_layout(&params, geom);
                (l.recv, l.send_one, l.send_zero)
            }
            NonMtKind::Misalignment => {
                let l = misalignment_layout(&params, geom);
                (l.recv, l.send_one, l.send_zero)
            }
        };
        let send_zero = match mode {
            EncodeMode::Stealthy => Some(send_zero),
            EncodeMode::Fast => None,
        };
        NonMtChannel {
            core: Core::with_profile(model, MicrocodePatch::Patch1, profile, seed),
            kind,
            mode,
            params,
            profile_key: profile.key,
            recv,
            send_one,
            send_zero,
            decoder: None,
        }
    }

    /// Replaces the channel's core with one built from an explicit frontend
    /// configuration — used by the §XII defense evaluation to attack a
    /// hardened (e.g. constant-time) frontend.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn with_frontend_config(
        mut self,
        config: leaky_frontend::FrontendConfig,
        seed: u64,
    ) -> Self {
        self.core =
            Core::with_frontend_config(*self.core.model(), self.core.microcode(), config, seed);
        self.decoder = None;
        self.profile_key = "custom";
        self
    }

    /// Attempts calibration, reporting failure instead of panicking — a
    /// defended frontend may be *uncalibratable* (no timing difference
    /// between the bit classes), which is itself the §XII success metric.
    ///
    /// # Panics
    ///
    /// Panics if rebuilding the channel spec for calibration fails
    /// validation (`ChannelSpec::build`); parameters accepted at
    /// construction never do.
    pub fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        if self.decoder.is_some() {
            return Ok(());
        }
        for i in 0..WARMUP_BITS {
            let _ = self.measure_bit(i % 2 == 1);
        }
        match crate::channels::try_calibrate_decoder(|bit| self.measure_bit(bit), CALIBRATION_BITS)
        {
            Ok(decoder) => {
                self.core.trace_mut().emit(|| TraceEvent::Calibration {
                    zero_mean: decoder.zero_mean(),
                    one_mean: decoder.one_mean(),
                    threshold: decoder.threshold(),
                    separation: decoder.separation(),
                });
                self.decoder = Some(decoder);
                Ok(())
            }
            Err(err) => {
                self.core.trace_mut().emit(|| TraceEvent::CalibrationFailed);
                Err(err)
            }
        }
    }

    /// The channel variant.
    pub fn kind(&self) -> NonMtKind {
        self.kind
    }

    /// The zero-encoding mode.
    pub fn mode(&self) -> EncodeMode {
        self.mode
    }

    /// One complete Init-Encode-Decode measurement for a bit (§V-C): the
    /// receiver's timer brackets `p` rounds of the three steps.
    fn measure_bit(&mut self, m: bool) -> f64 {
        let tid = ThreadId::T0;
        let t0 = self.core.rdtscp(tid);
        for _ in 0..self.params.p {
            // Init: receiver's d blocks onto their fast path.
            self.core.run_once(tid, &self.recv);
            // Encode: the sender's secret-dependent accesses.
            if m {
                self.core.run_once(tid, &self.send_one);
            } else if let Some(zero) = &self.send_zero {
                self.core.run_once(tid, zero);
            }
            // Decode: re-access the d blocks; eviction/misalignment effects
            // of the encode step show up here.
            self.core.run_once(tid, &self.recv);
        }
        let t1 = self.core.rdtscp(tid);
        let overhead = match self.mode {
            EncodeMode::Fast => FAST_OVERHEAD_CYCLES,
            EncodeMode::Stealthy => STEALTHY_OVERHEAD_CYCLES,
        };
        self.core.idle(tid, overhead);
        let value = t1 - t0;
        self.core
            .trace_mut()
            .emit(|| TraceEvent::ChannelMeasure { sent: m, value });
        value
    }

    fn ensure_calibrated(&mut self) {
        self.try_calibrate()
            .expect("calibration produced indistinguishable classes"); // lint: allow(panic-path) — undefended layouts always separate classes
    }

    /// Transmits a message, returning sent/received bits and timing.
    /// Calibration (if not yet done) happens first and is excluded from the
    /// reported transmission time, matching the paper's methodology.
    ///
    /// # Panics
    ///
    /// Panics if the transmission spans no cycles (`ChannelRun::new`);
    /// a calibrated channel never produces one.
    pub fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        self.ensure_calibrated();
        let decoder = self.decoder.expect("calibrated above"); // lint: allow(panic-path) — set by ensure_calibrated on the previous line
        let start = self.core.clock(ThreadId::T0);
        self.core.trace_mut().emit(|| TraceEvent::SessionStart {
            bits: message.len() as u64,
        });
        let mut received = Vec::with_capacity(message.len());
        let mut errors = 0u64;
        for (index, &bit) in message.iter().enumerate() {
            let mut value = self.measure_bit(bit);
            let mut decoded = decoder.decode_checked(value);
            let mut tries = 0;
            while decoded.is_ambiguous() && tries < MAX_RESAMPLE {
                value = self.measure_bit(bit);
                decoded = decoder.decode_checked(value);
                tries += 1;
            }
            let out = decoded.bit();
            errors += u64::from(out != bit);
            self.core.trace_mut().emit(|| TraceEvent::BitDecoded {
                index: index as u64,
                sent: bit,
                received: out,
                value,
                resamples: tries,
            });
            received.push(out);
        }
        self.core.trace_mut().emit(|| TraceEvent::SessionEnd {
            bits: message.len() as u64,
            errors,
        });
        let cycles = self.core.clock(ThreadId::T0) - start;
        ChannelRun::new(
            message.to_vec(),
            received,
            cycles,
            self.core.model().freq_hz(),
        )
        .with_provenance(Provenance {
            channel: non_mt_name(self.kind, self.mode),
            profile: self.profile_key,
            params: self.params,
        })
    }
}

impl CovertChannel for NonMtChannel {
    fn name(&self) -> &'static str {
        non_mt_name(self.kind, self.mode)
    }

    fn profile_key(&self) -> &'static str {
        self.profile_key
    }

    fn params(&self) -> ChannelParams {
        self.params
    }

    fn try_calibrate(&mut self) -> Result<(), leaky_stats::threshold::CalibrationError> {
        NonMtChannel::try_calibrate(self)
    }

    fn transmit(&mut self, message: &[bool]) -> ChannelRun {
        NonMtChannel::transmit(self, message)
    }

    fn debug_measure(&mut self, bit: bool) -> f64 {
        self.measure_bit(bit)
    }

    fn debug_decoder(&mut self) -> Option<ThresholdDecoder> {
        NonMtChannel::try_calibrate(self).ok()?;
        self.decoder
    }

    fn set_trace(&mut self, hook: TraceHook) {
        self.core.set_trace(hook);
    }

    fn take_trace(&mut self) -> TraceHook {
        self.core.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MessagePattern;

    fn channel(model: ProcessorModel, kind: NonMtKind, mode: EncodeMode) -> NonMtChannel {
        let params = match kind {
            NonMtKind::Eviction => ChannelParams::eviction_defaults(),
            NonMtKind::Misalignment => ChannelParams::misalignment_defaults(),
        };
        NonMtChannel::new(model, kind, mode, params, 42)
    }

    #[test]
    fn fast_eviction_transmits_cleanly_on_quiet_machine() {
        let mut ch = channel(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
        );
        let msg = MessagePattern::Alternating.generate(64, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.05,
            "fast eviction error {:.2}%",
            run.error_rate() * 100.0
        );
        // Table III: 2288G non-MT fast eviction ≈ 1.4 Mbps; require the
        // right order of magnitude.
        assert!(
            run.rate_kbps() > 300.0 && run.rate_kbps() < 5000.0,
            "rate {:.1} Kbps",
            run.rate_kbps()
        );
    }

    #[test]
    fn fast_misalignment_transmits_cleanly() {
        let mut ch = channel(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Misalignment,
            EncodeMode::Fast,
        );
        let msg = MessagePattern::Alternating.generate(64, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.05,
            "fast misalignment error {:.2}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn stealthy_variants_work_on_all_machines() {
        for model in ProcessorModel::all() {
            for kind in [NonMtKind::Eviction, NonMtKind::Misalignment] {
                let mut ch = channel(model, kind, EncodeMode::Stealthy);
                let msg = MessagePattern::Alternating.generate(48, 0);
                let run = ch.transmit(&msg);
                assert!(
                    run.error_rate() < 0.30,
                    "{} stealthy {kind} error {:.2}%",
                    model.name,
                    run.error_rate() * 100.0
                );
            }
        }
    }

    #[test]
    fn fast_beats_stealthy_rate() {
        // Table III: fast variants transmit faster than stealthy ones.
        let msg = MessagePattern::Alternating.generate(64, 0);
        let mut fast = channel(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
        );
        let mut stealthy = channel(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Stealthy,
        );
        let rf = fast.transmit(&msg);
        let rs = stealthy.transmit(&msg);
        assert!(
            rf.rate_kbps() > rs.rate_kbps(),
            "fast {:.1} vs stealthy {:.1} Kbps",
            rf.rate_kbps(),
            rs.rate_kbps()
        );
    }

    #[test]
    fn works_without_lsd_hardware() {
        // E-2174G has the LSD disabled (Table I); both channels must still
        // function through pure DSB/MITE effects.
        for kind in [NonMtKind::Eviction, NonMtKind::Misalignment] {
            let mut ch = channel(ProcessorModel::xeon_e2174g(), kind, EncodeMode::Fast);
            let msg = MessagePattern::Alternating.generate(48, 0);
            let run = ch.transmit(&msg);
            assert!(
                run.error_rate() < 0.10,
                "{kind} on LSD-less machine: {:.2}%",
                run.error_rate() * 100.0
            );
        }
    }

    #[test]
    fn icelake_profile_still_leaks_through_the_dsb() {
        // The Ice-Lake-class profile has no LSD, but eviction channels work
        // through pure DSB/MITE transitions (like the LSD-less E-2174G).
        let mut ch = NonMtChannel::with_profile(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            &UarchProfile::icelake(),
            42,
        );
        let msg = MessagePattern::Alternating.generate(48, 0);
        let run = ch.transmit(&msg);
        assert!(
            run.error_rate() < 0.10,
            "icelake eviction error {:.2}%",
            run.error_rate() * 100.0
        );
    }

    #[test]
    fn constant_time_profile_kills_the_channel() {
        // The registered defense profile reproduces the §XII result without
        // hand-building a FrontendConfig.
        let mut ch = NonMtChannel::with_profile(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Stealthy,
            ChannelParams::eviction_defaults(),
            &UarchProfile::constant_time(),
            5,
        );
        match ch.try_calibrate() {
            Err(_) => {} // indistinguishable classes: perfect defense
            Ok(()) => {
                let run = ch.transmit(&MessagePattern::Random.generate(64, 9));
                assert!(
                    run.error_rate() > 0.25,
                    "constant-time profile leaked: {:.1}% error",
                    run.error_rate() * 100.0
                );
            }
        }
    }

    #[test]
    fn skylake_profile_is_the_default_construction() {
        // `new` and `with_profile(skylake)` must be byte-equivalent runs.
        let msg = MessagePattern::Alternating.generate(32, 0);
        let mut a = channel(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
        );
        let mut b = NonMtChannel::with_profile(
            ProcessorModel::gold_6226(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            &UarchProfile::skylake(),
            42,
        );
        let ra = a.transmit(&msg);
        let rb = b.transmit(&msg);
        assert_eq!(ra.received(), rb.received());
        assert_eq!(ra.rate_kbps(), rb.rate_kbps());
    }

    #[test]
    fn trace_captures_channel_events_without_changing_the_run() {
        use leaky_trace::{TraceHook, TraceMode};
        let msg = MessagePattern::Alternating.generate(16, 0);
        let mut plain = channel(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
        );
        let mut traced = channel(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
        );
        traced.set_trace(TraceHook::new(TraceMode::Summary));
        let rp = plain.transmit(&msg);
        let rt = traced.transmit(&msg);
        assert_eq!(rp.received(), rt.received());
        assert_eq!(rp.rate_kbps(), rt.rate_kbps());
        let summary = traced.take_trace().summary().expect("hook was on");
        assert_eq!(summary.calibrations, 1);
        assert_eq!(summary.bits, 16);
        assert_eq!(summary.error_rate(), rt.error_rate());
        // Warm-up + calibration + per-bit decodes all measure.
        assert!(summary.channel_measures as usize >= WARMUP_BITS + CALIBRATION_BITS + 16);
        assert!(summary.iterations > 0, "frontend events flow through too");
        assert!(summary.last_calibration.is_some());
    }

    #[test]
    fn random_messages_roundtrip_reasonably() {
        let mut ch = channel(
            ProcessorModel::xeon_e2286g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
        );
        let msg = MessagePattern::Random.generate(64, 5);
        let run = ch.transmit(&msg);
        assert!(run.error_rate() < 0.15);
    }
}

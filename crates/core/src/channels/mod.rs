//! Covert-channel implementations (paper §V).
//!
//! All channels share the three-step Init/Encode/Decode structure and the
//! same code layout discipline: receiver and sender occupy disjoint virtual
//! address regions whose instruction mix blocks collide in one chosen DSB
//! set (Fig. 3).

pub mod mt;
pub mod non_mt;
pub mod power;
pub mod registry;
pub mod slow_switch;

use leaky_isa::{Alignment, BlockChain, CodeRegion, DsbSet, FrontendGeometry};
use leaky_stats::threshold::CalibrationError;
use leaky_stats::{ThresholdDecoder, ThresholdDecoderBuilder};

use crate::params::ChannelParams;
use crate::run::ChannelRun;

pub use registry::{channel_info, channel_names, BuildError, ChannelInfo, ChannelSpec, REGISTRY};

/// The uniform surface every §V/§VII covert channel presents: the
/// Init/Encode/Decode protocol behind one object-safe trait, so sweeps,
/// CLIs and tests can hold a `Box<dyn CovertChannel>` built from a
/// [`ChannelSpec`] instead of matching on concrete types.
///
/// Implemented by [`non_mt::NonMtChannel`], [`mt::MtChannel`],
/// [`power::PowerChannel`] and [`slow_switch::SlowSwitchChannel`]; the
/// concrete constructors remain available as thin shims.
pub trait CovertChannel: std::fmt::Debug {
    /// The channel's stable registry name (e.g. `"mt-eviction"`; see
    /// [`registry::REGISTRY`]).
    fn name(&self) -> &'static str;

    /// Registry key of the microarchitecture profile the channel was
    /// built under (`"custom"` after a frontend-config override).
    fn profile_key(&self) -> &'static str;

    /// The §V parameters the channel was built with.
    fn params(&self) -> ChannelParams;

    /// Attempts threshold calibration, reporting failure instead of
    /// panicking: a hardened frontend may present no timing difference
    /// between the bit classes, which is the §XII defense succeeding
    /// rather than a harness error. Idempotent once calibrated.
    fn try_calibrate(&mut self) -> Result<(), CalibrationError>;

    /// Transmits a message, calibrating first if necessary (calibration
    /// is excluded from the reported rate, matching §VI methodology).
    ///
    /// # Panics
    ///
    /// Panics if calibration finds indistinguishable bit classes; use
    /// [`CovertChannel::try_calibrate`] first to observe that outcome.
    fn transmit(&mut self, message: &[bool]) -> ChannelRun;

    /// Debug hook: one raw per-bit measurement (cycles or watts,
    /// whatever the channel's receiver observes), exposed for
    /// diagnostics and ablation benches.
    fn debug_measure(&mut self, bit: bool) -> f64;

    /// Debug hook: the calibrated threshold decoder, calibrating first;
    /// `None` when calibration fails (dead channel).
    fn debug_decoder(&mut self) -> Option<ThresholdDecoder>;

    /// Installs a trace hook (DESIGN.md §12); behavior-free. Channels
    /// that carry a simulated core thread the hook down to its
    /// `Frontend` and add their own calibration / per-bit decode events;
    /// the default ignores it, so sinks simply see no events from
    /// channels that predate the trace layer.
    fn set_trace(&mut self, hook: leaky_trace::TraceHook) {
        let _ = hook;
    }

    /// Detaches the trace hook installed by
    /// [`CovertChannel::set_trace`], leaving tracing off. The default
    /// (for untraced channels) reports tracing off.
    fn take_trace(&mut self) -> leaky_trace::TraceHook {
        leaky_trace::TraceHook::Off
    }
}

/// Virtual-address region bases for the two parties (arbitrary, disjoint;
/// receiver base mirrors the paper's Fig. 3 example addresses).
pub(crate) const RECEIVER_REGION: u64 = 0x0041_8000;
pub(crate) const SENDER_REGION: u64 = 0x0082_0000;
pub(crate) const SENDER_ALT_REGION: u64 = 0x00c3_0000;

/// The DSB set all channel layouts collide in (`x` in the paper's attack
/// descriptions) and the decoy set used by stealthy zero-encoding (`y`).
pub(crate) const SET_X: u8 = 3;
pub(crate) const SET_Y: u8 = 19;

/// Code layout for an eviction-based channel (§V-A/§V-C): receiver holds
/// `d` aligned blocks of set `x`; the sender's 1-encoding accesses
/// `N + 1 − d` aligned blocks of set `x`; the stealthy 0-encoding accesses
/// the same number of blocks mapping to set `y`.
pub(crate) struct EvictionLayout {
    pub recv: BlockChain,
    pub send_one: BlockChain,
    pub send_zero: BlockChain,
}

pub(crate) fn eviction_layout(params: &ChannelParams, geom: &FrontendGeometry) -> EvictionLayout {
    let mut recv_region = CodeRegion::with_geometry(RECEIVER_REGION, *geom);
    let mut send_region = CodeRegion::with_geometry(SENDER_REGION, *geom);
    let mut alt_region = CodeRegion::with_geometry(SENDER_ALT_REGION, *geom);
    let sender = params.sender_blocks_eviction(geom.dsb_ways);
    EvictionLayout {
        recv: recv_region.same_set_chain(DsbSet::new(SET_X), params.d, Alignment::Aligned),
        send_one: send_region.same_set_chain(DsbSet::new(SET_X), sender, Alignment::Aligned),
        send_zero: alt_region.same_set_chain(DsbSet::new(SET_Y), sender, Alignment::Aligned),
    }
}

/// Code layout for a misalignment-based channel (§V-B/§V-D): receiver holds
/// `d` aligned blocks of set `x`; the 1-encoding accesses `M − d`
/// *misaligned* blocks of set `x`; the stealthy 0-encoding accesses `M − d`
/// aligned blocks of set `x` (same work, no collision).
pub(crate) struct MisalignmentLayout {
    pub recv: BlockChain,
    pub send_one: BlockChain,
    pub send_zero: BlockChain,
}

pub(crate) fn misalignment_layout(
    params: &ChannelParams,
    geom: &FrontendGeometry,
) -> MisalignmentLayout {
    let mut recv_region = CodeRegion::with_geometry(RECEIVER_REGION, *geom);
    let mut send_region = CodeRegion::with_geometry(SENDER_REGION, *geom);
    let mut alt_region = CodeRegion::with_geometry(SENDER_ALT_REGION, *geom);
    let sender = params.sender_blocks_misalignment();
    MisalignmentLayout {
        recv: recv_region.same_set_chain(DsbSet::new(SET_X), params.d, Alignment::Aligned),
        send_one: send_region.same_set_chain(DsbSet::new(SET_X), sender, Alignment::Misaligned),
        send_zero: alt_region.same_set_chain(DsbSet::new(SET_X), sender, Alignment::Aligned),
    }
}

/// Calibrates a threshold decoder by transmitting a known alternating
/// pattern and averaging the 0-bit and 1-bit measurements (§VI-B),
/// reporting failure when the two classes coincide. This is the single
/// home of the decoder settings (ambiguity band, robust averaging):
/// every channel's calibration — panicking or fallible — routes here,
/// so they can never drift apart.
pub(crate) fn try_calibrate_decoder(
    mut measure: impl FnMut(bool) -> f64,
    calibration_bits: usize,
) -> Result<ThresholdDecoder, leaky_stats::threshold::CalibrationError> {
    let mut builder = ThresholdDecoderBuilder::new();
    builder.ambiguity_band(0.2).robust(true);
    for i in 0..calibration_bits {
        let bit = i % 2 == 1;
        builder.push(bit, measure(bit));
    }
    builder.build()
}

/// Panicking wrapper over [`try_calibrate_decoder`] for channels where
/// indistinguishable classes indicate a broken layout, not a defense.
pub(crate) fn calibrate_decoder(
    measure: impl FnMut(bool) -> f64,
    calibration_bits: usize,
) -> ThresholdDecoder {
    try_calibrate_decoder(measure, calibration_bits)
        .expect("calibration produced indistinguishable classes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_isa::FrontendGeometry;

    #[test]
    fn eviction_layout_collides_in_set_x() {
        let params = ChannelParams::eviction_defaults();
        let l = eviction_layout(&params, &FrontendGeometry::skylake());
        assert_eq!(l.recv.len(), 6);
        assert_eq!(l.send_one.len(), 3);
        assert_eq!(l.send_zero.len(), 3);
        for b in l.recv.blocks().iter().chain(l.send_one.blocks()) {
            assert_eq!(b.dsb_set().index(), SET_X);
        }
        for b in l.send_zero.blocks() {
            assert_eq!(b.dsb_set().index(), SET_Y);
        }
        // Receiver + 1-sender exceed the ways; receiver + 0-sender do not
        // share a set at all.
        let g = FrontendGeometry::skylake();
        assert!(l.recv.dsb_lines(&g) + l.send_one.dsb_lines(&g) > g.dsb_ways);
    }

    #[test]
    fn misalignment_layout_fits_ways_but_crosses_windows() {
        let params = ChannelParams::misalignment_defaults();
        let l = misalignment_layout(&params, &FrontendGeometry::skylake());
        let g = FrontendGeometry::skylake();
        assert_eq!(l.recv.len(), 5);
        assert_eq!(l.send_one.misaligned_count(), 3);
        assert_eq!(l.send_zero.misaligned_count(), 0);
        // Head lines in set x: 5 + 3 = 8 ≤ ways — no eviction, only LSD
        // window-tracking collisions.
        let head_lines = l.recv.len() + l.send_one.len();
        assert!(head_lines <= g.dsb_ways);
    }

    #[test]
    fn regions_are_disjoint() {
        let params = ChannelParams::eviction_defaults();
        let l = eviction_layout(&params, &FrontendGeometry::skylake());
        let recv_end = l.recv.blocks().last().unwrap().end().value();
        let send_start = l.send_one.blocks()[0].base().value();
        assert!(recv_end <= send_start);
    }

    #[test]
    fn calibration_learns_polarity() {
        // Synthetic measurements: 1 → ~50, 0 → ~100 (inverted polarity).
        let mut i = 0usize;
        let decoder = calibrate_decoder(
            |bit| {
                i += 1;
                if bit {
                    50.0 + (i % 3) as f64
                } else {
                    100.0 - (i % 3) as f64
                }
            },
            16,
        );
        assert!(decoder.decode(52.0));
        assert!(!decoder.decode(97.0));
    }
}

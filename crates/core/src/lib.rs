//! **Leaky Frontends** — the paper's contribution: covert channels, side
//! channels and fingerprinting attacks built on processor-frontend path
//! switching (HPCA 2022).
//!
//! The root cause exploited throughout is that µop delivery can take three
//! paths — MITE, DSB (micro-op cache) or LSD — with distinct timing and
//! power signatures, and that attackers can force *switches* between the
//! paths (paper §IV). This crate implements every attack the paper
//! evaluates:
//!
//! | Paper section | Module | Attack |
//! |---|---|---|
//! | §V-A | [`channels::mt`] | MT eviction-based timing channel |
//! | §V-B | [`channels::mt`] | MT misalignment-based timing channel |
//! | §V-C | [`channels::non_mt`] | non-MT eviction channel (stealthy/fast) |
//! | §V-D | [`channels::non_mt`] | non-MT misalignment channel |
//! | §V-E | [`channels::slow_switch`] | LCP slow-switch channel |
//! | §VII | [`channels::power`] | power (RAPL) channels |
//! | §VIII | [`sgx`] | SGX enclave exfiltration (MT + non-MT) |
//! | §X | [`fingerprint::microcode`] | microcode-patch fingerprinting |
//! | §XI | [`fingerprint::ipc`] | application fingerprinting side channel |
//!
//! Every channel follows the paper's three-step pattern — **Init** (place
//! µops on a known path), **Encode** (the sender perturbs the path according
//! to the secret bit), **Decode** (the receiver measures timing or power) —
//! and is evaluated by transmission rate and Wagner-Fischer error rate
//! exactly as in §VI.
//!
//! All covert channels present one surface: the [`CovertChannel`] trait,
//! built from the string-keyed [`channels::registry`] via [`ChannelSpec`]
//! (enumerate with [`channel_names`]). Channel codes
//! ([`coding::Repetition`], [`coding::Hamming74`]) wire into the transmit
//! path through [`session::Session`]. See DESIGN.md §9.
//!
//! # Examples
//!
//! Build a registered channel and transmit (the concrete constructors
//! remain available as shims):
//!
//! ```
//! use leaky_frontends::channels::ChannelSpec;
//! use leaky_frontends::params::MessagePattern;
//!
//! let mut ch = ChannelSpec::new("non-mt-fast-eviction")
//!     .model(leaky_cpu::ProcessorModel::xeon_e2288g())
//!     .seed(7)
//!     .build()
//!     .expect("registered, SMT-independent channel");
//! let message = MessagePattern::Alternating.generate(32, 1);
//! let run = ch.transmit(&message);
//! assert!(run.error_rate() < 0.1);
//! assert!(run.rate_kbps() > 100.0);
//! ```
//!
//! Send bytes through a channel code (§VI-B extension):
//!
//! ```
//! use leaky_frontends::channels::ChannelSpec;
//! use leaky_frontends::coding::Repetition;
//! use leaky_frontends::session::Session;
//!
//! let mut ch = ChannelSpec::new("non-mt-fast-eviction")
//!     .model(leaky_cpu::ProcessorModel::xeon_e2288g())
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let run = Session::new(ch.as_mut(), Repetition::new(3)).send_bytes(b"hi");
//! assert_eq!(run.payload(), Some(&b"hi"[..]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod channels;
pub mod coding;
pub mod fingerprint;
pub mod params;
pub mod run;
pub mod session;
pub mod sgx;

pub use channels::{
    channel_info, channel_names, BuildError, ChannelInfo, ChannelSpec, CovertChannel, REGISTRY,
};
pub use params::{ChannelParams, EncodeMode, MessagePattern};
pub use run::{ChannelRun, Evaluation, Provenance};
pub use session::{Session, SessionRun};

//! **Leaky Frontends** — the paper's contribution: covert channels, side
//! channels and fingerprinting attacks built on processor-frontend path
//! switching (HPCA 2022).
//!
//! The root cause exploited throughout is that µop delivery can take three
//! paths — MITE, DSB (micro-op cache) or LSD — with distinct timing and
//! power signatures, and that attackers can force *switches* between the
//! paths (paper §IV). This crate implements every attack the paper
//! evaluates:
//!
//! | Paper section | Module | Attack |
//! |---|---|---|
//! | §V-A | [`channels::mt`] | MT eviction-based timing channel |
//! | §V-B | [`channels::mt`] | MT misalignment-based timing channel |
//! | §V-C | [`channels::non_mt`] | non-MT eviction channel (stealthy/fast) |
//! | §V-D | [`channels::non_mt`] | non-MT misalignment channel |
//! | §V-E | [`channels::slow_switch`] | LCP slow-switch channel |
//! | §VII | [`channels::power`] | power (RAPL) channels |
//! | §VIII | [`sgx`] | SGX enclave exfiltration (MT + non-MT) |
//! | §X | [`fingerprint::microcode`] | microcode-patch fingerprinting |
//! | §XI | [`fingerprint::ipc`] | application fingerprinting side channel |
//!
//! Every channel follows the paper's three-step pattern — **Init** (place
//! µops on a known path), **Encode** (the sender perturbs the path according
//! to the secret bit), **Decode** (the receiver measures timing or power) —
//! and is evaluated by transmission rate and Wagner-Fischer error rate
//! exactly as in §VI.
//!
//! # Examples
//!
//! ```
//! use leaky_cpu::ProcessorModel;
//! use leaky_frontends::channels::non_mt::{NonMtChannel, NonMtKind};
//! use leaky_frontends::params::{ChannelParams, EncodeMode, MessagePattern};
//!
//! let params = ChannelParams::eviction_defaults();
//! let mut ch = NonMtChannel::new(
//!     ProcessorModel::xeon_e2288g(),
//!     NonMtKind::Eviction,
//!     EncodeMode::Fast,
//!     params,
//!     7,
//! );
//! let message = MessagePattern::Alternating.generate(32, 1);
//! let run = ch.transmit(&message);
//! assert!(run.error_rate() < 0.1);
//! assert!(run.rate_kbps() > 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod coding;
pub mod fingerprint;
pub mod params;
pub mod run;
pub mod sgx;

pub use params::{ChannelParams, EncodeMode, MessagePattern};
pub use run::{ChannelRun, Evaluation};

//! Attack parameters (paper §V) and message patterns (§VI-D).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Parameters shared by the covert channels, named as in the paper (§V):
///
/// * `N` — DSB ways (8, fixed by geometry);
/// * `d` — instruction mix blocks accessed by the receiver, `d < N + 1`;
/// * `m_total` — the misalignment channels' `M`: total blocks used by sender
///   plus receiver, `M < N + 1`;
/// * `p` — receiver iterations (init + decode);
/// * `q` — sender iterations (encode);
/// * `r` — LCP instructions for slow-switch channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelParams {
    /// Receiver way count `d`.
    pub d: usize,
    /// Misalignment total `M` (ignored by eviction channels).
    pub m_total: usize,
    /// Receiver iterations `p`.
    pub p: u64,
    /// Sender iterations `q`.
    pub q: u64,
    /// LCP instruction count `r` (slow-switch only).
    pub r: usize,
}

impl ChannelParams {
    /// Non-MT eviction defaults (§VI: d = 6, p = q = 10).
    pub const fn eviction_defaults() -> Self {
        ChannelParams {
            d: 6,
            m_total: 8,
            p: 10,
            q: 10,
            r: 16,
        }
    }

    /// Non-MT misalignment defaults (§VI: d = 5, M = 8, p = q = 10).
    pub const fn misalignment_defaults() -> Self {
        ChannelParams {
            d: 5,
            m_total: 8,
            p: 10,
            q: 10,
            r: 16,
        }
    }

    /// MT defaults (§VI-A: p = 1000 decode iterations, q = 100 encode
    /// iterations per bit).
    pub const fn mt_defaults() -> Self {
        ChannelParams {
            d: 6,
            m_total: 8,
            p: 1000,
            q: 100,
            r: 16,
        }
    }

    /// MT misalignment defaults (d = 5, M = 8).
    pub const fn mt_misalignment_defaults() -> Self {
        ChannelParams {
            d: 5,
            m_total: 8,
            p: 1000,
            q: 100,
            r: 16,
        }
    }

    /// Slow-switch defaults (§V-E: r = 16, p = q = 10).
    pub const fn slow_switch_defaults() -> Self {
        ChannelParams {
            d: 6,
            m_total: 8,
            p: 10,
            q: 10,
            r: 16,
        }
    }

    /// Power-channel defaults (§VII: p = q = 240 000 to span RAPL update
    /// intervals).
    pub const fn power_defaults() -> Self {
        ChannelParams {
            d: 6,
            m_total: 8,
            p: 240_000,
            q: 240_000,
            r: 16,
        }
    }

    /// SGX non-MT defaults (§VIII-2: p = q = 1000–5000; we use 2000).
    pub const fn sgx_non_mt_defaults() -> Self {
        ChannelParams {
            d: 6,
            m_total: 8,
            p: 2000,
            q: 2000,
            r: 16,
        }
    }

    /// SGX MT defaults (§VIII-1: p = 10 000, q = 1000).
    pub const fn sgx_mt_defaults() -> Self {
        ChannelParams {
            d: 6,
            m_total: 8,
            p: 10_000,
            q: 1000,
            r: 16,
        }
    }

    /// Returns a copy with a different `d` (Fig. 8 sweep).
    pub const fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Sender block count for eviction channels: `N + 1 - d` (§V-A).
    pub const fn sender_blocks_eviction(&self, ways: usize) -> usize {
        ways + 1 - self.d
    }

    /// Sender block count for misalignment channels: `M - d` (§V-B).
    pub const fn sender_blocks_misalignment(&self) -> usize {
        self.m_total - self.d
    }

    /// Validates the paper's constraints (`0 < d ≤ N`, `p, q > 0`; for
    /// misalignment channels additionally `d < M ≤ N`).
    ///
    /// # Panics
    ///
    /// Panics if a constraint is violated; channels call this on
    /// construction.
    pub fn validate(&self, ways: usize, uses_m: bool) {
        assert!(self.d >= 1 && self.d <= ways, "d must be in 1..=N");
        if uses_m {
            assert!(
                self.m_total > self.d && self.m_total <= ways,
                "M must satisfy d < M <= N"
            );
        }
        assert!(
            self.p > 0 && self.q > 0,
            "iteration counts must be positive"
        );
        assert!(self.r > 0, "r must be positive");
    }
}

impl fmt::Display for ChannelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d={} M={} p={} q={} r={}",
            self.d, self.m_total, self.p, self.q, self.r
        )
    }
}

/// Whether the sender's 0-encoding is silent (fast) or does matched dummy
/// work on an unrelated DSB set (stealthy) — §V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodeMode {
    /// m = 0 performs equivalent accesses to a different set — harder to
    /// detect by activity monitoring, slightly slower and noisier.
    Stealthy,
    /// m = 0 sends nothing — faster, at the cost of an obvious idle gap.
    Fast,
}

impl fmt::Display for EncodeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeMode::Stealthy => f.write_str("stealthy"),
            EncodeMode::Fast => f.write_str("fast"),
        }
    }
}

/// The four message patterns of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessagePattern {
    /// All zero bits.
    AllZeros,
    /// All one bits.
    AllOnes,
    /// Alternating `0101...`.
    Alternating,
    /// Uniformly random bits (seeded).
    Random,
}

impl MessagePattern {
    /// Generates a message of `len` bits; `seed` only matters for
    /// [`MessagePattern::Random`].
    pub fn generate(self, len: usize, seed: u64) -> Vec<bool> {
        match self {
            MessagePattern::AllZeros => vec![false; len],
            MessagePattern::AllOnes => vec![true; len],
            MessagePattern::Alternating => (0..len).map(|i| i % 2 == 1).collect(),
            MessagePattern::Random => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..len).map(|_| rng.gen_bool(0.5)).collect()
            }
        }
    }

    /// All four patterns in Table II's column order.
    pub fn all() -> [MessagePattern; 4] {
        [
            MessagePattern::AllZeros,
            MessagePattern::AllOnes,
            MessagePattern::Alternating,
            MessagePattern::Random,
        ]
    }
}

/// Converts bytes to a bit vector (MSB first) for transmission over a
/// covert channel.
///
/// # Examples
///
/// ```
/// use leaky_frontends::params::{bits_to_bytes, bytes_to_bits};
///
/// let bits = bytes_to_bits(b"hi");
/// assert_eq!(bits.len(), 16);
/// assert_eq!(bits_to_bytes(&bits), b"hi");
/// ```
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect()
}

/// Converts a received bit vector back to bytes (MSB first); trailing bits
/// that do not fill a byte are dropped.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8))
        .collect()
}

impl fmt::Display for MessagePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessagePattern::AllZeros => "all-0s",
            MessagePattern::AllOnes => "all-1s",
            MessagePattern::Alternating => "alternating",
            MessagePattern::Random => "random",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let e = ChannelParams::eviction_defaults();
        assert_eq!((e.d, e.p, e.q), (6, 10, 10));
        let m = ChannelParams::misalignment_defaults();
        assert_eq!((m.d, m.m_total), (5, 8));
        let mt = ChannelParams::mt_defaults();
        assert_eq!((mt.p, mt.q), (1000, 100));
        assert_eq!(ChannelParams::power_defaults().p, 240_000);
    }

    #[test]
    fn sender_block_arithmetic() {
        // §V-A example: d = 6, N = 8 → sender accesses blocks 7–9 (3 blocks).
        let p = ChannelParams::eviction_defaults();
        assert_eq!(p.sender_blocks_eviction(8), 3);
        // §V-B example: d = 5, M = 8 → sender accesses blocks 6–8 (3).
        let m = ChannelParams::misalignment_defaults();
        assert_eq!(m.sender_blocks_misalignment(), 3);
    }

    #[test]
    fn validation_accepts_paper_configs_and_rejects_nonsense() {
        ChannelParams::eviction_defaults().validate(8, false);
        ChannelParams::misalignment_defaults().validate(8, true);
        // Fig. 8 sweeps every d; eviction channels do not use M.
        for d in 1..=8 {
            ChannelParams::mt_defaults().with_d(d).validate(8, false);
        }
        let bad = ChannelParams {
            d: 0,
            ..ChannelParams::eviction_defaults()
        };
        assert!(std::panic::catch_unwind(|| bad.validate(8, false)).is_err());
        let bad_m = ChannelParams {
            d: 8,
            ..ChannelParams::misalignment_defaults()
        };
        assert!(std::panic::catch_unwind(|| bad_m.validate(8, true)).is_err());
    }

    #[test]
    fn byte_bit_roundtrip() {
        let data = b"Leaky Frontends!";
        assert_eq!(bits_to_bytes(&bytes_to_bits(data)), data);
        // Trailing partial byte is dropped.
        let mut bits = bytes_to_bits(b"A");
        bits.push(true);
        assert_eq!(bits_to_bytes(&bits), b"A");
    }

    #[test]
    fn patterns_generate_expected_bits() {
        assert_eq!(
            MessagePattern::AllZeros.generate(3, 0),
            vec![false, false, false]
        );
        assert_eq!(MessagePattern::AllOnes.generate(2, 0), vec![true, true]);
        assert_eq!(
            MessagePattern::Alternating.generate(4, 0),
            vec![false, true, false, true]
        );
        let r1 = MessagePattern::Random.generate(64, 9);
        let r2 = MessagePattern::Random.generate(64, 9);
        assert_eq!(r1, r2, "seeded random is reproducible");
        assert!(r1.iter().any(|&b| b) && r1.iter().any(|&b| !b));
    }
}

//! Channel transmission results and evaluation metrics (paper §VI).

use crate::params::ChannelParams;
use leaky_stats::error_rate;
use std::fmt;

/// Provenance metadata attached to a [`ChannelRun`] by the channel that
/// produced it: which registered channel transmitted, under which
/// microarchitecture profile, with which §V parameters. Sweeps surface
/// this in their JSON output so a result row is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Registry name of the channel (see [`crate::channels::registry`]).
    pub channel: &'static str,
    /// Registry key of the microarchitecture profile the channel was
    /// built under (`"custom"` after a frontend-config override).
    pub profile: &'static str,
    /// The §V parameters the channel ran with.
    pub params: ChannelParams,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {} ({})", self.channel, self.profile, self.params)
    }
}

/// The outcome of transmitting one message over a covert channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelRun {
    sent: Vec<bool>,
    received: Vec<bool>,
    cycles: f64,
    freq_hz: f64,
    provenance: Option<Provenance>,
}

impl ChannelRun {
    /// Bundles a transmission outcome.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` or `freq_hz` is not positive.
    pub fn new(sent: Vec<bool>, received: Vec<bool>, cycles: f64, freq_hz: f64) -> Self {
        assert!(cycles > 0.0, "a transmission takes time");
        assert!(freq_hz > 0.0, "frequency must be positive");
        ChannelRun {
            sent,
            received,
            cycles,
            freq_hz,
            provenance: None,
        }
    }

    /// Attaches provenance metadata (builder style; channels call this in
    /// their `transmit` so every run is self-describing).
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = Some(provenance);
        self
    }

    /// Provenance metadata, if the producing channel attached any.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.provenance.as_ref()
    }

    /// The bits the sender transmitted.
    pub fn sent(&self) -> &[bool] {
        &self.sent
    }

    /// The bits the receiver decoded.
    pub fn received(&self) -> &[bool] {
        &self.received
    }

    /// Total cycles the transmission occupied (wall time on the measured
    /// thread).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Wall-clock seconds of the transmission.
    pub fn seconds(&self) -> f64 {
        self.cycles / self.freq_hz
    }

    /// The clock frequency the cycle count is measured against (Hz).
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Raw transmission rate in Kbps (paper Tables II-VI).
    pub fn rate_kbps(&self) -> f64 {
        self.sent.len() as f64 / self.seconds() / 1000.0
    }

    /// Wagner-Fischer error rate between sent and received strings (§VI).
    pub fn error_rate(&self) -> f64 {
        error_rate(&self.sent, &self.received)
    }

    /// Effective rate: raw rate discounted by the error rate (Fig. 8's
    /// "effect. trans. rate").
    pub fn effective_rate_kbps(&self) -> f64 {
        self.rate_kbps() * (1.0 - self.error_rate())
    }

    /// Shannon capacity of the channel in Kbps, modelling it as a binary
    /// symmetric channel with crossover probability equal to the measured
    /// error rate (§VI): `rate × (1 − H(p))` with `H` the binary entropy.
    ///
    /// Unlike [`effective_rate_kbps`](Self::effective_rate_kbps) (a linear
    /// discount), this is the information-theoretic ceiling on what an
    /// optimal code could extract: it reaches 0 at `p = 0.5` (pure noise)
    /// and climbs back to the raw rate at `p = 1` (a perfectly inverted
    /// channel is noiseless).
    pub fn capacity_kbps(&self) -> f64 {
        self.rate_kbps() * (1.0 - binary_entropy(self.error_rate().clamp(0.0, 1.0)))
    }

    /// Condenses the run into an [`Evaluation`].
    pub fn evaluation(&self) -> Evaluation {
        Evaluation {
            rate_kbps: self.rate_kbps(),
            error_rate: self.error_rate(),
            bits: self.sent.len(),
        }
    }
}

/// Binary entropy `H(p)` in bits, with the `0·log 0 = 0` convention.
fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

impl fmt::Display for ChannelRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bits, {:.2} Kbps, {:.2}% error",
            self.sent.len(),
            self.rate_kbps(),
            self.error_rate() * 100.0
        )
    }
}

/// Summary metrics for one channel configuration — one cell of the paper's
/// result tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Transmission rate in Kbps.
    pub rate_kbps: f64,
    /// Error rate in `[0, 1]`.
    pub error_rate: f64,
    /// Message length evaluated.
    pub bits: usize,
}

impl Evaluation {
    /// Effective rate (rate × (1 − error)).
    pub fn effective_rate_kbps(&self) -> f64 {
        self.rate_kbps * (1.0 - self.error_rate)
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} Kbps / {:.2}% err",
            self.rate_kbps,
            self.error_rate * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_math() {
        // 1000 bits in 1 ms at 1 GHz = 1 Mbps.
        let run = ChannelRun::new(vec![true; 1000], vec![true; 1000], 1e6, 1e9);
        assert!((run.rate_kbps() - 1000.0).abs() < 1e-9);
        assert_eq!(run.error_rate(), 0.0);
        assert_eq!(run.effective_rate_kbps(), run.rate_kbps());
    }

    #[test]
    fn error_rate_uses_edit_distance() {
        let sent = vec![false, true, false, true];
        let mut recv = sent.clone();
        recv[2] = true;
        let run = ChannelRun::new(sent, recv, 1000.0, 1e9);
        assert!((run.error_rate() - 0.25).abs() < 1e-12);
        assert!(run.effective_rate_kbps() < run.rate_kbps());
    }

    #[test]
    fn evaluation_roundtrip() {
        let run = ChannelRun::new(vec![true; 10], vec![true; 10], 1e4, 2.7e9);
        let ev = run.evaluation();
        assert_eq!(ev.bits, 10);
        assert!((ev.rate_kbps - run.rate_kbps()).abs() < 1e-12);
        let shown = ev.to_string();
        assert!(shown.contains("Kbps"));
    }

    #[test]
    fn capacity_at_zero_error_is_raw_rate() {
        // p = 0: H(0) = 0, so capacity equals the raw transmission rate.
        let run = ChannelRun::new(vec![true; 1000], vec![true; 1000], 1e6, 1e9);
        assert_eq!(run.error_rate(), 0.0);
        assert!((run.capacity_kbps() - run.rate_kbps()).abs() < 1e-12);
    }

    #[test]
    fn capacity_at_half_error_is_zero() {
        // p = 0.5: H(0.5) = 1 bit, the channel carries no information.
        // The edit distance between T^512 and T^256 F^256 is exactly 256
        // substitutions (error_rate is edit-distance based, so patterned
        // flips that compress to shifts would not hit p = 0.5).
        let sent = vec![true; 512];
        let mut recv = vec![true; 256];
        recv.extend(std::iter::repeat_n(false, 256));
        let run = ChannelRun::new(sent, recv, 1e6, 1e9);
        assert!((run.error_rate() - 0.5).abs() < 1e-12);
        assert!(run.capacity_kbps().abs() < 1e-9);
        assert!(run.capacity_kbps() < run.effective_rate_kbps());
    }

    #[test]
    fn capacity_at_full_error_is_raw_rate() {
        // p = 1: a deterministic bit-flipper is as good as a clean wire.
        let sent = vec![true; 256];
        let recv = vec![false; 256];
        let run = ChannelRun::new(sent, recv, 1e6, 1e9);
        assert_eq!(run.error_rate(), 1.0);
        assert!((run.capacity_kbps() - run.rate_kbps()).abs() < 1e-12);
        // The linear discount would call this channel worthless.
        assert_eq!(run.effective_rate_kbps(), 0.0);
    }

    #[test]
    #[should_panic(expected = "takes time")]
    fn zero_cycles_rejected() {
        let _ = ChannelRun::new(vec![true], vec![true], 0.0, 1e9);
    }
}

//! Noisy timing sources: `rdtscp` and a low-precision timer.
//!
//! All the paper's timing attacks run at user level using `rdtscp` (§III).
//! Real measurements carry pipeline jitter and occasional interrupt spikes;
//! the §XI side channel additionally assumes only a *low-frequency* (10 Hz)
//! timer is available, as on hardened platforms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measurement-noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Gaussian jitter per reading (σ, cycles).
    pub sigma_cycles: f64,
    /// Probability that a reading lands on an interrupt/SMI spike.
    pub spike_probability: f64,
    /// Magnitude of a spike (cycles).
    pub spike_cycles: f64,
}

impl NoiseModel {
    /// A noise model with a given jitter and the default spike behaviour.
    pub fn with_sigma(sigma_cycles: f64) -> Self {
        NoiseModel {
            sigma_cycles,
            spike_probability: 0.002,
            spike_cycles: 400.0,
        }
    }

    /// A perfectly clean timer (for property tests: zero noise must give
    /// zero channel error).
    pub const fn noiseless() -> Self {
        NoiseModel {
            sigma_cycles: 0.0,
            spike_probability: 0.0,
            spike_cycles: 0.0,
        }
    }
}

/// A deterministic (seeded) noisy timer over an externally maintained cycle
/// clock.
#[derive(Debug, Clone)]
pub struct Timer {
    noise: NoiseModel,
    rng: StdRng,
}

impl Timer {
    /// Creates a timer with a noise model and seed.
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        Timer {
            noise,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// Produces an `rdtscp`-style reading of `clock_cycles`: the true value
    /// plus jitter and occasional spikes. Readings are not guaranteed
    /// monotonic at σ-scale, matching real back-to-back `rdtscp` behaviour.
    pub fn read(&mut self, clock_cycles: f64) -> f64 {
        let mut value = clock_cycles + self.gaussian() * self.noise.sigma_cycles;
        if self.noise.spike_probability > 0.0 && self.rng.gen_bool(self.noise.spike_probability) {
            value += self.noise.spike_cycles;
        }
        value
    }

    /// Produces a low-precision reading: quantized to `resolution_cycles`
    /// (e.g. one tenth of a second of cycles for the §XI 10 Hz timer).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_cycles` is not positive.
    pub fn read_low_res(&mut self, clock_cycles: f64, resolution_cycles: f64) -> f64 {
        assert!(resolution_cycles > 0.0, "resolution must be positive");
        (self.read(clock_cycles) / resolution_cycles).floor() * resolution_cycles
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_timer_is_exact() {
        let mut t = Timer::new(NoiseModel::noiseless(), 0);
        for v in [0.0, 123.0, 1e9] {
            assert_eq!(t.read(v), v);
        }
    }

    #[test]
    fn noise_is_centered_and_bounded() {
        let mut t = Timer::new(
            NoiseModel {
                sigma_cycles: 10.0,
                spike_probability: 0.0,
                spike_cycles: 0.0,
            },
            7,
        );
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| t.read(1000.0)).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let mut t = Timer::new(
            NoiseModel {
                sigma_cycles: 0.0,
                spike_probability: 0.1,
                spike_cycles: 1000.0,
            },
            3,
        );
        let n = 20_000;
        let spikes = (0..n).filter(|_| t.read(0.0) > 500.0).count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "spike rate {rate}");
    }

    #[test]
    fn low_res_quantizes() {
        let mut t = Timer::new(NoiseModel::noiseless(), 0);
        assert_eq!(t.read_low_res(1234.0, 100.0), 1200.0);
        assert_eq!(t.read_low_res(99.0, 100.0), 0.0);
    }

    #[test]
    fn seeded_timers_are_reproducible() {
        let mut a = Timer::new(NoiseModel::with_sigma(5.0), 99);
        let mut b = Timer::new(NoiseModel::with_sigma(5.0), 99);
        for _ in 0..100 {
            assert_eq!(a.read(50.0), b.read(50.0));
        }
    }
}

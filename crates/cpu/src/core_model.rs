//! The composed core: frontend + backend + power + timers + SMT driver.

use leaky_backend::Backend;
use leaky_frontend::{
    Frontend, FrontendConfig, IterationReport, SmtDsbPolicy, ThreadId, UarchProfile,
};
use leaky_isa::BlockChain;
use leaky_power::{DeliveryClass, PowerModel, Rapl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{MicrocodePatch, ProcessorModel};
use crate::timer::{NoiseModel, Timer};

/// Upper bound on memoised backend-throughput entries per core (a channel
/// juggles a handful of chains; eviction only matters for long sweeps
/// that rebuild layouts on one core).
const BACKEND_CACHE_CAPACITY: usize = 64;

/// The result of running a loop on one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopRun {
    /// Wall cycles the loop occupied on its thread (frontend/backend
    /// bottleneck combined).
    pub cycles: f64,
    /// Iterations executed.
    pub iterations: u64,
    /// Frontend activity during the run.
    pub report: IterationReport,
}

impl LoopRun {
    /// Instructions retired per cycle over this run.
    pub fn ipc(&self, instructions_per_iteration: u64) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            (self.iterations * instructions_per_iteration) as f64 / self.cycles
        }
    }
}

/// Work description for [`Core::run_concurrent`].
#[derive(Debug, Clone)]
pub struct ThreadWork<'a> {
    /// The loop body.
    pub chain: &'a BlockChain,
    /// Iterations to run.
    pub iterations: u64,
}

/// A simulated physical core with two hardware threads.
///
/// Owns per-thread cycle clocks, the shared frontend, the RAPL energy
/// counter and a seeded noise source, so whole experiments are
/// reproducible from a single seed.
#[derive(Debug, Clone)]
pub struct Core {
    model: ProcessorModel,
    patch: MicrocodePatch,
    frontend: Frontend,
    backend: Backend,
    power: PowerModel,
    rapl: Rapl,
    timer: Timer,
    clock: [f64; 2],
    /// Sibling frontend demand (0..~1) used by the fingerprinting victim
    /// model to modulate SMT sharing.
    sibling_demand: [f64; 2],
    /// Whether `sibling_demand` is driven by a trace-based victim model
    /// (fingerprinting) rather than simulated sibling code.
    trace_sibling: [bool; 2],
    /// Each thread's recent µops-per-cycle, used to share backend width
    /// proportionally under SMT.
    recent_upc: [f64; 2],
    /// Memoised backend throughput per chain, keyed by the precomputed
    /// ([`BlockChain::key`], frontend profile key) pair and kept
    /// MRU-first — `finish_run` is the hottest path, so the common case
    /// is one equality probe on the front slot. The profile-key half
    /// makes [`Core::reconfigure_frontend`] safe: entries memoised under
    /// a previous configuration stop matching instead of leaking into
    /// the new one.
    backend_cache: Vec<((u64, u64), f64)>,
    rng: StdRng,
}

impl Core {
    /// Creates a core for a processor model under the default (LSD-enabled)
    /// microcode, with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn new(model: ProcessorModel, seed: u64) -> Self {
        Self::with_microcode(model, MicrocodePatch::Patch1, seed)
    }

    /// Creates a core under an explicit microcode patch (§X: switching
    /// patches requires a restart, hence a fresh core).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn with_microcode(model: ProcessorModel, patch: MicrocodePatch, seed: u64) -> Self {
        let config = FrontendConfig {
            lsd_enabled: model.lsd_enabled_under(patch),
            dsb_policy: SmtDsbPolicy::Competitive,
            ..FrontendConfig::default()
        };
        Self::with_frontend_config(model, patch, config, seed)
    }

    /// Creates a core running a registered (or perturbed) microarchitecture
    /// profile: geometry, cost model and LSD availability come from the
    /// profile, further gated by the processor model / microcode patch
    /// (a patch can disable loop streaming, never enable it on a profile
    /// that lacks it). The `skylake` profile reproduces
    /// [`Core::with_microcode`] bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn with_profile(
        model: ProcessorModel,
        patch: MicrocodePatch,
        profile: &UarchProfile,
        seed: u64,
    ) -> Self {
        let config = FrontendConfig {
            lsd_enabled: profile.lsd_enabled && model.lsd_enabled_under(patch),
            ..FrontendConfig::from_profile(profile)
        };
        Self::with_frontend_config(model, patch, config, seed)
    }

    /// Creates a core with a fully explicit frontend configuration — the
    /// hook used by defense evaluations (§XII: constant-time frontends) and
    /// policy ablations.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn with_frontend_config(
        model: ProcessorModel,
        patch: MicrocodePatch,
        config: FrontendConfig,
        seed: u64,
    ) -> Self {
        Core {
            frontend: Frontend::new(config),
            backend: Backend::skylake(),
            power: PowerModel::gold6226(),
            rapl: Rapl::new(seed ^ 0x9e37_79b9),
            timer: Timer::new(NoiseModel::with_sigma(model.timing_noise_sigma), seed),
            clock: [0.0, 0.0],
            sibling_demand: [0.0, 0.0],
            trace_sibling: [false, false],
            recent_upc: [0.0, 0.0],
            backend_cache: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x5851_f42d),
            model,
            patch,
        }
    }

    /// The processor model.
    pub fn model(&self) -> &ProcessorModel {
        &self.model
    }

    /// The active microcode patch.
    pub fn microcode(&self) -> MicrocodePatch {
        self.patch
    }

    /// The frontend (for assertions and advanced drivers).
    pub fn frontend(&self) -> &Frontend {
        &self.frontend
    }

    /// Mutable frontend access (attack drivers use this for partition
    /// control and state flushes).
    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Installs a trace hook on the frontend (see
    /// [`Frontend::set_trace`]); behavior-free observability.
    pub fn set_trace(&mut self, hook: leaky_frontend::TraceHook) {
        self.frontend.set_trace(hook);
    }

    /// Mutable access to the frontend's trace hook, for emitting
    /// channel-level events from drivers above the core.
    pub fn trace_mut(&mut self) -> &mut leaky_frontend::TraceHook {
        self.frontend.trace_mut()
    }

    /// Detaches the frontend's trace hook, leaving tracing off.
    pub fn take_trace(&mut self) -> leaky_frontend::TraceHook {
        self.frontend.take_trace()
    }

    /// Swaps the frontend onto a new configuration in place (microcode
    /// update / machine change semantics — see
    /// [`Frontend::reconfigure`]), keeping clocks, RAPL state and RNG
    /// streams. The backend-throughput memo needs no flush: its entries
    /// are keyed by (chain, profile key), so values memoised under the
    /// old configuration simply stop matching.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn reconfigure_frontend(&mut self, config: FrontendConfig) {
        self.frontend.reconfigure(config);
    }

    /// The backend model.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Current cycle clock of a thread.
    pub fn clock(&self, tid: ThreadId) -> f64 {
        self.clock[tid.index()]
    }

    /// Wall-clock seconds elapsed (max over thread clocks).
    pub fn seconds(&self) -> f64 {
        self.model
            .cycles_to_seconds(self.clock[0].max(self.clock[1]))
    }

    /// Marks a thread active/idle (delegates to the frontend's partition
    /// logic).
    pub fn set_active(&mut self, tid: ThreadId, active: bool) {
        self.frontend.set_active(tid, active);
    }

    /// Sets the sibling-demand factor used when `tid`'s sibling runs a
    /// modeled (trace-based) victim rather than simulated code.
    pub fn set_sibling_demand(&mut self, tid: ThreadId, demand: f64) {
        assert!((0.0..=4.0).contains(&demand), "demand out of range");
        self.sibling_demand[tid.index()] = demand;
        self.trace_sibling[tid.index()] = true;
        self.frontend.set_external_mite_pressure(tid, demand);
    }

    /// A noisy `rdtscp` reading for a thread; costs timer overhead cycles.
    pub fn rdtscp(&mut self, tid: ThreadId) -> f64 {
        let overhead = self.frontend.config().costs.timer_overhead;
        self.clock[tid.index()] += overhead;
        self.timer.read(self.clock[tid.index()])
    }

    /// A low-precision (10 Hz) timer reading for the §XI side channel.
    ///
    /// # Panics
    ///
    /// Panics if the configured timer resolution is not positive
    /// (`Timer::read_low_res`).
    pub fn low_res_time(&mut self, tid: ThreadId) -> f64 {
        let resolution = self.model.freq_hz() / 10.0;
        self.timer.read_low_res(self.clock[tid.index()], resolution)
    }

    /// Advances a thread's clock without doing frontend work (spin/sleep).
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn idle(&mut self, tid: ThreadId, cycles: f64) {
        assert!(cycles >= 0.0, "cannot idle negative cycles");
        self.clock[tid.index()] += cycles;
        let dt = self.model.cycles_to_seconds(cycles);
        let joules = self.power.watts(DeliveryClass::Idle) * dt;
        let now = self.seconds();
        self.rapl.deposit(joules, now);
    }

    /// Runs `iterations` of a loop on one thread, advancing its clock and
    /// depositing energy. Total time is the frontend/backend bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn run_loop(&mut self, tid: ThreadId, chain: &BlockChain, iterations: u64) -> LoopRun {
        let report = self.frontend.run_iterations(tid, chain, iterations);
        self.finish_run(tid, chain, iterations, report)
    }

    /// Runs a single loop iteration (fine-grained driver for channel
    /// protocols).
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn run_once(&mut self, tid: ThreadId, chain: &BlockChain) -> LoopRun {
        let report = self.frontend.run_iteration(tid, chain);
        self.finish_run(tid, chain, 1, report)
    }

    /// Runs both threads concurrently, interleaving loop iterations by
    /// simulated wall time with scheduling jitter. Threads are activated on
    /// entry; each is deactivated when its work completes (which triggers
    /// the DSB partition transitions of §IV-B).
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn run_concurrent(
        &mut self,
        work0: ThreadWork<'_>,
        work1: ThreadWork<'_>,
    ) -> (LoopRun, LoopRun) {
        // Sync both clocks to a common start.
        let start = self.clock[0].max(self.clock[1]);
        self.clock = [start, start];
        self.set_active(ThreadId::T0, true);
        self.set_active(ThreadId::T1, true);

        let mut remaining = [work0.iterations, work1.iterations];
        let mut runs = [
            LoopRun {
                cycles: 0.0,
                iterations: 0,
                report: IterationReport::default(),
            },
            LoopRun {
                cycles: 0.0,
                iterations: 0,
                report: IterationReport::default(),
            },
        ];
        let chains = [work0.chain, work1.chain];

        while remaining[0] > 0 || remaining[1] > 0 {
            // Pick the thread that is behind in wall time (with jitter), among
            // those that still have work.
            let jitter: f64 = self.rng.gen_range(-2.0..2.0);
            let pick = if remaining[0] == 0 {
                1
            } else if remaining[1] == 0 || self.clock[0] + jitter <= self.clock[1] {
                0
            } else {
                1
            };
            let tid = if pick == 0 {
                ThreadId::T0
            } else {
                ThreadId::T1
            };
            let run = self.run_once(tid, chains[pick]);
            runs[pick].cycles += run.cycles;
            runs[pick].iterations += 1;
            runs[pick].report += run.report;
            remaining[pick] -= 1;
            if remaining[pick] == 0 {
                self.set_active(tid, false);
            }
        }
        let [r0, r1] = runs;
        (r0, r1)
    }

    /// Runs a loop repeatedly until roughly `cycle_budget` cycles elapse on
    /// the thread; returns the run. Used by the §XI IPC sampler.
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn run_for_cycles(
        &mut self,
        tid: ThreadId,
        chain: &BlockChain,
        cycle_budget: f64,
    ) -> LoopRun {
        let mut total = LoopRun {
            cycles: 0.0,
            iterations: 0,
            report: IterationReport::default(),
        };
        // Batch iterations, re-estimating the per-iteration cost as the loop
        // warms up (cold iterations are much slower than steady state).
        while total.cycles < cycle_budget {
            let probe = self.run_once(tid, chain);
            total.cycles += probe.cycles;
            total.iterations += 1;
            total.report += probe.report;
            let per_iter = probe.cycles.max(1e-9);
            let more = ((cycle_budget - total.cycles) / per_iter) as u64;
            if more > 0 {
                let rest = self.run_loop(tid, chain, more);
                total.cycles += rest.cycles;
                total.iterations += rest.iterations;
                total.report += rest.report;
            }
        }
        total
    }

    /// Fast-forwards a thread through `times` repetitions of an
    /// already-measured steady-state round: advances the clock and deposits
    /// energy exactly as if the work had been simulated, without re-running
    /// the frontend. Used by the power channels, whose p = q = 240 000
    /// iterations per bit (§VII) would otherwise dominate simulation time.
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn replay(&mut self, tid: ThreadId, round: &LoopRun, times: u64) {
        if times == 0 {
            return;
        }
        let cycles = round.cycles * times as f64;
        self.clock[tid.index()] += cycles;
        let dt = self.model.cycles_to_seconds(cycles);
        let watts = mean_watts(&self.power, &self.frontend.config().costs, &round.report);
        let now = self.seconds();
        self.rapl.deposit(watts * dt, now);
    }

    /// Reads the package RAPL counter (µJ), as the power attacks do.
    pub fn read_rapl(&mut self) -> u64 {
        let now = self.seconds();
        self.rapl.read(now)
    }

    /// A noisy instantaneous package-power sample for a run, classified by
    /// its dominant delivery path — the observable of Fig. 9 / Fig. 10.
    pub fn sample_power_watts(&mut self, report: &IterationReport) -> f64 {
        let class = dominant_class(report);
        self.power.sample_watts(class, &mut self.rng)
    }

    /// Average power (watts) implied by a report's path mix, without noise.
    pub fn mean_power_watts(&self, report: &IterationReport) -> f64 {
        mean_watts(&self.power, &self.frontend.config().costs, report)
    }

    fn finish_run(
        &mut self,
        tid: ThreadId,
        chain: &BlockChain,
        iterations: u64,
        report: IterationReport,
    ) -> LoopRun {
        let key = (chain.key(), self.frontend.profile_key());
        let per_iter = match self.backend_cache.first() {
            Some(&(k, v)) if k == key => v,
            _ => match self.backend_cache.iter().position(|&(k, _)| k == key) {
                Some(pos) => {
                    // Promote to MRU so the steady-state probe stays O(1).
                    self.backend_cache[..=pos].rotate_right(1);
                    self.backend_cache[0].1
                }
                None => {
                    let instrs: Vec<_> = chain
                        .blocks()
                        .iter()
                        .flat_map(|b| b.instructions().iter().copied())
                        .collect();
                    let v = self.backend.throughput_cycles(&instrs);
                    self.backend_cache.insert(0, (key, v));
                    self.backend_cache.truncate(BACKEND_CACHE_CAPACITY);
                    v
                }
            },
        };
        let mut backend_cycles = per_iter * iterations as f64;
        let t = tid.index();
        if self.frontend.both_active() {
            // Rename/retire bandwidth is shared between threads in
            // proportion to demand. A trace-driven victim (fingerprinting
            // model) contends for its full share plus its demand level; a
            // simulated sibling contends only for the µop bandwidth it
            // actually used recently — the §IV-D mix blocks are designed to
            // leave backend headroom, so light siblings barely slow each
            // other down.
            let factor = if self.trace_sibling[t] {
                2.0 + self.sibling_demand[t]
            } else {
                let other = tid.other().index();
                1.0 + (self.recent_upc[other] / self.backend.config().rename_width).min(1.0)
            };
            backend_cycles *= factor;
        }
        let cycles = report.cycles.max(backend_cycles);
        if cycles > 0.0 {
            self.recent_upc[t] = report.total_uops() as f64 / cycles;
        }
        self.clock[t] += cycles;

        // Energy: apportion cycles to delivery classes via the cost model.
        let dt = self.model.cycles_to_seconds(cycles);
        let watts = mean_watts(&self.power, &self.frontend.config().costs, &report);
        let now = self.seconds();
        self.rapl.deposit(watts * dt, now);

        LoopRun {
            cycles,
            iterations,
            report,
        }
    }
}

/// Estimated mean package power for a report's delivery mix.
fn mean_watts(
    power: &PowerModel,
    costs: &leaky_frontend::CostModel,
    report: &IterationReport,
) -> f64 {
    let lsd_c = report.lsd_uops as f64 * costs.lsd_per_uop;
    let dsb_c = report.dsb_uops as f64 * costs.dsb_per_uop;
    let mite_c = report.mite_uops as f64 * (costs.mite_per_uop + costs.mite_line_base / 6.0)
        + report.lcp_stall_cycles
        + report.switch_penalty_cycles
        + report.crossing_penalty_cycles;
    let total = lsd_c + dsb_c + mite_c;
    if total <= 0.0 {
        return power.watts(DeliveryClass::Idle);
    }
    let idle = power.watts(DeliveryClass::Idle);
    idle + (lsd_c * (power.watts(DeliveryClass::Lsd) - idle)
        + dsb_c * (power.watts(DeliveryClass::Dsb) - idle)
        + mite_c * (power.watts(DeliveryClass::Mite) - idle))
        / total
}

/// Classifies a report by dominant delivery class for power sampling.
fn dominant_class(report: &IterationReport) -> DeliveryClass {
    if report.total_uops() == 0 {
        DeliveryClass::Idle
    } else if report.mite_uops > 0 && report.mite_uops * 4 >= report.total_uops() {
        DeliveryClass::Mite
    } else if report.dsb_uops >= report.lsd_uops {
        DeliveryClass::Dsb
    } else {
        DeliveryClass::Lsd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_isa::{same_set_chain, Alignment, DsbSet};

    const RECV: u64 = 0x0041_8000;
    const SEND: u64 = 0x0082_0000;

    fn chain(base: u64, set: u8, n: usize) -> BlockChain {
        same_set_chain(base, DsbSet::new(set), n, Alignment::Aligned)
    }

    #[test]
    fn clock_advances_with_work() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        assert_eq!(core.clock(ThreadId::T0), 0.0);
        let run = core.run_loop(ThreadId::T0, &chain(RECV, 0, 8), 100);
        assert!(run.cycles > 0.0);
        assert!((core.clock(ThreadId::T0) - run.cycles).abs() < 1e-9);
        assert_eq!(core.clock(ThreadId::T1), 0.0);
    }

    #[test]
    fn lsd_warm_loop_is_faster_per_iteration() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let c = chain(RECV, 0, 8);
        let cold = core.run_once(ThreadId::T0, &c);
        // LSD lock engages after the configured warm-up streak.
        for _ in 0..3 {
            core.run_once(ThreadId::T0, &c);
        }
        let warm = core.run_once(ThreadId::T0, &c);
        assert!(warm.cycles < cold.cycles);
        assert!(warm.report.lsd_uops > 0);
    }

    #[test]
    fn lsd_disabled_machine_never_streams_lsd() {
        let mut core = Core::new(ProcessorModel::xeon_e2174g(), 1);
        let c = chain(RECV, 0, 8);
        for _ in 0..5 {
            let run = core.run_once(ThreadId::T0, &c);
            assert_eq!(run.report.lsd_uops, 0);
        }
    }

    #[test]
    fn microcode_patch2_disables_lsd_on_6226() {
        let mut core = Core::with_microcode(ProcessorModel::gold_6226(), MicrocodePatch::Patch2, 1);
        let c = chain(RECV, 0, 8);
        for _ in 0..5 {
            assert_eq!(core.run_once(ThreadId::T0, &c).report.lsd_uops, 0);
        }
    }

    #[test]
    fn rdtscp_is_noisy_but_ordered_over_work() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let t0 = core.rdtscp(ThreadId::T0);
        core.run_loop(ThreadId::T0, &chain(RECV, 0, 8), 1000);
        let t1 = core.rdtscp(ThreadId::T0);
        assert!(t1 - t0 > 1000.0);
    }

    #[test]
    fn concurrent_sender_evicts_receiver() {
        // The MT eviction mechanism end-to-end at the core level.
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let recv = chain(RECV, 0, 6);
        let send = chain(SEND, 0, 3);
        // Warm receiver solo.
        core.run_loop(ThreadId::T0, &recv, 3);
        let warm = core.run_once(ThreadId::T0, &recv);
        // Now run sender concurrently: receiver must slow down.
        let (r_recv, r_send) = core.run_concurrent(
            ThreadWork {
                chain: &recv,
                iterations: 50,
            },
            ThreadWork {
                chain: &send,
                iterations: 50,
            },
        );
        assert!(r_send.iterations == 50);
        let per_iter = r_recv.cycles / 50.0;
        assert!(
            per_iter > warm.cycles * 1.5,
            "contended receiver iteration {per_iter:.1} vs warm {:.1}",
            warm.cycles
        );
        assert!(r_recv.report.mite_uops > 0);
    }

    #[test]
    fn concurrent_disjoint_sets_do_not_interfere_after_wake() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let recv = chain(RECV, 0, 6);
        let send_y = chain(SEND, 9, 3);
        core.run_loop(ThreadId::T0, &recv, 3);
        let (r_recv, _) = core.run_concurrent(
            ThreadWork {
                chain: &recv,
                iterations: 50,
            },
            ThreadWork {
                chain: &send_y,
                iterations: 50,
            },
        );
        // The wake transition itself displaces some receiver lines, but
        // steady-state interference must vanish: late iterations are clean.
        let tail_miss_rate = r_recv.report.mite_uops as f64 / r_recv.report.total_uops() as f64;
        assert!(
            tail_miss_rate < 0.2,
            "steady state should be conflict-free, mite fraction {tail_miss_rate}"
        );
    }

    #[test]
    fn rapl_accumulates_energy() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        core.run_loop(ThreadId::T0, &chain(RECV, 0, 9), 50_000);
        let e = core.read_rapl();
        assert!(e > 0, "energy must accumulate: {e}");
    }

    #[test]
    fn mite_heavy_run_draws_more_power_than_lsd_run() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let lsd_chain = chain(RECV, 0, 8);
        core.run_loop(ThreadId::T0, &lsd_chain, 3);
        let lsd_run = core.run_once(ThreadId::T0, &lsd_chain);
        let mite_chain = chain(SEND, 1, 9);
        core.run_loop(ThreadId::T0, &mite_chain, 3);
        let mite_run = core.run_once(ThreadId::T0, &mite_chain);
        let p_lsd = core.mean_power_watts(&lsd_run.report);
        let p_mite = core.mean_power_watts(&mite_run.report);
        assert!(
            p_mite > p_lsd + 5.0,
            "MITE {p_mite:.1} W vs LSD {p_lsd:.1} W"
        );
    }

    #[test]
    fn run_for_cycles_meets_budget() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let c = chain(RECV, 0, 4);
        let run = core.run_for_cycles(ThreadId::T0, &c, 10_000.0);
        assert!(run.cycles >= 9_000.0 && run.cycles <= 12_000.0);
        assert!(run.iterations > 100);
    }

    #[test]
    fn nop_loop_ipc_near_rename_width() {
        // §XI baseline: attacker nop loop IPC ≈ 3.58 on real HW; our model
        // gives the rename-width bound ≈ 4 solo.
        use leaky_isa::{Addr, Block};
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let nop_chain = BlockChain::new(vec![Block::nops(Addr::new(0x10_0000), 100)]);
        core.run_loop(ThreadId::T0, &nop_chain, 3);
        let run = core.run_loop(ThreadId::T0, &nop_chain, 1000);
        let ipc = run.ipc(101);
        assert!(
            (3.0..=4.2).contains(&ipc),
            "solo nop IPC should be near 4, got {ipc:.2}"
        );
    }

    #[test]
    fn smt_halves_nop_ipc() {
        use leaky_isa::{Addr, Block};
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let nop_chain = BlockChain::new(vec![Block::nops(Addr::new(0x10_0000), 100)]);
        core.run_loop(ThreadId::T0, &nop_chain, 3);
        core.set_active(ThreadId::T0, true);
        core.set_active(ThreadId::T1, true);
        core.set_sibling_demand(ThreadId::T0, 0.0); // trace-driven victim
        core.run_loop(ThreadId::T0, &nop_chain, 3);
        let run = core.run_loop(ThreadId::T0, &nop_chain, 1000);
        let ipc = run.ipc(101);
        assert!(
            (1.6..=2.4).contains(&ipc),
            "SMT nop IPC should be near 2, got {ipc:.2}"
        );
    }

    #[test]
    fn sibling_demand_modulates_smt_ipc() {
        use leaky_isa::{Addr, Block};
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let nop_chain = BlockChain::new(vec![Block::nops(Addr::new(0x10_0000), 100)]);
        core.set_active(ThreadId::T0, true);
        core.set_active(ThreadId::T1, true);
        core.run_loop(ThreadId::T0, &nop_chain, 3);
        core.set_sibling_demand(ThreadId::T0, 0.0);
        let low = core.run_loop(ThreadId::T0, &nop_chain, 500).ipc(101);
        core.set_sibling_demand(ThreadId::T0, 0.4);
        let high = core.run_loop(ThreadId::T0, &nop_chain, 500).ipc(101);
        assert!(high < low, "more sibling demand must lower IPC");
    }

    #[test]
    fn with_profile_skylake_matches_historical_construction() {
        // The default profile must reproduce `Core::new` bit-for-bit.
        let run = |mut core: Core| {
            let c = chain(RECV, 0, 8);
            let r = core.run_loop(ThreadId::T0, &c, 50);
            (r.cycles, core.rdtscp(ThreadId::T0))
        };
        let legacy = run(Core::new(ProcessorModel::gold_6226(), 7));
        let profiled = run(Core::with_profile(
            ProcessorModel::gold_6226(),
            MicrocodePatch::Patch1,
            &UarchProfile::skylake(),
            7,
        ));
        assert_eq!(legacy, profiled);
    }

    #[test]
    fn profile_lsd_gating_composes_with_the_machine() {
        // icelake fuses the LSD off regardless of machine/microcode...
        let mut icl = Core::with_profile(
            ProcessorModel::gold_6226(),
            MicrocodePatch::Patch1,
            &UarchProfile::icelake(),
            1,
        );
        let c = chain(RECV, 0, 8);
        for _ in 0..5 {
            assert_eq!(icl.run_once(ThreadId::T0, &c).report.lsd_uops, 0);
        }
        // ...and a machine without the LSD cannot re-enable it under the
        // skylake profile either.
        let mut sky = Core::with_profile(
            ProcessorModel::xeon_e2174g(),
            MicrocodePatch::Patch1,
            &UarchProfile::skylake(),
            1,
        );
        for _ in 0..5 {
            assert_eq!(sky.run_once(ThreadId::T0, &c).report.lsd_uops, 0);
        }
    }

    #[test]
    fn reconfigure_rekeys_the_backend_memo() {
        // Backend throughput memoised under one profile must not leak into
        // another: after a reconfigure, a fresh equivalent core and the
        // reconfigured core must agree exactly on the same chain.
        let c = chain(RECV, 0, 8);
        let icl_config = FrontendConfig::from_profile(&UarchProfile::icelake());
        let mut reconfigured = Core::new(ProcessorModel::gold_6226(), 9);
        reconfigured.run_loop(ThreadId::T0, &c, 10); // populate the memo
        reconfigured.reconfigure_frontend(icl_config);
        let after = reconfigured.run_once(ThreadId::T0, &c);

        let mut fresh = Core::with_frontend_config(
            ProcessorModel::gold_6226(),
            MicrocodePatch::Patch1,
            icl_config,
            9,
        );
        // Match the clock state the reconfigured core accumulated, then
        // compare the frontend work (cycles depend only on frontend state
        // and the memoised backend throughput).
        let fresh_cold = fresh.run_once(ThreadId::T0, &c);
        assert_eq!(after.report, fresh_cold.report);
        assert!((after.cycles - fresh_cold.cycles).abs() < 1e-12);
    }

    #[test]
    fn seeded_cores_reproduce_exactly() {
        let run = |seed| {
            let mut core = Core::new(ProcessorModel::gold_6226(), seed);
            let recv = chain(RECV, 0, 6);
            let send = chain(SEND, 0, 3);
            let (a, b) = core.run_concurrent(
                ThreadWork {
                    chain: &recv,
                    iterations: 20,
                },
                ThreadWork {
                    chain: &send,
                    iterations: 20,
                },
            );
            (a.cycles, b.cycles, core.rdtscp(ThreadId::T0))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

//! The paper's evaluated processors (Table I) and microcode patches (§X).

use std::fmt;

/// A microcode patch level for the Gold 6226 test machine (§X). The paper
/// found that the newer patch silently disables the LSD — the observable its
/// fingerprinting attack detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicrocodePatch {
    /// `3.20180312.0ubuntu18.04.1`: LSD enabled.
    Patch1,
    /// `3.20210608.0ubuntu0.18.04.1`: LSD disabled (mitigates CVE-2021-24489
    /// among others).
    Patch2,
}

impl MicrocodePatch {
    /// The Ubuntu package version string of this patch.
    pub const fn version(self) -> &'static str {
        match self {
            MicrocodePatch::Patch1 => "3.20180312.0ubuntu18.04.1",
            MicrocodePatch::Patch2 => "3.20210608.0ubuntu0.18.04.1",
        }
    }

    /// Whether this patch leaves the LSD enabled.
    pub const fn lsd_enabled(self) -> bool {
        matches!(self, MicrocodePatch::Patch1)
    }
}

impl fmt::Display for MicrocodePatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.version())
    }
}

/// One of the paper's evaluated CPUs (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorModel {
    /// Marketing name, e.g. `"Gold 6226"`.
    pub name: &'static str,
    /// Microarchitecture family.
    pub microarchitecture: &'static str,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads.
    pub threads: u32,
    /// Whether the LSD is available (the E-2174G and E-2286G ship with it
    /// disabled, Table I note b).
    pub lsd_available: bool,
    /// Whether hyper-threading is enabled (the Azure E-2288G has it
    /// disabled, Table I note a).
    pub smt_enabled: bool,
    /// SGX support.
    pub sgx: bool,
    /// Timing-measurement noise (σ, cycles per `rdtscp` read), fitted per
    /// machine to the paper's channel error rates.
    pub timing_noise_sigma: f64,
}

impl ProcessorModel {
    /// Intel Xeon Gold 6226 (Cascade Lake, 2.7 GHz, LSD on, SMT on, no SGX).
    pub const fn gold_6226() -> Self {
        ProcessorModel {
            name: "Gold 6226",
            microarchitecture: "Cascade Lake",
            freq_ghz: 2.7,
            cores: 12,
            threads: 24,
            lsd_available: true,
            smt_enabled: true,
            sgx: false,
            timing_noise_sigma: 14.0,
        }
    }

    /// Intel Xeon E-2174G (Coffee Lake, 3.8 GHz, LSD disabled, SMT on, SGX).
    pub const fn xeon_e2174g() -> Self {
        ProcessorModel {
            name: "Xeon E-2174G",
            microarchitecture: "Coffee Lake",
            freq_ghz: 3.8,
            cores: 4,
            threads: 8,
            lsd_available: false,
            smt_enabled: true,
            sgx: true,
            timing_noise_sigma: 10.0,
        }
    }

    /// Intel Xeon E-2286G (Coffee Lake, 4.0 GHz, LSD disabled, SMT on, SGX).
    pub const fn xeon_e2286g() -> Self {
        ProcessorModel {
            name: "Xeon E-2286G",
            microarchitecture: "Coffee Lake",
            freq_ghz: 4.0,
            cores: 6,
            threads: 12,
            lsd_available: false,
            smt_enabled: true,
            sgx: true,
            timing_noise_sigma: 10.0,
        }
    }

    /// Intel Xeon E-2288G as provisioned on Microsoft Azure (Coffee Lake,
    /// 3.7 GHz, LSD on, hyper-threading disabled, SGX).
    pub const fn xeon_e2288g() -> Self {
        ProcessorModel {
            name: "Xeon E-2288G",
            microarchitecture: "Coffee Lake",
            freq_ghz: 3.7,
            cores: 8,
            threads: 8,
            lsd_available: true,
            smt_enabled: false,
            sgx: true,
            timing_noise_sigma: 4.0,
        }
    }

    /// All four Table I machines in the paper's column order.
    pub fn all() -> [ProcessorModel; 4] {
        [
            Self::gold_6226(),
            Self::xeon_e2174g(),
            Self::xeon_e2286g(),
            Self::xeon_e2288g(),
        ]
    }

    /// Clock frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_ghz * 1e9
    }

    /// Converts cycles to seconds on this machine.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.freq_hz()
    }

    /// Whether the LSD is active under a given microcode patch.
    pub fn lsd_enabled_under(&self, patch: MicrocodePatch) -> bool {
        self.lsd_available && patch.lsd_enabled()
    }
}

impl fmt::Display for ProcessorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {:.1} GHz, LSD {}, SMT {}, SGX {})",
            self.name,
            self.microarchitecture,
            self.freq_ghz,
            if self.lsd_available { "on" } else { "off" },
            if self.smt_enabled { "on" } else { "off" },
            if self.sgx { "yes" } else { "no" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_facts() {
        let all = ProcessorModel::all();
        assert_eq!(all[0].freq_ghz, 2.7);
        assert_eq!(all[1].freq_ghz, 3.8);
        assert_eq!(all[2].freq_ghz, 4.0);
        assert_eq!(all[3].freq_ghz, 3.7);
        // LSD: enabled on 6226 and 2288G, disabled on the middle two.
        assert!(all[0].lsd_available && all[3].lsd_available);
        assert!(!all[1].lsd_available && !all[2].lsd_available);
        // SMT disabled only on the Azure 2288G.
        assert!(all[0].smt_enabled && all[1].smt_enabled && all[2].smt_enabled);
        assert!(!all[3].smt_enabled);
        // SGX on all but the 6226.
        assert!(!all[0].sgx && all[1].sgx && all[2].sgx && all[3].sgx);
    }

    #[test]
    fn microcode_controls_lsd_only_when_available() {
        let g = ProcessorModel::gold_6226();
        assert!(g.lsd_enabled_under(MicrocodePatch::Patch1));
        assert!(!g.lsd_enabled_under(MicrocodePatch::Patch2));
        let e = ProcessorModel::xeon_e2174g();
        assert!(!e.lsd_enabled_under(MicrocodePatch::Patch1));
    }

    #[test]
    fn cycle_time_conversion() {
        let m = ProcessorModel::gold_6226();
        assert!((m.cycles_to_seconds(2.7e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn patch_versions_are_distinct() {
        assert_ne!(
            MicrocodePatch::Patch1.version(),
            MicrocodePatch::Patch2.version()
        );
    }
}

//! Composed SMT CPU-core model with the paper's Table I processor presets.
//!
//! [`Core`] wires together the frontend simulator (`leaky-frontend`), the
//! backend throughput model (`leaky-backend`), the RAPL energy counter
//! (`leaky-power`) and noisy timers into the object the attacks run against.
//! A core hosts two hardware threads; the covert channels place sender and
//! receiver on them (MT attacks) or run both roles on one thread (non-MT
//! attacks).
//!
//! The four evaluated machines (Table I) are available as
//! [`ProcessorModel`] presets, including their frequency, LSD availability,
//! SMT and SGX support, and a per-machine timing-noise level fitted to the
//! paper's error rates.
//!
//! # Examples
//!
//! ```
//! use leaky_cpu::{Core, ProcessorModel};
//! use leaky_frontend::ThreadId;
//! use leaky_isa::{same_set_chain, Alignment, DsbSet};
//!
//! let mut core = Core::new(ProcessorModel::gold_6226(), 42);
//! let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
//! let t0 = core.rdtscp(ThreadId::T0);
//! core.run_loop(ThreadId::T0, &chain, 100);
//! let t1 = core.rdtscp(ThreadId::T0);
//! assert!(t1 > t0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod core_model;
pub mod model;
pub mod timer;

pub use core_model::{Core, LoopRun, ThreadWork};
pub use model::{MicrocodePatch, ProcessorModel};
pub use timer::{NoiseModel, Timer};

//! Statistics utilities shared by the `leaky-frontends` reproduction.
//!
//! The paper ("Leaky Frontends", HPCA 2022) relies on a small set of
//! statistical tools that this crate implements from scratch:
//!
//! * running summary statistics ([`OnlineStats`], Welford's algorithm) used to
//!   summarise timing and power measurements,
//! * fixed-bin [`Histogram`]s used to regenerate the timing/power histograms
//!   of Figures 2 and 9,
//! * the **Wagner-Fischer** edit distance (paper §VI) used to compute covert
//!   channel error rates between sent and received bit strings,
//! * the **Euclidean distance** (paper §XI) used to compare attacker IPC
//!   traces for application fingerprinting,
//! * threshold calibration for the timing decoder (paper §VI-B).
//!
//! # Examples
//!
//! ```
//! use leaky_stats::{OnlineStats, edit_distance};
//!
//! let mut s = OnlineStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     s.push(x);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(edit_distance(&[true, false, true], &[true, true, true]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod distance;
pub mod histogram;
pub mod summary;
pub mod threshold;

pub use distance::{
    edit_distance, edit_distance_bits, error_rate, euclidean_distance, mean_pairwise_distance,
    DistanceError,
};
pub use histogram::Histogram;
pub use summary::OnlineStats;
pub use threshold::{ThresholdDecoder, ThresholdDecoderBuilder};

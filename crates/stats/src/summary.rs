//! Running summary statistics.

/// Online mean / variance accumulator using Welford's algorithm.
///
/// Numerically stable for the long measurement streams produced by the
/// covert-channel experiments (hundreds of thousands of timing samples).
///
/// The dependency-free trace layer carries its own operation-for-
/// operation mirror of this accumulator (`leaky_trace::Welford`); a
/// parity test over there pins the two to identical arithmetic, so
/// keep any numerical change to `push`/`merge` in sync.
///
/// # Examples
///
/// ```
/// use leaky_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample seen, or `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen, or `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divides by `n`), or `0.0` with fewer than one
    /// sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or `0.0` with fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Merges a sequence of accumulators strictly left-to-right.
///
/// Floating-point addition is not associative, so the *grouping* of
/// [`OnlineStats::merge`] calls affects the low bits of the result. A
/// parallel sweep that wants bit-identical output at any worker count
/// must therefore collect its per-shard accumulators in a deterministic
/// order and fold them sequentially — which is exactly what this does.
///
/// # Examples
///
/// ```
/// use leaky_stats::{summary::merge_ordered, OnlineStats};
///
/// let parts = [
///     OnlineStats::from_iter([1.0, 2.0]),
///     OnlineStats::from_iter([3.0]),
/// ];
/// assert_eq!(merge_ordered(parts).mean(), 2.0);
/// ```
pub fn merge_ordered<I: IntoIterator<Item = OnlineStats>>(parts: I) -> OnlineStats {
    let mut acc = OnlineStats::new();
    for part in parts {
        acc.merge(&part);
    }
    acc
}

impl FromIterator<f64> for OnlineStats {
    /// Builds an accumulator from an iterator of samples.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Returns the median of a slice (average of the two middle elements for even
/// lengths), or `None` for an empty slice.
///
/// Samples are ordered with [`f64::total_cmp`], so NaN inputs sort
/// after `+inf` instead of aborting the sweep mid-render.
///
/// # Examples
///
/// ```
/// assert_eq!(leaky_stats::summary::median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(leaky_stats::summary::median(&[]), None);
/// ```
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Returns the `q`-quantile (0.0..=1.0) of a slice using linear
/// interpolation, or `None` for an empty slice.
///
/// Samples are ordered with [`f64::total_cmp`], so NaN inputs sort
/// after `+inf` instead of aborting the sweep mid-render.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile: q must be in [0, 1]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = OnlineStats::from_iter([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
        let s = OnlineStats::from_iter(data.iter().copied());
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..300).map(|i| i as f64 * 1.5).collect();
        let mut left = OnlineStats::from_iter(a.iter().copied());
        let right = OnlineStats::from_iter(b.iter().copied());
        left.merge(&right);
        let all = OnlineStats::from_iter(a.into_iter().chain(b));
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::from_iter([1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn merge_ordered_equals_manual_left_fold() {
        let shards: Vec<OnlineStats> = (0..7)
            .map(|s| OnlineStats::from_iter((0..50).map(|i| ((s * 50 + i) as f64 * 0.13).cos())))
            .collect();
        let mut manual = OnlineStats::new();
        for s in &shards {
            manual.merge(s);
        }
        // Bit-identical, not just approximately equal: merge_ordered is
        // the determinism anchor for parallel sweeps.
        assert_eq!(merge_ordered(shards), manual);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn quantile_endpoints() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), median(&data));
    }

    #[test]
    fn min_max_track_extremes() {
        let s = OnlineStats::from_iter([3.0, -7.0, 12.0, 0.0]);
        assert_eq!(s.min(), -7.0);
        assert_eq!(s.max(), 12.0);
    }
}

//! Distance metrics: Wagner-Fischer edit distance (paper §VI) and Euclidean
//! distance (paper §XI).

use std::error::Error;
use std::fmt;

/// Error returned by [`euclidean_distance`] when the traces have different
/// lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceError {
    left: usize,
    right: usize,
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace lengths differ: {} vs {}", self.left, self.right)
    }
}

impl Error for DistanceError {}

/// Computes the Levenshtein edit distance between two sequences using the
/// Wagner-Fischer dynamic program, exactly as the paper uses to score
/// sent-vs-received covert channel messages (§VI).
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
///
/// # Examples
///
/// ```
/// use leaky_stats::edit_distance;
///
/// assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
/// ```
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Keep the shorter sequence as the DP row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, litem) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sitem) in short.iter().enumerate() {
            let cost = if litem == sitem { 0 } else { 1 };
            let new = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = new;
        }
    }
    row[short.len()]
}

/// Computes the Levenshtein edit distance between two *bit* strings with
/// Myers' bit-parallel algorithm (Myers 1999, blocked per Hyyrö 2003):
/// the DP matrix's vertical deltas are packed 64 per machine word, so the
/// cost is `O(⌈min(|a|,|b|)/64⌉ · max(|a|,|b|))` — a ~64x win over the
/// [`edit_distance`] row DP on the multi-thousand-bit messages of
/// Tables II-VI.
///
/// Always returns exactly the same value as `edit_distance(a, b)`.
///
/// # Examples
///
/// ```
/// use leaky_stats::{edit_distance, edit_distance_bits};
///
/// let a = [true, false, true, true, false];
/// let b = [true, true, false, false];
/// assert_eq!(edit_distance_bits(&a, &b), edit_distance(&a, &b));
/// ```
pub fn edit_distance_bits(a: &[bool], b: &[bool]) -> usize {
    // The shorter string becomes the bit-packed pattern (fewer words).
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let m = pattern.len();
    if m == 0 {
        return text.len();
    }
    let words = m.div_ceil(64);
    // peq[sym][w]: bit i of word w set iff pattern[w*64 + i] == sym.
    let mut peq = [vec![0u64; words], vec![0u64; words]];
    for (i, &bit) in pattern.iter().enumerate() {
        peq[usize::from(bit)][i / 64] |= 1u64 << (i % 64);
    }
    // Vertical delta vectors, initially all +1 (first column is 0..=m).
    let mut pv = vec![u64::MAX; words];
    let mut mv = vec![0u64; words];
    let last = words - 1;
    let last_bit = 1u64 << ((m - 1) % 64);
    let mut score = m;
    for &t in text {
        let eq_words = &peq[usize::from(t)];
        // Horizontal delta entering the top block from the first row
        // (which is 0, 1, 2, ...): always +1.
        let mut hin: i32 = 1;
        for w in 0..words {
            let mut eq = eq_words[w];
            let pv_w = pv[w];
            let mv_w = mv[w];
            let xv = eq | mv_w;
            if hin < 0 {
                eq |= 1;
            }
            let xh = (((eq & pv_w).wrapping_add(pv_w)) ^ pv_w) | eq;
            let mut ph = mv_w | !(xh | pv_w);
            let mut mh = pv_w & xh;
            if w == last {
                if ph & last_bit != 0 {
                    score += 1;
                } else if mh & last_bit != 0 {
                    score -= 1;
                }
            }
            let hout = i32::from(ph >> 63 != 0) - i32::from(mh >> 63 != 0);
            ph <<= 1;
            mh <<= 1;
            if hin > 0 {
                ph |= 1;
            } else if hin < 0 {
                mh |= 1;
            }
            pv[w] = mh | !(xv | ph);
            mv[w] = ph & xv;
            hin = hout;
        }
    }
    score
}

/// Computes the covert-channel error rate between a sent and a received bit
/// string: edit distance normalised by the sent length and clamped to
/// `[0, 1]` (paper §VI).
///
/// The paper scores a transmission as `edit_distance / |sent|`; when the
/// receiver over-samples (`|received| > |sent|`) the raw quotient can
/// exceed 1, which is meaningless as an error *rate* — a transmission can
/// not be more wrong than "every sent bit lost". Such runs saturate at
/// 1.0 (total loss), keeping §VI rates comparable across channels.
///
/// Returns `0.0` when both strings are empty. Bit strings dispatch to the
/// bit-parallel [`edit_distance_bits`] kernel.
///
/// # Examples
///
/// ```
/// use leaky_stats::error_rate;
///
/// let sent = [true, false, true, false];
/// let recv = [true, false, false, false];
/// assert!((error_rate(&sent, &recv) - 0.25).abs() < 1e-12);
/// // Over-long garbage saturates at 1.0 instead of exceeding it.
/// assert_eq!(error_rate(&sent, &[false; 64]), 1.0);
/// ```
pub fn error_rate(sent: &[bool], received: &[bool]) -> f64 {
    if sent.is_empty() && received.is_empty() {
        return 0.0;
    }
    let denom = sent.len().max(1) as f64;
    (edit_distance_bits(sent, received) as f64 / denom).min(1.0)
}

/// Computes the Euclidean (L2) distance between two equal-length traces,
/// used by the application-fingerprinting side channel (paper §XI) to compare
/// attacker IPC waveforms.
///
/// # Errors
///
/// Returns [`DistanceError`] if the traces have different lengths.
///
/// # Examples
///
/// ```
/// use leaky_stats::euclidean_distance;
///
/// let d = euclidean_distance(&[0.0, 0.0], &[3.0, 4.0])?;
/// assert!((d - 5.0).abs() < 1e-12);
/// # Ok::<(), leaky_stats::DistanceError>(())
/// ```
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64, DistanceError> {
    if a.len() != b.len() {
        return Err(DistanceError {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt())
}

/// Mean pairwise Euclidean distance between every pair drawn from two sets of
/// traces. With `a == b` (same set) this yields the paper's *intra-distance*;
/// with two different sets it yields the *inter-distance* (§XI-B, §XI-C).
///
/// Pairs of a trace with itself are skipped when the sets are identical
/// (detected by pointer equality of the slices).
///
/// # Errors
///
/// Returns [`DistanceError`] if any pair of traces differs in length.
pub fn mean_pairwise_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<f64, DistanceError> {
    let same = std::ptr::eq(a, b);
    let mut total = 0.0;
    let mut n = 0u64;
    for (i, ta) in a.iter().enumerate() {
        for (j, tb) in b.iter().enumerate() {
            if same && i == j {
                continue;
            }
            total += euclidean_distance(ta, tb)?;
            n += 1;
        }
    }
    Ok(if n == 0 { 0.0 } else { total / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_edit_distances() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance::<u8>(&[], &[]), 0);
    }

    #[test]
    fn edit_distance_is_symmetric() {
        let a = [true, false, false, true, true];
        let b = [false, true, true];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn identical_strings_have_zero_distance() {
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(edit_distance(&a, &a), 0);
    }

    #[test]
    fn single_substitution() {
        let sent = [true; 8];
        let mut recv = sent;
        recv[3] = false;
        assert_eq!(edit_distance(&sent, &recv), 1);
        assert!((error_rate(&sent, &recv) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn error_rate_empty_is_zero() {
        assert_eq!(error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn error_rate_is_clamped_to_one() {
        // §VI normalisation: a longer received string can push raw
        // edit_distance / |sent| above 1; the rate saturates instead.
        let sent = [true, false];
        let recv = [false; 9];
        assert!(edit_distance(&sent, &recv) > sent.len());
        assert_eq!(error_rate(&sent, &recv), 1.0);
        // Empty sent + non-empty received is total loss, not rate 3.0.
        assert_eq!(error_rate(&[], &[true, true, true]), 1.0);
    }

    /// Deterministic xorshift bit strings for the Myers equivalence tests.
    fn random_bits(seed: u64, len: usize) -> Vec<bool> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            })
            .collect()
    }

    #[test]
    fn myers_matches_wagner_fischer_on_random_strings() {
        // Sweep lengths across the 64-bit word boundaries (0, 1, 63, 64,
        // 65, 127, 128, 129, ...) in both roles.
        let lengths = [0usize, 1, 2, 3, 31, 63, 64, 65, 100, 127, 128, 129, 300];
        for (i, &la) in lengths.iter().enumerate() {
            for (j, &lb) in lengths.iter().enumerate() {
                let a = random_bits(i as u64 + 1, la);
                let b = random_bits((j as u64 + 1) << 32, lb);
                assert_eq!(
                    edit_distance_bits(&a, &b),
                    edit_distance(&a, &b),
                    "lengths {la} vs {lb}"
                );
            }
        }
    }

    #[test]
    fn myers_matches_on_structured_strings() {
        // All-equal, all-different, and single-flip strings.
        let a = vec![true; 200];
        assert_eq!(edit_distance_bits(&a, &a), 0);
        let b = vec![false; 200];
        assert_eq!(edit_distance_bits(&a, &b), edit_distance(&a, &b));
        let mut c = a.clone();
        c[137] = false;
        assert_eq!(edit_distance_bits(&a, &c), 1);
        // Shifted copy: distance equals the shift (one insert + one delete
        // per position is never cheaper than the aligned overlap).
        let shifted: Vec<bool> = a[3..].iter().chain(&[true; 3]).copied().collect();
        assert_eq!(
            edit_distance_bits(&a, &shifted),
            edit_distance(&a, &shifted)
        );
    }

    #[test]
    fn myers_handles_asymmetric_lengths() {
        for (la, lb) in [(5usize, 500usize), (500, 5), (64, 4096), (4096, 64)] {
            let a = random_bits(la as u64, la);
            let b = random_bits(lb as u64 ^ 0xdead_beef, lb);
            assert_eq!(edit_distance_bits(&a, &b), edit_distance(&a, &b));
        }
    }

    #[test]
    fn error_rate_total_loss() {
        let sent = [true, true, true, true];
        assert_eq!(error_rate(&sent, &[]), 1.0);
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_distance(&[1.0], &[1.0]).unwrap(), 0.0);
        let d = euclidean_distance(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d, 0.0);
        assert!(euclidean_distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn euclidean_triangle_inequality() {
        let a = [1.0, 0.0, 2.0];
        let b = [0.0, 3.0, 1.0];
        let c = [2.0, 2.0, 2.0];
        let ab = euclidean_distance(&a, &b).unwrap();
        let bc = euclidean_distance(&b, &c).unwrap();
        let ac = euclidean_distance(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn intra_distance_skips_self_pairs() {
        let set = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let intra = mean_pairwise_distance(&set, &set).unwrap();
        // Only the (0,1) and (1,0) pairs, each distance 1.
        assert!((intra - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inter_distance_counts_all_pairs() {
        let a = vec![vec![0.0]];
        let b = vec![vec![3.0], vec![4.0]];
        let inter = mean_pairwise_distance(&a, &b).unwrap();
        assert!((inter - 3.5).abs() < 1e-12);
    }

    #[test]
    fn distance_error_displays_lengths() {
        let err = euclidean_distance(&[1.0], &[]).unwrap_err();
        assert!(err.to_string().contains("1 vs 0"));
    }
}

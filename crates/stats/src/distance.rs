//! Distance metrics: Wagner-Fischer edit distance (paper §VI) and Euclidean
//! distance (paper §XI).

use std::error::Error;
use std::fmt;

/// Error returned by [`euclidean_distance`] when the traces have different
/// lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceError {
    left: usize,
    right: usize,
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace lengths differ: {} vs {}", self.left, self.right)
    }
}

impl Error for DistanceError {}

/// Computes the Levenshtein edit distance between two sequences using the
/// Wagner-Fischer dynamic program, exactly as the paper uses to score
/// sent-vs-received covert channel messages (§VI).
///
/// Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
///
/// # Examples
///
/// ```
/// use leaky_stats::edit_distance;
///
/// assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
/// assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
/// ```
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Keep the shorter sequence as the DP row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, litem) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sitem) in short.iter().enumerate() {
            let cost = if litem == sitem { 0 } else { 1 };
            let new = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = new;
        }
    }
    row[short.len()]
}

/// Computes the covert-channel error rate between a sent and a received bit
/// string: edit distance normalised by the sent length (paper §VI).
///
/// Returns `0.0` when both strings are empty.
///
/// # Examples
///
/// ```
/// use leaky_stats::error_rate;
///
/// let sent = [true, false, true, false];
/// let recv = [true, false, false, false];
/// assert!((error_rate(&sent, &recv) - 0.25).abs() < 1e-12);
/// ```
pub fn error_rate(sent: &[bool], received: &[bool]) -> f64 {
    if sent.is_empty() && received.is_empty() {
        return 0.0;
    }
    let denom = sent.len().max(1) as f64;
    edit_distance(sent, received) as f64 / denom
}

/// Computes the Euclidean (L2) distance between two equal-length traces,
/// used by the application-fingerprinting side channel (paper §XI) to compare
/// attacker IPC waveforms.
///
/// # Errors
///
/// Returns [`DistanceError`] if the traces have different lengths.
///
/// # Examples
///
/// ```
/// use leaky_stats::euclidean_distance;
///
/// let d = euclidean_distance(&[0.0, 0.0], &[3.0, 4.0])?;
/// assert!((d - 5.0).abs() < 1e-12);
/// # Ok::<(), leaky_stats::DistanceError>(())
/// ```
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64, DistanceError> {
    if a.len() != b.len() {
        return Err(DistanceError {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt())
}

/// Mean pairwise Euclidean distance between every pair drawn from two sets of
/// traces. With `a == b` (same set) this yields the paper's *intra-distance*;
/// with two different sets it yields the *inter-distance* (§XI-B, §XI-C).
///
/// Pairs of a trace with itself are skipped when the sets are identical
/// (detected by pointer equality of the slices).
///
/// # Errors
///
/// Returns [`DistanceError`] if any pair of traces differs in length.
pub fn mean_pairwise_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<f64, DistanceError> {
    let same = std::ptr::eq(a, b);
    let mut total = 0.0;
    let mut n = 0u64;
    for (i, ta) in a.iter().enumerate() {
        for (j, tb) in b.iter().enumerate() {
            if same && i == j {
                continue;
            }
            total += euclidean_distance(ta, tb)?;
            n += 1;
        }
    }
    Ok(if n == 0 { 0.0 } else { total / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_edit_distances() {
        assert_eq!(edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(edit_distance(b"flaw", b"lawn"), 2);
        assert_eq!(edit_distance(b"", b"abc"), 3);
        assert_eq!(edit_distance(b"abc", b""), 3);
        assert_eq!(edit_distance::<u8>(&[], &[]), 0);
    }

    #[test]
    fn edit_distance_is_symmetric() {
        let a = [true, false, false, true, true];
        let b = [false, true, true];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn identical_strings_have_zero_distance() {
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(edit_distance(&a, &a), 0);
    }

    #[test]
    fn single_substitution() {
        let sent = [true; 8];
        let mut recv = sent;
        recv[3] = false;
        assert_eq!(edit_distance(&sent, &recv), 1);
        assert!((error_rate(&sent, &recv) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn error_rate_empty_is_zero() {
        assert_eq!(error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn error_rate_total_loss() {
        let sent = [true, true, true, true];
        assert_eq!(error_rate(&sent, &[]), 1.0);
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_distance(&[1.0], &[1.0]).unwrap(), 0.0);
        let d = euclidean_distance(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d, 0.0);
        assert!(euclidean_distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn euclidean_triangle_inequality() {
        let a = [1.0, 0.0, 2.0];
        let b = [0.0, 3.0, 1.0];
        let c = [2.0, 2.0, 2.0];
        let ab = euclidean_distance(&a, &b).unwrap();
        let bc = euclidean_distance(&b, &c).unwrap();
        let ac = euclidean_distance(&a, &c).unwrap();
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn intra_distance_skips_self_pairs() {
        let set = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
        let intra = mean_pairwise_distance(&set, &set).unwrap();
        // Only the (0,1) and (1,0) pairs, each distance 1.
        assert!((intra - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inter_distance_counts_all_pairs() {
        let a = vec![vec![0.0]];
        let b = vec![vec![3.0], vec![4.0]];
        let inter = mean_pairwise_distance(&a, &b).unwrap();
        assert!((inter - 3.5).abs() < 1e-12);
    }

    #[test]
    fn distance_error_displays_lengths() {
        let err = euclidean_distance(&[1.0], &[]).unwrap_err();
        assert!(err.to_string().contains("1 vs 0"));
    }
}

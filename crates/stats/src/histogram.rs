//! Fixed-bin histograms used to regenerate the paper's Figures 2 and 9.

use std::fmt;

/// A histogram with uniformly sized bins over a fixed range.
///
/// Samples below the range are counted in an underflow bucket, samples above
/// in an overflow bucket, so no data is silently dropped.
///
/// # Examples
///
/// ```
/// use leaky_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.extend([1.0, 1.5, 7.0, 42.0]);
/// assert_eq!(h.bin_count(0), 2); // [0, 2)
/// assert_eq!(h.bin_count(3), 1); // [6, 8)
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, `bins == 0`, or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.bin_width()) as usize;
            // Guard against floating point landing exactly on `hi`'s bin.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Number of bins (excluding under/overflow).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.bin_width()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.bin_lo(i) + self.bin_width() / 2.0
    }

    /// Samples that fell below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Probability density of bin `i` (so the area under the histogram
    /// integrates to the in-range fraction of samples).
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.bins[i] as f64 / (total as f64 * self.bin_width())
        }
    }

    /// Index of the fullest bin, or `None` if all in-range bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &count) = self.bins.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        if count == 0 {
            None
        } else {
            Some(idx)
        }
    }

    /// Iterates over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }

    /// Renders a compact ASCII sparkline of the histogram, used by the
    /// figure-regeneration binaries.
    pub fn ascii_rows(&self, width: usize) -> Vec<String> {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let bar = "#".repeat((c as usize * width) / max as usize);
                format!(
                    "{:>10.2} | {:<width$} {}",
                    self.bin_lo(i),
                    bar,
                    c,
                    width = width
                )
            })
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.ascii_rows(40) {
            writeln!(f, "{row}")?;
        }
        Ok(())
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        Histogram::extend(self, iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([-1.0, 2.0, 1.0]); // exactly `hi` is overflow
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn boundary_sample_goes_to_right_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.push(1.0);
        assert_eq!(h.bin_count(1), 1);
        h.push(0.0);
        assert_eq!(h.bin_count(0), 1);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        h.extend((0..1000).map(|i| (i % 10) as f64 + 0.25));
        let integral: f64 = (0..h.len()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.extend([0.5, 1.5, 1.6, 1.7, 2.5]);
        assert_eq!(h.mode_bin(), Some(1));
        assert_eq!(Histogram::new(0.0, 1.0, 2).mode_bin(), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn display_has_one_row_per_bin() {
        let h = Histogram::new(0.0, 1.0, 7);
        assert_eq!(h.to_string().lines().count(), 7);
    }
}

//! Timing-threshold calibration and decoding (paper §VI-B).
//!
//! The paper establishes the 0/1 decision threshold by transmitting an
//! alternating `0101...` pattern, averaging the timing of the 0-bits and the
//! 1-bits, and then judging a measurement as "1" when it is 30-70 % or more
//! above the threshold. [`ThresholdDecoder`] reproduces that scheme, including
//! the ambiguity band that triggers re-measurement in our channel
//! implementations.

use std::error::Error;
use std::fmt;

/// Error returned when calibration input cannot produce a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// One of the calibration classes had no samples.
    EmptyClass,
    /// The two class means were indistinguishable.
    DegenerateClasses,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::EmptyClass => write!(f, "calibration class had no samples"),
            CalibrationError::DegenerateClasses => {
                write!(f, "calibration class means are indistinguishable")
            }
        }
    }
}

impl Error for CalibrationError {}

/// Builder for [`ThresholdDecoder`]; collects calibration samples for the
/// two bit classes.
///
/// # Examples
///
/// ```
/// use leaky_stats::ThresholdDecoderBuilder;
///
/// let mut b = ThresholdDecoderBuilder::new();
/// b.push(false, 100.0);
/// b.push(true, 200.0);
/// let decoder = b.build()?;
/// assert!(decoder.decode(190.0));
/// assert!(!decoder.decode(110.0));
/// # Ok::<(), leaky_stats::threshold::CalibrationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThresholdDecoderBuilder {
    zeros: Vec<f64>,
    ones: Vec<f64>,
    band: f64,
    robust: bool,
}

impl ThresholdDecoderBuilder {
    /// Creates an empty builder with the paper's default ambiguity band
    /// (±15 % of the class separation around the threshold).
    pub fn new() -> Self {
        ThresholdDecoderBuilder {
            zeros: Vec::new(),
            ones: Vec::new(),
            band: 0.15,
            robust: false,
        }
    }

    /// Uses class *medians* instead of means, making calibration robust to
    /// interference bursts (occasional large outliers in the measurement
    /// stream).
    pub fn robust(&mut self, robust: bool) -> &mut Self {
        self.robust = robust;
        self
    }

    /// Sets the ambiguity band as a fraction of the class separation.
    /// Measurements within the band are flagged ambiguous by
    /// [`ThresholdDecoder::decode_checked`].
    pub fn ambiguity_band(&mut self, fraction: f64) -> &mut Self {
        self.band = fraction.max(0.0);
        self
    }

    /// Records a calibration measurement with its known bit value.
    pub fn push(&mut self, bit: bool, measurement: f64) -> &mut Self {
        if bit {
            self.ones.push(measurement);
        } else {
            self.zeros.push(measurement);
        }
        self
    }

    /// Records measurements for an alternating `0101...` calibration pattern,
    /// mirroring the paper's calibration procedure.
    pub fn push_alternating<I: IntoIterator<Item = f64>>(&mut self, measurements: I) -> &mut Self {
        for (i, m) in measurements.into_iter().enumerate() {
            self.push(i % 2 == 1, m);
        }
        self
    }

    /// Builds the decoder.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError::EmptyClass`] if either class has no
    /// samples, or [`CalibrationError::DegenerateClasses`] if the class means
    /// coincide.
    pub fn build(&self) -> Result<ThresholdDecoder, CalibrationError> {
        if self.zeros.is_empty() || self.ones.is_empty() {
            return Err(CalibrationError::EmptyClass);
        }
        let center = |samples: &[f64]| -> Result<f64, CalibrationError> {
            if self.robust {
                crate::summary::median(samples).ok_or(CalibrationError::EmptyClass)
            } else {
                Ok(samples.iter().sum::<f64>() / samples.len() as f64)
            }
        };
        let zero_mean = center(&self.zeros)?;
        let one_mean = center(&self.ones)?;
        if (one_mean - zero_mean).abs() < f64::EPSILON * zero_mean.abs().max(1.0) {
            return Err(CalibrationError::DegenerateClasses);
        }
        Ok(ThresholdDecoder {
            zero_mean,
            one_mean,
            threshold: (zero_mean + one_mean) / 2.0,
            band: self.band * (one_mean - zero_mean).abs(),
        })
    }
}

/// Decodes timing (or power) measurements into bits relative to a calibrated
/// threshold.
///
/// "1" is the class whose calibration mean was provided as the `true` class;
/// the decoder handles either polarity (1-bits slower *or* faster than
/// 0-bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdDecoder {
    zero_mean: f64,
    one_mean: f64,
    threshold: f64,
    band: f64,
}

/// Outcome of a decode that also reports ambiguity (measurement too close to
/// the threshold, prompting the channel to re-measure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Confidently decoded bit.
    Bit(bool),
    /// Measurement fell inside the ambiguity band; carries the best guess.
    Ambiguous(bool),
}

impl Decoded {
    /// The decoded bit, ignoring ambiguity.
    pub fn bit(self) -> bool {
        match self {
            Decoded::Bit(b) | Decoded::Ambiguous(b) => b,
        }
    }

    /// Whether the measurement was ambiguous.
    pub fn is_ambiguous(self) -> bool {
        matches!(self, Decoded::Ambiguous(_))
    }
}

impl ThresholdDecoder {
    /// Creates a decoder directly from the two class means, using the
    /// midpoint threshold and a band expressed as a fraction of separation.
    pub fn from_means(zero_mean: f64, one_mean: f64, band_fraction: f64) -> Self {
        ThresholdDecoder {
            zero_mean,
            one_mean,
            threshold: (zero_mean + one_mean) / 2.0,
            band: band_fraction.max(0.0) * (one_mean - zero_mean).abs(),
        }
    }

    /// The calibrated decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Mean calibration measurement of the 0 class.
    pub fn zero_mean(&self) -> f64 {
        self.zero_mean
    }

    /// Mean calibration measurement of the 1 class.
    pub fn one_mean(&self) -> f64 {
        self.one_mean
    }

    /// Absolute separation between the class means.
    pub fn separation(&self) -> f64 {
        (self.one_mean - self.zero_mean).abs()
    }

    /// Decodes a measurement into a bit.
    pub fn decode(&self, measurement: f64) -> bool {
        if self.one_mean > self.zero_mean {
            measurement > self.threshold
        } else {
            measurement < self.threshold
        }
    }

    /// Decodes a measurement, reporting whether it fell inside the ambiguity
    /// band around the threshold.
    pub fn decode_checked(&self, measurement: f64) -> Decoded {
        let bit = self.decode(measurement);
        if (measurement - self.threshold).abs() < self.band {
            Decoded::Ambiguous(bit)
        } else {
            Decoded::Bit(bit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_midpoint() {
        let mut b = ThresholdDecoderBuilder::new();
        b.push(false, 100.0).push(false, 110.0);
        b.push(true, 200.0).push(true, 190.0);
        let d = b.build().unwrap();
        assert!((d.threshold() - 150.0).abs() < 1e-9);
        assert!(d.decode(180.0));
        assert!(!d.decode(120.0));
    }

    #[test]
    fn alternating_calibration_assigns_classes() {
        let mut b = ThresholdDecoderBuilder::new();
        // Pattern 0,1,0,1: indices 1 and 3 are ones.
        b.push_alternating([10.0, 30.0, 10.0, 30.0]);
        let d = b.build().unwrap();
        assert_eq!(d.zero_mean(), 10.0);
        assert_eq!(d.one_mean(), 30.0);
    }

    #[test]
    fn inverted_polarity_decodes_correctly() {
        // 1-bits *faster* than 0-bits (misalignment channel polarity).
        let d = ThresholdDecoder::from_means(200.0, 100.0, 0.1);
        assert!(d.decode(90.0));
        assert!(!d.decode(210.0));
    }

    #[test]
    fn ambiguity_band_flags_near_threshold() {
        let d = ThresholdDecoder::from_means(100.0, 200.0, 0.15);
        // Threshold 150, band ±15.
        assert!(d.decode_checked(151.0).is_ambiguous());
        assert!(!d.decode_checked(180.0).is_ambiguous());
        assert!(!d.decode_checked(120.0).is_ambiguous());
        assert!(d.decode_checked(151.0).bit());
    }

    #[test]
    fn empty_class_errors() {
        let mut b = ThresholdDecoderBuilder::new();
        b.push(false, 1.0);
        assert_eq!(b.build().unwrap_err(), CalibrationError::EmptyClass);
    }

    #[test]
    fn degenerate_classes_error() {
        let mut b = ThresholdDecoderBuilder::new();
        b.push(false, 5.0).push(true, 5.0);
        assert_eq!(b.build().unwrap_err(), CalibrationError::DegenerateClasses);
    }

    #[test]
    fn robust_calibration_ignores_outliers() {
        let mut b = ThresholdDecoderBuilder::new();
        b.robust(true);
        for _ in 0..9 {
            b.push(false, 10.0);
            b.push(true, 20.0);
        }
        b.push(false, 10_000.0); // interference burst in the 0 class
        let d = b.build().unwrap();
        assert_eq!(d.zero_mean(), 10.0, "median must reject the outlier");
        assert!((d.threshold() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn zero_band_never_ambiguous() {
        let d = ThresholdDecoder::from_means(0.0, 10.0, 0.0);
        assert!(!d.decode_checked(5.0001).is_ambiguous());
    }
}

//! Synthetic victim workload models for the fingerprinting side channel
//! (paper §XI).
//!
//! The paper fingerprints co-located victims — Geekbench 5 mobile workloads
//! (§XI-B) and TVM CNN inference (§XI-C) — purely through the *time-varying
//! frontend demand* they exert on the shared MITE, observed as fluctuation
//! in the attacker's own IPC. Since the real benchmark suites are
//! proprietary (and irrelevant beyond their demand waveforms), this crate
//! substitutes **phase-trace models**: deterministic demand waveforms whose
//! shapes mirror each workload's published structure (convolution layer
//! schedules, fire modules, dense blocks, bursty UI workloads...). See
//! DESIGN.md for the substitution rationale.
//!
//! A demand sample is a value in `[0, 1]`: the fraction of peak frontend
//! (MITE) pressure the victim exerts during one attacker sampling window
//! (100 ms at the paper's 10 Hz low-precision timer).
//!
//! # Examples
//!
//! ```
//! use leaky_workloads::{cnn, Workload};
//!
//! let models = cnn::models();
//! assert_eq!(models.len(), 4);
//! let alexnet = &models[0];
//! let trace = alexnet.demand_trace(100);
//! assert_eq!(trace.len(), 100);
//! assert!(trace.iter().all(|&d| (0.0..=1.0).contains(&d)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;

/// A deterministic demand waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Constant demand.
    Constant(f64),
    /// Square wave: `period` samples, the first `duty` of them at `hi`,
    /// the rest at `lo`.
    Square {
        /// Period in samples.
        period: usize,
        /// Samples per period spent at `hi`.
        duty: usize,
        /// High level.
        hi: f64,
        /// Low level.
        lo: f64,
    },
    /// Rising sawtooth from `lo` to `hi` over `period` samples.
    Sawtooth {
        /// Period in samples.
        period: usize,
        /// Start level.
        lo: f64,
        /// End level.
        hi: f64,
    },
    /// Sinusoid with the given period, midpoint and amplitude.
    Sine {
        /// Period in samples.
        period: usize,
        /// Midpoint level.
        mid: f64,
        /// Amplitude.
        amp: f64,
    },
    /// Explicit repeating phase schedule: `(length_in_samples, level)`
    /// segments (models layer-by-layer inference schedules).
    Phases(Vec<(usize, f64)>),
}

impl Pattern {
    /// Demand at sample index `i`, clamped to `[0, 1]`.
    pub fn demand_at(&self, i: usize) -> f64 {
        let v = match self {
            Pattern::Constant(level) => *level,
            Pattern::Square {
                period,
                duty,
                hi,
                lo,
            } => {
                if i % period < *duty {
                    *hi
                } else {
                    *lo
                }
            }
            Pattern::Sawtooth { period, lo, hi } => {
                let frac = (i % period) as f64 / *period as f64;
                lo + (hi - lo) * frac
            }
            Pattern::Sine { period, mid, amp } => {
                mid + amp
                    * (2.0 * std::f64::consts::PI * (i % period) as f64 / *period as f64).sin()
            }
            Pattern::Phases(phases) => {
                let total: usize = phases.iter().map(|(len, _)| len).sum();
                debug_assert!(total > 0, "phase schedule must be non-empty");
                let mut pos = i % total;
                for &(len, level) in phases {
                    if pos < len {
                        return level.clamp(0.0, 1.0);
                    }
                    pos -= len;
                }
                unreachable!("pos < total by construction")
            }
        };
        v.clamp(0.0, 1.0)
    }
}

/// A named victim workload with a demand waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: &'static str,
    pattern: Pattern,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: &'static str, pattern: Pattern) -> Self {
        Workload { name, pattern }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying waveform.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Demand at one attacker sampling window.
    pub fn demand_at(&self, sample: usize) -> f64 {
        self.pattern.demand_at(sample)
    }

    /// The first `n` demand samples.
    pub fn demand_trace(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.demand_at(i)).collect()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

/// CNN inference victims (§XI-C): demand schedules shaped after each
/// network's layer structure.
pub mod cnn {
    use super::{Pattern, Workload};

    /// AlexNet: 5 convolution layers of decreasing spatial size followed by
    /// 3 dense layers — a few long, distinct phases per inference.
    pub fn alexnet() -> Workload {
        Workload::new(
            "AlexNet",
            Pattern::Phases(vec![
                (6, 0.95),
                (5, 0.75),
                (4, 0.85),
                (4, 0.70),
                (3, 0.60),
                (4, 0.30),
                (3, 0.25),
                (2, 0.20),
            ]),
        )
    }

    /// SqueezeNet: eight fire modules, each a short squeeze (1×1, cheap)
    /// followed by a wider expand — rapid alternation.
    pub fn squeezenet() -> Workload {
        Workload::new(
            "SqueezeNet",
            Pattern::Square {
                period: 4,
                duty: 1,
                hi: 0.85,
                lo: 0.35,
            },
        )
    }

    /// VGG: sixteen nearly uniform 3×3 convolution layers — long, flat,
    /// heavy demand with a small dip between blocks.
    pub fn vgg() -> Workload {
        Workload::new(
            "VGG",
            Pattern::Phases(vec![(12, 0.92), (2, 0.80), (12, 0.95), (2, 0.78)]),
        )
    }

    /// DenseNet: dense blocks whose layer cost grows with concatenated
    /// inputs — a rising sawtooth per block.
    pub fn densenet() -> Workload {
        Workload::new(
            "DenseNet",
            Pattern::Sawtooth {
                period: 10,
                lo: 0.30,
                hi: 0.95,
            },
        )
    }

    /// The four models of Fig. 11, in the paper's order.
    pub fn models() -> Vec<Workload> {
        vec![alexnet(), squeezenet(), vgg(), densenet()]
    }
}

/// Mobile benchmark victims (§XI-B): ten profiles shaped after Geekbench 5
/// workload categories.
pub mod mobile {
    use super::{Pattern, Workload};

    /// The ten benchmark profiles used for §XI-B.
    pub fn benchmarks() -> Vec<Workload> {
        vec![
            Workload::new(
                "camera",
                Pattern::Square {
                    period: 6,
                    duty: 4,
                    hi: 0.90,
                    lo: 0.50,
                },
            ),
            Workload::new(
                "navigation",
                Pattern::Sine {
                    period: 14,
                    mid: 0.55,
                    amp: 0.25,
                },
            ),
            Workload::new(
                "speech-recognition",
                Pattern::Phases(vec![(3, 0.85), (2, 0.40), (4, 0.75), (3, 0.30)]),
            ),
            Workload::new(
                "text-rendering",
                Pattern::Square {
                    period: 3,
                    duty: 1,
                    hi: 0.65,
                    lo: 0.15,
                },
            ),
            Workload::new(
                "html5-parse",
                Pattern::Sawtooth {
                    period: 7,
                    lo: 0.20,
                    hi: 0.80,
                },
            ),
            Workload::new(
                "pdf-rendering",
                Pattern::Phases(vec![(5, 0.70), (5, 0.95), (4, 0.45)]),
            ),
            Workload::new(
                "image-inpainting",
                Pattern::Sine {
                    period: 9,
                    mid: 0.70,
                    amp: 0.20,
                },
            ),
            Workload::new("gaussian-blur", Pattern::Constant(0.88)),
            Workload::new(
                "ray-tracing",
                Pattern::Phases(vec![(8, 0.97), (1, 0.55), (8, 0.93), (1, 0.50)]),
            ),
            Workload::new(
                "machine-translation",
                Pattern::Square {
                    period: 10,
                    duty: 6,
                    hi: 0.75,
                    lo: 0.25,
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_bounded_and_deterministic() {
        for w in cnn::models().iter().chain(mobile::benchmarks().iter()) {
            let a = w.demand_trace(200);
            let b = w.demand_trace(200);
            assert_eq!(a, b, "{} must be deterministic", w.name());
            assert!(
                a.iter().all(|&d| (0.0..=1.0).contains(&d)),
                "{} demand out of range",
                w.name()
            );
        }
    }

    #[test]
    fn ten_mobile_benchmarks_with_unique_names() {
        let b = mobile::benchmarks();
        assert_eq!(b.len(), 10);
        let names: std::collections::HashSet<&str> = b.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn cnn_traces_are_mutually_distinct() {
        // The waveforms must be separable — the whole point of §XI-C.
        let models = cnn::models();
        for i in 0..models.len() {
            for j in (i + 1)..models.len() {
                let a = models[i].demand_trace(60);
                let b = models[j].demand_trace(60);
                let dist: f64 = a
                    .iter()
                    .zip(&b)
                    .map(|(x, y)| (x - y).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    dist > 0.5,
                    "{} and {} traces too similar ({dist})",
                    models[i].name(),
                    models[j].name()
                );
            }
        }
    }

    #[test]
    fn patterns_repeat_with_their_period() {
        let w = cnn::squeezenet();
        for i in 0..40 {
            assert_eq!(w.demand_at(i), w.demand_at(i + 4));
        }
        let phases = cnn::alexnet();
        let total = 6 + 5 + 4 + 4 + 3 + 4 + 3 + 2;
        for i in 0..total {
            assert_eq!(phases.demand_at(i), phases.demand_at(i + total));
        }
    }

    #[test]
    fn sawtooth_rises_within_period() {
        let w = cnn::densenet();
        for i in 0..9 {
            assert!(w.demand_at(i) < w.demand_at(i + 1));
        }
        assert!(w.demand_at(10) < w.demand_at(9), "resets at period");
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(cnn::vgg().to_string(), "VGG");
    }
}

//! Instruction blocks: contiguous placed code executed as a unit.
//!
//! The paper's attacks are phrased in terms of *instruction mix blocks*
//! (§IV-D): 4 `mov` + 1 `jmp`, 25 bytes, 5 µops, chosen to fit one 32-byte
//! DSB window, one DSB line (≤ 6 µops), and to avoid backend port
//! contention. [`Block`] generalises this to every code pattern the paper
//! uses (nop blocks for the §XI receiver, LCP `add` runs for §IV-H / §V-E).

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::addr::{Addr, DsbSet};
use crate::geom::FrontendGeometry;
use crate::instr::{Instruction, LcpPattern, Opcode};

/// What kind of code a block contains; used by higher layers for labeling
/// and by the frontend for branch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// The paper's 4-mov + 1-jmp instruction mix block (§IV-D).
    Mix,
    /// A run of single-byte `nop`s (§XI receiver).
    Nop,
    /// Normal/LCP `add` run in a given interleaving (§IV-H, §V-E).
    LcpAdds(LcpPattern),
    /// Free-form code supplied by the caller.
    Custom,
}

/// The µop footprint of a block within one 32-byte window, used by the
/// frontend to populate DSB lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowFootprint {
    /// The window number (`addr >> 5`).
    pub window: u64,
    /// µops whose instruction *starts* in this window.
    pub uops: u32,
    /// Whether the block continues into the following window (i.e. this is
    /// not its last window).
    pub continues: bool,
}

/// One DSB line a block occupies, precomputed at block construction for
/// the canonical Skylake-family line capacity
/// ([`FrontendGeometry::skylake`]'s 6 µops/line, shared by every Table I
/// machine). A window holding more µops than the line capacity spills
/// into further *chunks*; the frontend simulator walks these flat slots
/// instead of re-deriving windows and chunk splits every iteration. The
/// capacity the cached slots assume is recorded on the block
/// ([`Block::cached_line_uops`]), so consumers running a perturbed
/// geometry detect the mismatch and re-derive instead of silently
/// reusing Skylake splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineSlot {
    /// The window number (`addr >> 5`).
    pub window: u64,
    /// Chunk index within the window (0 unless the window exceeds the
    /// per-line µop capacity).
    pub chunk: u8,
    /// µops stored in this line.
    pub uops: u32,
}

/// Per-line µop capacity the precomputed [`LineSlot`]s assume — the
/// Skylake-family value shared by every machine in the paper's Table I.
const CANONICAL_DSB_LINE_UOPS: u32 = FrontendGeometry::skylake().dsb_line_uops as u32;

/// A contiguous, placed sequence of instructions executed front to back.
///
/// # Examples
///
/// ```
/// use leaky_isa::{Addr, Block};
///
/// let b = Block::mix(Addr::new(0x0041_8000));
/// assert_eq!(b.len_bytes(), 25);
/// assert_eq!(b.uop_count(), 5);
/// assert_eq!(b.windows().len(), 1); // aligned: fits one DSB window
///
/// let mis = Block::mix(Addr::new(0x0041_8010)); // +16: misaligned
/// assert_eq!(mis.windows().len(), 2); // spans two windows
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Block {
    base: Addr,
    instrs: Vec<Instruction>,
    kind: BlockKind,
    /// Precomputed window footprints (hot path for the frontend simulator).
    windows: Vec<WindowFootprint>,
    /// Precomputed DSB line slots for `line_slots_uops` µops per line.
    line_slots: Vec<LineSlot>,
    /// The per-line µop capacity `line_slots` was computed for — the key
    /// that guards the cache against non-canonical geometries.
    line_slots_uops: u32,
    /// Precomputed 64-byte cache-line numbers.
    cache_lines: Vec<u64>,
    /// Content hash over base address and instruction stream, precomputed
    /// so per-iteration loop identification costs nothing.
    key: u64,
    uop_count: u32,
    lcp_count: u32,
}

impl Block {
    /// Creates a block from explicit instructions.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty.
    pub fn from_instructions(base: Addr, instrs: Vec<Instruction>, kind: BlockKind) -> Self {
        assert!(!instrs.is_empty(), "a block needs at least one instruction");
        Block::build(base, instrs, kind)
    }

    /// The paper's instruction mix block: 4 `mov r32, imm32` + 1 `jmp`
    /// (25 bytes, 5 µops, §IV-D).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn mix(base: Addr) -> Self {
        let mut instrs = vec![Instruction::new(Opcode::MovImm); 4];
        instrs.push(Instruction::new(Opcode::Jmp));
        Block::build(base, instrs, BlockKind::Mix)
    }

    /// A run of `n` single-byte `nop`s followed by a loop-back `jmp`
    /// (§XI: the side-channel receiver loops through 100 nops).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn nops(base: Addr, n: usize) -> Self {
        assert!(n > 0, "nop block needs at least one nop");
        let mut instrs = vec![Instruction::new(Opcode::Nop); n];
        instrs.push(Instruction::new(Opcode::Jmp));
        Block::build(base, instrs, BlockKind::Nop)
    }

    /// The §IV-H experiment body: `2 * r` `add` instructions, half normal and
    /// half LCP-prefixed, interleaved per `pattern`, ending in a loop branch.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn lcp_adds(base: Addr, pattern: LcpPattern, r: usize) -> Self {
        assert!(r > 0, "LCP block needs r > 0");
        let normal = Instruction::new(Opcode::AddImm);
        let lcp = Instruction::with_lcp(Opcode::AddImm);
        let mut instrs = Vec::with_capacity(2 * r + 1);
        match pattern {
            LcpPattern::Mixed => {
                for _ in 0..r {
                    instrs.push(normal);
                    instrs.push(lcp);
                }
            }
            LcpPattern::Ordered => {
                instrs.extend(std::iter::repeat_n(normal, r));
                instrs.extend(std::iter::repeat_n(lcp, r));
            }
        }
        instrs.push(Instruction::new(Opcode::Jcc));
        Block::build(base, instrs, BlockKind::LcpAdds(pattern))
    }

    /// Builds a block, precomputing the frontend-relevant footprints once.
    fn build(base: Addr, instrs: Vec<Instruction>, kind: BlockKind) -> Self {
        let mut block = Block {
            base,
            instrs,
            kind,
            windows: Vec::new(),
            line_slots: Vec::new(),
            line_slots_uops: CANONICAL_DSB_LINE_UOPS,
            cache_lines: Vec::new(),
            key: 0,
            uop_count: 0,
            lcp_count: 0,
        };
        block.uop_count = block.instrs.iter().map(|i| i.uops() as u32).sum();
        block.lcp_count = block.instrs.iter().filter(|i| i.has_lcp()).count() as u32;
        block.windows = block.compute_windows();
        block.line_slots = block.compute_line_slots(CANONICAL_DSB_LINE_UOPS);
        let first = block.base.cache_line();
        let last_byte = block.base.value() + block.len_bytes() - 1;
        let last = Addr::new(last_byte).cache_line();
        block.cache_lines = (first..=last).collect();
        let mut h = DefaultHasher::new();
        block.base.value().hash(&mut h);
        block.kind.hash(&mut h);
        block.instrs.hash(&mut h);
        block.key = h.finish();
        block
    }

    /// Start address of the block.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Returns the block relocated to a new base address. Useful for turning
    /// an aligned block into its misaligned twin (§IV-G).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn rebased(&self, base: Addr) -> Block {
        Block::build(base, self.instrs.clone(), self.kind)
    }

    /// The block's code-pattern kind.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// The instructions in execution order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Iterates over `(address, instruction)` pairs in execution order.
    pub fn placed_instructions(&self) -> impl Iterator<Item = (Addr, Instruction)> + '_ {
        let mut addr = self.base;
        self.instrs.iter().map(move |&i| {
            let here = addr;
            addr = addr.offset(i.length() as u64);
            (here, i)
        })
    }

    /// Total encoded size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.instrs.iter().map(|i| i.length() as u64).sum()
    }

    /// Address one past the last byte.
    pub fn end(&self) -> Addr {
        self.base.offset(self.len_bytes())
    }

    /// Total µop count.
    pub fn uop_count(&self) -> u32 {
        self.uop_count
    }

    /// Number of instructions.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Number of LCP-prefixed instructions in the block.
    pub fn lcp_count(&self) -> usize {
        self.lcp_count as usize
    }

    /// Whether the block starts on a 32-byte window boundary. Misaligned
    /// blocks are the basis of the §IV-G LSD-eviction attacks.
    pub fn is_aligned(&self) -> bool {
        self.base.is_window_aligned()
    }

    /// The DSB set of the block's *first* window (`addr[9:5]` of the base).
    pub fn dsb_set(&self) -> DsbSet {
        self.base.dsb_set()
    }

    /// The 32-byte windows this block touches, with per-window µop counts.
    /// A window-crossing ("misaligned") block returns more than one entry;
    /// the frontend allocates one DSB line per entry.
    pub fn windows(&self) -> &[WindowFootprint] {
        &self.windows
    }

    /// The DSB lines the block occupies, precomputed for the canonical
    /// 6-µop line capacity ([`FrontendGeometry::skylake`]). Windows and
    /// chunks appear in delivery order, so the frontend's hot path can
    /// walk this flat slice directly. Callers running an arbitrary
    /// geometry must check [`Block::cached_line_uops`] first (or use
    /// [`Block::line_slots_for`], which does) — these slots are only
    /// valid for that capacity.
    pub fn dsb_line_slots(&self) -> &[LineSlot] {
        &self.line_slots
    }

    /// The per-line µop capacity [`Block::dsb_line_slots`] was computed
    /// for. Geometry-aware consumers compare this against their active
    /// `dsb_line_uops` before reusing the cached slots.
    pub fn cached_line_uops(&self) -> u32 {
        self.line_slots_uops
    }

    /// The block's DSB line slots under an arbitrary per-line µop
    /// capacity: the precomputed slice when `line_uops` matches the
    /// cached capacity, a fresh derivation otherwise. This is the
    /// geometry-safe accessor — it cannot hand Skylake splits to a
    /// perturbed geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_uops` is zero.
    pub fn line_slots_for(&self, line_uops: u32) -> std::borrow::Cow<'_, [LineSlot]> {
        if line_uops == self.line_slots_uops {
            std::borrow::Cow::Borrowed(&self.line_slots)
        } else {
            std::borrow::Cow::Owned(self.compute_line_slots(line_uops))
        }
    }

    /// Derives the block's DSB line slots for an arbitrary per-line µop
    /// capacity (ablation geometries). The canonical capacity's slots are
    /// precomputed — prefer [`Block::dsb_line_slots`].
    ///
    /// # Panics
    ///
    /// Panics if `line_uops` is zero.
    pub fn compute_line_slots(&self, line_uops: u32) -> Vec<LineSlot> {
        assert!(line_uops > 0, "a DSB line stores at least one µop");
        let mut slots = Vec::with_capacity(self.windows.len());
        for fp in &self.windows {
            let mut remaining = fp.uops;
            let mut chunk = 0u8;
            while remaining > 0 {
                let uops = remaining.min(line_uops);
                slots.push(LineSlot {
                    window: fp.window,
                    chunk,
                    uops,
                });
                remaining -= uops;
                chunk += 1;
            }
        }
        slots
    }

    /// Content hash over the block's base address, kind and instruction
    /// stream, precomputed at construction. Two blocks with equal keys are
    /// (modulo hash collisions) the same placed code; the frontend uses
    /// chain keys built from block keys to identify loops without
    /// re-hashing per iteration.
    pub fn key(&self) -> u64 {
        self.key
    }

    fn compute_windows(&self) -> Vec<WindowFootprint> {
        let mut out: Vec<WindowFootprint> = Vec::new();
        for (addr, instr) in self.placed_instructions() {
            let w = addr.window();
            match out.last_mut() {
                Some(last) if last.window == w => last.uops += instr.uops() as u32,
                _ => out.push(WindowFootprint {
                    window: w,
                    uops: instr.uops() as u32,
                    continues: false,
                }),
            }
        }
        let n = out.len();
        for (i, fp) in out.iter_mut().enumerate() {
            fp.continues = i + 1 < n;
        }
        out
    }

    /// Number of DSB lines the block needs, honouring the ≤ 6 µops/line
    /// limit (§IV-B): a window holding more than `dsb_line_uops` µops needs
    /// extra lines.
    pub fn dsb_lines(&self, geom: &FrontendGeometry) -> usize {
        self.windows()
            .iter()
            .map(|w| (w.uops as usize).div_ceil(geom.dsb_line_uops))
            .sum()
    }

    /// The 64-byte L1I cache lines the block touches.
    pub fn cache_lines(&self) -> &[u64] {
        &self.cache_lines
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}@{} ({} instrs, {} uops, {} B)",
            self.kind,
            self.base,
            self.instr_count(),
            self.uop_count(),
            self.len_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_block_matches_paper_parameters() {
        let b = Block::mix(Addr::new(0x0041_8000));
        assert_eq!(b.len_bytes(), 25);
        assert_eq!(b.uop_count(), 5);
        assert_eq!(b.instr_count(), 5);
        assert_eq!(b.lcp_count(), 0);
        assert!(b.is_aligned());
    }

    #[test]
    fn aligned_mix_block_occupies_one_window_and_line() {
        let g = FrontendGeometry::skylake();
        let b = Block::mix(Addr::new(0x0041_8000));
        let ws = b.windows();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].uops, 5);
        assert!(!ws[0].continues);
        assert_eq!(b.dsb_lines(&g), 1);
    }

    #[test]
    fn misaligned_mix_block_spans_two_windows() {
        let g = FrontendGeometry::skylake();
        let b = Block::mix(Addr::new(0x0041_8010)); // offset 16 (§V-B)
        let ws = b.windows();
        assert_eq!(ws.len(), 2);
        assert!(ws[0].continues);
        assert!(!ws[1].continues);
        assert_eq!(ws[0].uops + ws[1].uops, 5);
        assert_eq!(b.dsb_lines(&g), 2);
        assert!(!b.is_aligned());
    }

    #[test]
    fn placed_instruction_addresses_are_contiguous() {
        let b = Block::mix(Addr::new(0x1000));
        let placed: Vec<(Addr, Instruction)> = b.placed_instructions().collect();
        assert_eq!(placed[0].0, Addr::new(0x1000));
        assert_eq!(placed[1].0, Addr::new(0x1005));
        assert_eq!(placed[4].0, Addr::new(0x1014)); // after 4 movs
        assert_eq!(b.end(), Addr::new(0x1019));
    }

    #[test]
    fn nop_block_footprint() {
        let g = FrontendGeometry::skylake();
        // §XI: 100 nops (+jmp) won't fit the 64-µop LSD but fit the DSB.
        let b = Block::nops(Addr::new(0x2000), 100);
        assert_eq!(b.uop_count(), 101);
        assert!(b.uop_count() as usize > g.lsd_uops);
        assert!((b.uop_count() as usize) < g.dsb_capacity_uops());
        // 100 nops + 5-byte jmp = 105 bytes = two 64-byte cache lines.
        assert_eq!(b.cache_lines().len(), 2);
        // 105 bytes = 4 windows of 32 B.
        assert_eq!(b.windows().len(), 4);
    }

    #[test]
    fn nop_window_exceeding_line_uops_needs_multiple_lines() {
        let g = FrontendGeometry::skylake();
        // 31 one-byte nops + the jmp start in one window = 32 µops > 6 → 6 lines.
        let b = Block::nops(Addr::new(0x3000), 31);
        let first_window_uops = b.windows()[0].uops;
        assert_eq!(first_window_uops, 32);
        assert!(b.dsb_lines(&g) >= 6);
    }

    #[test]
    fn lcp_block_patterns() {
        let mixed = Block::lcp_adds(Addr::new(0x4000), LcpPattern::Mixed, 16);
        let ordered = Block::lcp_adds(Addr::new(0x4000), LcpPattern::Ordered, 16);
        // §IV-H: 32 instructions within the loop (+ loop branch).
        assert_eq!(mixed.instr_count(), 33);
        assert_eq!(ordered.instr_count(), 33);
        assert_eq!(mixed.lcp_count(), 16);
        assert_eq!(ordered.lcp_count(), 16);
        // Same bytes, same µops, different interleaving.
        assert_eq!(mixed.len_bytes(), ordered.len_bytes());
        assert_eq!(mixed.uop_count(), ordered.uop_count());
        assert_ne!(mixed.instructions(), ordered.instructions());
        // Mixed alternates normal/LCP.
        assert!(!mixed.instructions()[0].has_lcp());
        assert!(mixed.instructions()[1].has_lcp());
        // Ordered groups them.
        assert!(!ordered.instructions()[15].has_lcp());
        assert!(ordered.instructions()[16].has_lcp());
    }

    #[test]
    fn line_slots_match_windows_and_capacity() {
        let g = FrontendGeometry::skylake();
        // Aligned mix block: one window, one slot of 5 µops.
        let b = Block::mix(Addr::new(0x0041_8000));
        assert_eq!(b.dsb_line_slots().len(), 1);
        assert_eq!(b.dsb_line_slots()[0].uops, 5);
        assert_eq!(b.dsb_line_slots()[0].chunk, 0);
        // A 32-µop window splits into ceil(32/6) = 6 chunks of ≤ 6 µops.
        let nops = Block::nops(Addr::new(0x3000), 31);
        let slots = nops.dsb_line_slots();
        let first_window = slots[0].window;
        let first: Vec<_> = slots.iter().filter(|s| s.window == first_window).collect();
        assert_eq!(first.len(), 6);
        assert!(first.iter().all(|s| s.uops <= g.dsb_line_uops as u32));
        assert_eq!(first.iter().map(|s| s.uops).sum::<u32>(), 32);
        assert_eq!(
            first.iter().map(|s| s.chunk).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        // Slot count always equals dsb_lines, and the precomputed slots
        // match an explicit derivation at the canonical capacity.
        for b in [&b, &nops] {
            assert_eq!(b.dsb_line_slots().len(), b.dsb_lines(&g));
            assert_eq!(b.dsb_line_slots(), b.compute_line_slots(6).as_slice());
        }
        // Non-canonical capacities re-derive.
        assert_eq!(nops.compute_line_slots(32).len(), nops.windows().len());
    }

    #[test]
    fn cached_slots_are_keyed_by_their_capacity() {
        let nops = Block::nops(Addr::new(0x3000), 31);
        assert_eq!(nops.cached_line_uops(), 6);
        // Matching capacity: the cached slice is returned by reference.
        assert!(matches!(
            nops.line_slots_for(6),
            std::borrow::Cow::Borrowed(_)
        ));
        assert_eq!(&*nops.line_slots_for(6), nops.dsb_line_slots());
        // A perturbed geometry must never see the Skylake splits: the
        // 32-µop window is 6 chunks at 6 µops/line but 4 at 8 µops/line.
        let wide = nops.line_slots_for(8);
        assert!(matches!(wide, std::borrow::Cow::Owned(_)));
        assert_eq!(
            wide.iter().filter(|s| s.window == wide[0].window).count(),
            4
        );
        assert_eq!(&*wide, nops.compute_line_slots(8).as_slice());
    }

    #[test]
    fn block_keys_distinguish_content_and_placement() {
        let a = Block::mix(Addr::new(0x1000));
        let same = Block::mix(Addr::new(0x1000));
        let moved = Block::mix(Addr::new(0x2000));
        let other = Block::nops(Addr::new(0x1000), 4);
        assert_eq!(a.key(), same.key());
        assert_ne!(a.key(), moved.key());
        assert_ne!(a.key(), other.key());
        // Same address, same instruction count, different interleaving:
        // the keys must still differ (content-sensitive hashing).
        let mixed = Block::lcp_adds(Addr::new(0x4000), LcpPattern::Mixed, 16);
        let ordered = Block::lcp_adds(Addr::new(0x4000), LcpPattern::Ordered, 16);
        assert_ne!(mixed.key(), ordered.key());
    }

    #[test]
    fn rebased_preserves_contents() {
        let b = Block::mix(Addr::new(0x1000));
        let r = b.rebased(Addr::new(0x2010));
        assert_eq!(r.instructions(), b.instructions());
        assert_eq!(r.base(), Addr::new(0x2010));
        assert!(!r.is_aligned());
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_block_rejected() {
        let _ = Block::from_instructions(Addr::new(0), Vec::new(), BlockKind::Custom);
    }
}

//! Non-overlapping code region allocation for multi-party experiments.
//!
//! Sender, receiver and victim code must live at disjoint virtual addresses
//! (they are different programs), yet the attacks require them to collide in
//! chosen DSB sets. [`CodeRegion`] hands out chains and blocks from a
//! private address range, tracking a bump pointer so nothing overlaps.

use crate::addr::{Addr, DsbSet};
use crate::block::Block;
use crate::chain::{same_set_chain_with, Alignment, BlockChain};
use crate::geom::FrontendGeometry;

/// A bump allocator over a private virtual-address range for placing attack
/// code.
///
/// # Examples
///
/// ```
/// use leaky_isa::{Alignment, CodeRegion, DsbSet};
///
/// let mut region = CodeRegion::new(0x0041_8000);
/// let recv = region.same_set_chain(DsbSet::new(3), 6, Alignment::Aligned);
/// let send = region.same_set_chain(DsbSet::new(3), 3, Alignment::Aligned);
/// // Same DSB set, disjoint addresses.
/// assert!(send.blocks()[0].base() > recv.blocks().last().unwrap().end());
/// ```
#[derive(Debug, Clone)]
pub struct CodeRegion {
    cursor: u64,
    geom: FrontendGeometry,
}

impl CodeRegion {
    /// Creates a region starting at `base`.
    pub fn new(base: u64) -> Self {
        CodeRegion {
            cursor: base,
            geom: FrontendGeometry::skylake(),
        }
    }

    /// Creates a region with explicit geometry (for ablations).
    pub fn with_geometry(base: u64, geom: FrontendGeometry) -> Self {
        CodeRegion { cursor: base, geom }
    }

    /// The next free address.
    pub fn cursor(&self) -> Addr {
        Addr::new(self.cursor)
    }

    /// Allocates a chain of `count` mix blocks all mapping to `set`
    /// (paper Fig. 3 layout) under the region's geometry, advancing the
    /// region cursor past it.
    ///
    /// # Panics
    ///
    /// Panics if the block count is zero or the set indexes beyond the
    /// geometry's DSB sets (`same_set_chain_with`).
    pub fn same_set_chain(
        &mut self,
        set: DsbSet,
        count: usize,
        alignment: Alignment,
    ) -> BlockChain {
        let chain = same_set_chain_with(self.cursor, set, count, alignment, &self.geom);
        let end = chain
            .blocks()
            .iter()
            .map(|b| b.end().value())
            .max()
            .expect("chain is non-empty"); // lint: allow(panic-path) — same_set_chain_with always emits ≥1 block
                                           // Round up to the next full set period so a following chain cannot
                                           // share any window with this one.
        let period = (self.geom.dsb_window_bytes * self.geom.dsb_sets) as u64;
        self.cursor = end.div_ceil(period) * period;
        chain
    }

    /// Allocates a nop block of `n` nops (§XI receiver), window aligned.
    ///
    /// # Panics
    ///
    /// Panics if the requested nop count is zero (`Block::nops`).
    pub fn nop_block(&mut self, n: usize) -> Block {
        let base = self.aligned_cursor();
        let block = Block::nops(base, n);
        self.cursor = block.end().value();
        block
    }

    /// Allocates an LCP `add` loop body (§IV-H), window aligned.
    ///
    /// # Panics
    ///
    /// Panics if the repeat count is zero (`Block::lcp_adds`).
    pub fn lcp_block(&mut self, pattern: crate::instr::LcpPattern, r: usize) -> Block {
        let base = self.aligned_cursor();
        let block = Block::lcp_adds(base, pattern, r);
        self.cursor = block.end().value();
        block
    }

    /// Allocates a single mix block mapping to `set`.
    ///
    /// # Panics
    ///
    /// Panics if the block count is zero or the set indexes beyond the
    /// geometry's DSB sets (`same_set_chain_with`).
    pub fn mix_block(&mut self, set: DsbSet, alignment: Alignment) -> Block {
        let chain = self.same_set_chain(set, 1, alignment);
        chain.blocks()[0].clone()
    }

    fn aligned_cursor(&mut self) -> Addr {
        let w = self.geom.dsb_window_bytes as u64;
        self.cursor = self.cursor.div_ceil(w) * w;
        Addr::new(self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::LcpPattern;

    #[test]
    fn sequential_chains_never_overlap() {
        let mut r = CodeRegion::new(0x0041_8000);
        let mut prev_end = 0u64;
        for set in [0u8, 0, 5, 5, 31] {
            let c = r.same_set_chain(DsbSet::new(set), 9, Alignment::Aligned);
            let start = c.blocks()[0].base().value();
            let end = c.blocks().iter().map(|b| b.end().value()).max().unwrap();
            assert!(start >= prev_end, "chain overlaps previous allocation");
            prev_end = end;
        }
    }

    #[test]
    fn chains_to_same_set_use_distinct_windows() {
        let mut r = CodeRegion::new(0x0041_8000);
        let a = r.same_set_chain(DsbSet::new(9), 8, Alignment::Aligned);
        let b = r.same_set_chain(DsbSet::new(9), 8, Alignment::Aligned);
        let wa: std::collections::HashSet<u64> =
            a.blocks().iter().map(|x| x.base().window()).collect();
        let wb: std::collections::HashSet<u64> =
            b.blocks().iter().map(|x| x.base().window()).collect();
        assert!(wa.is_disjoint(&wb));
    }

    #[test]
    fn nop_and_lcp_blocks_are_window_aligned() {
        let mut r = CodeRegion::new(0x0082_0013); // deliberately unaligned base
        let n = r.nop_block(100);
        assert!(n.base().is_window_aligned());
        let l = r.lcp_block(LcpPattern::Mixed, 16);
        assert!(l.base().is_window_aligned());
        assert!(l.base() >= n.end());
    }

    #[test]
    fn mix_block_lands_on_requested_set() {
        let mut r = CodeRegion::new(0x0100_0000);
        for set in 0..32u8 {
            let b = r.mix_block(DsbSet::new(set), Alignment::Aligned);
            assert_eq!(b.dsb_set().index(), set);
        }
    }
}

//! x86-like instruction and code-layout model for the `leaky-frontends`
//! frontend simulator.
//!
//! The paper's attacks are built from *instruction mix blocks* — short runs of
//! simple instructions (4 `mov` + 1 `jmp`, 25 bytes, 5 µops) placed at
//! addresses chosen so that they map to a particular DSB set, stay inside one
//! 32-byte window, and avoid L1 instruction-cache conflicts (paper §IV-D,
//! Fig. 3). This crate models exactly the properties of machine code that the
//! frontend cares about:
//!
//! * instruction **byte length** (including Length-Changing Prefixes, §IV-H),
//! * **µop decomposition** per instruction,
//! * **code placement**: virtual addresses, 32-byte DSB windows, alignment
//!   and misalignment (§IV-G),
//! * block and chain builders for every code pattern used in the paper.
//!
//! # Examples
//!
//! ```
//! use leaky_isa::{Alignment, DsbSet};
//!
//! // A paper-style chain of instruction mix blocks mapping to DSB set 3.
//! let chain = leaky_isa::same_set_chain(0x0041_8000, DsbSet::new(3), 8, Alignment::Aligned);
//! assert_eq!(chain.blocks().len(), 8);
//! assert!(chain.blocks().iter().all(|b| b.base().dsb_set() == DsbSet::new(3)));
//! assert_eq!(chain.total_uops(), 40); // 8 blocks x 5 micro-ops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod block;
pub mod chain;
pub mod geom;
pub mod instr;
pub mod region;

pub use addr::{Addr, DsbSet};
pub use block::{Block, BlockKind, LineSlot, WindowFootprint};
pub use chain::{same_set_chain, same_set_chain_with, Alignment, BlockChain};
pub use geom::FrontendGeometry;
pub use instr::{Instruction, LcpPattern, Opcode, PortMask};
pub use region::CodeRegion;

//! Chains of instruction mix blocks linked by their trailing `jmp`s.
//!
//! The paper builds its eviction and misalignment primitives from chains of
//! mix blocks whose start addresses all map to the *same DSB set* but to
//! different windows/tags, 1024 bytes apart (Fig. 3). The final block's `jmp`
//! returns to the first block, so executing the first `mov` walks the whole
//! chain, and the chain as a whole forms a loop that may or may not qualify
//! for the LSD.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::addr::{Addr, DsbSet};
use crate::block::Block;
use crate::geom::FrontendGeometry;

/// Whether chain blocks are placed on 32-byte window boundaries or offset by
/// half a window (16 bytes), the paper's misalignment trick (§IV-G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alignment {
    /// Blocks start exactly on window boundaries.
    Aligned,
    /// Blocks start 16 bytes into a window, so each block straddles two
    /// windows and occupies two DSB lines.
    Misaligned,
}

impl fmt::Display for Alignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alignment::Aligned => f.write_str("aligned"),
            Alignment::Misaligned => f.write_str("misaligned"),
        }
    }
}

/// An ordered chain of blocks executed per loop iteration.
///
/// # Examples
///
/// ```
/// use leaky_isa::{same_set_chain, Alignment, DsbSet};
///
/// let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 9, Alignment::Aligned);
/// // 9 blocks of 5 µops: more ways than the 8-way DSB set -> evictions.
/// assert_eq!(chain.total_uops(), 45);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockChain {
    blocks: Vec<Block>,
    /// Loop-identity key over the blocks' content keys, maintained on
    /// every structural change so hot loops never re-hash the chain.
    key: u64,
    /// Cached µop total (same maintenance discipline as `key`).
    total_uops: u32,
}

impl BlockChain {
    /// Builds a chain from blocks. The blocks are executed in order; the
    /// last block is assumed to jump back to the first.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn new(blocks: Vec<Block>) -> Self {
        assert!(!blocks.is_empty(), "a chain needs at least one block");
        let mut chain = BlockChain {
            blocks,
            key: 0,
            total_uops: 0,
        };
        chain.refresh_cached();
        chain
    }

    /// Recomputes the cached key and µop total after a structural change.
    fn refresh_cached(&mut self) {
        let mut h = DefaultHasher::new();
        self.blocks.len().hash(&mut h);
        for b in &self.blocks {
            b.key().hash(&mut h);
        }
        self.key = h.finish();
        self.total_uops = self.blocks.iter().map(Block::uop_count).sum();
    }

    /// The chain's loop-identity key: a content hash over every block's
    /// placement and instruction stream, precomputed at construction.
    /// The frontend uses it to recognise "the same loop again" in O(1)
    /// per iteration (LSD streak tracking, lock identity, memoized
    /// delivery plans).
    #[inline]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The blocks in execution order.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chain has no blocks (never true for constructed chains).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total µops per loop iteration (cached at construction).
    #[inline]
    pub fn total_uops(&self) -> u32 {
        self.total_uops
    }

    /// Total instructions per loop iteration.
    pub fn total_instructions(&self) -> usize {
        self.blocks.iter().map(Block::instr_count).sum()
    }

    /// Number of distinct 32-byte windows touched per iteration. This is the
    /// quantity the LSD tracking rule is phrased in (DESIGN.md): a loop
    /// qualifies only if its window count fits the LSD's capacity.
    pub fn window_count(&self) -> usize {
        self.blocks.iter().map(|b| b.windows().len()).sum()
    }

    /// Number of DSB lines needed per iteration.
    pub fn dsb_lines(&self, geom: &FrontendGeometry) -> usize {
        self.blocks.iter().map(|b| b.dsb_lines(geom)).sum()
    }

    /// Number of misaligned (window-crossing) blocks.
    pub fn misaligned_count(&self) -> usize {
        self.blocks.iter().filter(|b| !b.is_aligned()).count()
    }

    /// Concatenates two chains (used to combine aligned and misaligned
    /// sub-chains in the §IV-G experiments).
    pub fn concat(mut self, mut other: BlockChain) -> BlockChain {
        self.blocks.append(&mut other.blocks);
        self.refresh_cached();
        self
    }

    /// Splits off the first `n` blocks into a new chain, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `n >= self.len()` (both sides must remain
    /// non-empty).
    pub fn split_at(mut self, n: usize) -> (BlockChain, BlockChain) {
        assert!(
            n > 0 && n < self.blocks.len(),
            "split must leave both sides non-empty"
        );
        let tail = self.blocks.split_off(n);
        self.refresh_cached();
        (self, BlockChain::new(tail))
    }
}

impl FromIterator<Block> for BlockChain {
    fn from_iter<I: IntoIterator<Item = Block>>(iter: I) -> Self {
        BlockChain::new(iter.into_iter().collect())
    }
}

impl Extend<Block> for BlockChain {
    fn extend<I: IntoIterator<Item = Block>>(&mut self, iter: I) {
        self.blocks.extend(iter);
        self.refresh_cached();
    }
}

impl<'a> IntoIterator for &'a BlockChain {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

/// Builds the paper's canonical same-set chain: `count` instruction mix
/// blocks whose start addresses all map to `set`, spaced 1024 bytes apart so
/// they occupy distinct DSB windows (tags) and stride across L1I sets
/// (Fig. 3).
///
/// With [`Alignment::Misaligned`], every block is additionally offset by 16
/// bytes; its *first* window still maps to `set` but the block straddles two
/// windows (§IV-G).
///
/// # Examples
///
/// ```
/// use leaky_isa::{same_set_chain, Alignment, DsbSet};
///
/// let c = same_set_chain(0x0041_8000, DsbSet::new(4), 8, Alignment::Misaligned);
/// assert_eq!(c.misaligned_count(), 8);
/// assert_eq!(c.window_count(), 16);
/// ```
///
/// # Panics
///
/// Panics if the block count is zero or the set indexes beyond the
/// geometry's DSB sets (`same_set_chain_with`).
pub fn same_set_chain(
    region_base: u64,
    set: DsbSet,
    count: usize,
    alignment: Alignment,
) -> BlockChain {
    same_set_chain_with(
        region_base,
        set,
        count,
        alignment,
        &FrontendGeometry::skylake(),
    )
}

/// [`same_set_chain`] under an explicit geometry: block stride is one
/// full pass over `geom`'s DSB sets and misalignment is half a window,
/// so the layout stays a same-set chain on any profile whose window/set
/// parameters differ from Table I.
///
/// # Panics
///
/// Panics if `count` is zero or `set` indexes beyond `geom.dsb_sets`.
pub fn same_set_chain_with(
    region_base: u64,
    set: DsbSet,
    count: usize,
    alignment: Alignment,
    geom: &FrontendGeometry,
) -> BlockChain {
    assert!(count > 0, "chain needs at least one block");
    assert!(
        (set.index() as usize) < geom.dsb_sets,
        "set {set} out of range for a {}-set DSB",
        geom.dsb_sets
    );
    let start = Addr::new(region_base).align_up_to_set(set, geom);
    let stride = (geom.dsb_window_bytes * geom.dsb_sets) as u64; // 1024 B on Table I
    let mis = match alignment {
        Alignment::Aligned => 0,
        Alignment::Misaligned => geom.dsb_window_bytes as u64 / 2, // 16 B on Table I
    };
    (0..count as u64)
        .map(|i| Block::mix(start.offset(i * stride + mis)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u64 = 0x0041_8000;

    #[test]
    fn aligned_chain_all_same_set() {
        for set in [0u8, 13, 31] {
            let c = same_set_chain(BASE, DsbSet::new(set), 9, Alignment::Aligned);
            assert_eq!(c.len(), 9);
            for b in c.blocks() {
                assert_eq!(b.dsb_set().index(), set);
                assert!(b.is_aligned());
            }
            // Distinct windows (tags) for every block.
            let mut windows: Vec<u64> = c.blocks().iter().map(|b| b.base().window()).collect();
            windows.dedup();
            assert_eq!(windows.len(), 9);
        }
    }

    #[test]
    fn misaligned_chain_keeps_head_set() {
        let c = same_set_chain(BASE, DsbSet::new(7), 4, Alignment::Misaligned);
        for b in c.blocks() {
            assert_eq!(b.dsb_set().index(), 7);
            assert!(!b.is_aligned());
            assert_eq!(b.base().dsb_offset(), 16);
            assert_eq!(b.windows().len(), 2);
        }
    }

    #[test]
    fn paper_lsd_arithmetic_8_blocks_fit() {
        // Fig. 3: 8 x 5 = 40 µops < 64 LSD limit, 8 ways fit the set.
        let g = FrontendGeometry::skylake();
        let c = same_set_chain(BASE, DsbSet::new(0), 8, Alignment::Aligned);
        assert!(c.total_uops() as usize <= g.lsd_uops);
        assert_eq!(c.window_count(), 8);
        assert_eq!(c.dsb_lines(&g), 8);
    }

    #[test]
    fn nine_blocks_exceed_set_ways() {
        let g = FrontendGeometry::skylake();
        let c = same_set_chain(BASE, DsbSet::new(0), 9, Alignment::Aligned);
        assert!(c.dsb_lines(&g) > g.dsb_ways);
    }

    #[test]
    fn chain_l1i_footprint_stays_within_associativity() {
        // §IV-F: 9 same-DSB-set blocks cause no L1I conflicts.
        let c = same_set_chain(BASE, DsbSet::new(0), 9, Alignment::Aligned);
        let mut per_set = std::collections::HashMap::new();
        for b in c.blocks() {
            for line in b.cache_lines() {
                *per_set.entry(line & 0x3f).or_insert(0usize) += 1;
            }
        }
        for (&set, &n) in &per_set {
            assert!(n <= 8, "L1I set {set} holds {n} lines > 8 ways");
        }
    }

    #[test]
    fn concat_and_split() {
        let a = same_set_chain(BASE, DsbSet::new(0), 5, Alignment::Aligned);
        let b = same_set_chain(BASE + 64 * 1024, DsbSet::new(0), 3, Alignment::Misaligned);
        let joined = a.concat(b);
        assert_eq!(joined.len(), 8);
        assert_eq!(joined.misaligned_count(), 3);
        // §IV-G: {5 aligned + 3 misaligned} = 5 + 6 = 11 windows.
        assert_eq!(joined.window_count(), 11);
        let (head, tail) = joined.split_at(5);
        assert_eq!(head.len(), 5);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.misaligned_count(), 3);
    }

    #[test]
    fn chains_in_different_regions_do_not_overlap() {
        let a = same_set_chain(0x0041_8000, DsbSet::new(0), 9, Alignment::Aligned);
        let b = same_set_chain(0x0082_0000, DsbSet::new(0), 9, Alignment::Aligned);
        let a_end = a.blocks().last().unwrap().end();
        assert!(a_end.value() < 0x0082_0000);
        assert_eq!(b.blocks()[0].dsb_set(), a.blocks()[0].dsb_set());
        assert_ne!(b.blocks()[0].base().window(), a.blocks()[0].base().window());
    }

    #[test]
    fn chain_keys_track_structural_changes() {
        let a = same_set_chain(BASE, DsbSet::new(0), 5, Alignment::Aligned);
        let same = same_set_chain(BASE, DsbSet::new(0), 5, Alignment::Aligned);
        assert_eq!(a.key(), same.key());
        // Different length, alignment, or placement: different key.
        assert_ne!(
            a.key(),
            same_set_chain(BASE, DsbSet::new(0), 6, Alignment::Aligned).key()
        );
        assert_ne!(
            a.key(),
            same_set_chain(BASE, DsbSet::new(0), 5, Alignment::Misaligned).key()
        );
        // concat / split_at / extend keep key and µop totals current.
        let b = same_set_chain(BASE + 0x10_0000, DsbSet::new(0), 3, Alignment::Aligned);
        let joined = a.clone().concat(b.clone());
        assert_ne!(joined.key(), a.key());
        assert_eq!(joined.total_uops(), a.total_uops() + b.total_uops());
        let (head, tail) = joined.clone().split_at(5);
        assert_eq!(head.key(), a.key());
        assert_eq!(tail.key(), b.key());
        let mut grown = a.clone();
        grown.extend(b.blocks().to_vec());
        assert_eq!(grown.key(), joined.key());
        assert_eq!(grown.total_uops(), joined.total_uops());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn split_rejects_degenerate() {
        let c = same_set_chain(BASE, DsbSet::new(0), 3, Alignment::Aligned);
        let _ = c.split_at(3);
    }
}

//! Instruction model: opcodes, byte lengths, µop decomposition, prefixes and
//! execution-port affinity.

use std::fmt;

/// The instruction repertoire used by the paper's attack code.
///
/// Only the properties the frontend and a coarse backend observe are modeled:
/// encoded length, µop count, whether decoding is affected by a
/// Length-Changing Prefix, and which execution ports the µops can issue to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// `mov r32, imm32` — 5 bytes, 1 µop, any ALU port. The workhorse of the
    /// paper's instruction mix block (§IV-D).
    MovImm,
    /// `add r32, imm8` — 3 bytes, 1 µop. Used by the LCP experiments (§IV-H);
    /// with a 0x66 prefix it becomes `add r16, imm16` and its *immediate*
    /// changes size, triggering the pre-decoder's LCP stall.
    AddImm,
    /// `nop` — 1 byte, 1 µop, no backend traffic. Used by the §XI side
    /// channel receiver.
    Nop,
    /// `jmp rel32` — 5 bytes, 1 µop on port 6. Ends every mix block.
    Jmp,
    /// Conditional branch `jcc rel32` — 6 bytes, 1 µop. Used by loops and by
    /// the Spectre gadget.
    Jcc,
    /// `mov r64, [mem]` load — 4 bytes, 1 µop on a load port. Only used by
    /// victim/baseline code; the attacks deliberately avoid it (§IV-D).
    Load,
    /// `mov [mem], r64` store — 4 bytes, 2 µops (store-address +
    /// store-data).
    Store,
    /// `lea r64, [mem]` — 4 bytes, 1 µop.
    Lea,
    /// `rdtscp`-style timer read — 3 bytes, microcoded, 3 µops. Modeled so
    /// measurement overhead shows up in channel timing.
    Rdtscp,
    /// `lfence` serialising instruction — 3 bytes, 1 µop, drains the backend.
    Lfence,
    /// `clflush [mem]` — 4 bytes, 2 µops. Used by the Flush+Reload baselines.
    Clflush,
}

impl Opcode {
    /// Encoded length in bytes without a prefix.
    pub const fn base_length(self) -> u8 {
        match self {
            Opcode::MovImm => 5,
            Opcode::AddImm => 3,
            Opcode::Nop => 1,
            Opcode::Jmp => 5,
            Opcode::Jcc => 6,
            Opcode::Load => 4,
            Opcode::Store => 4,
            Opcode::Lea => 4,
            Opcode::Rdtscp => 3,
            Opcode::Lfence => 3,
            Opcode::Clflush => 4,
        }
    }

    /// Number of µops the instruction decodes into.
    pub const fn uops(self) -> u8 {
        match self {
            Opcode::MovImm
            | Opcode::AddImm
            | Opcode::Nop
            | Opcode::Jmp
            | Opcode::Jcc
            | Opcode::Load
            | Opcode::Lea
            | Opcode::Lfence => 1,
            Opcode::Store | Opcode::Clflush => 2,
            Opcode::Rdtscp => 3,
        }
    }

    /// Whether an operand-size (0x66) prefix on this opcode changes the
    /// instruction's *length* (a Length-Changing Prefix, §IV-H). Only
    /// immediate-carrying ALU ops qualify in our repertoire.
    pub const fn lcp_capable(self) -> bool {
        matches!(self, Opcode::AddImm | Opcode::MovImm)
    }

    /// Whether this is a control-flow instruction.
    pub const fn is_branch(self) -> bool {
        matches!(self, Opcode::Jmp | Opcode::Jcc)
    }

    /// Whether the instruction touches data memory. The paper's instruction
    /// mix deliberately avoids these (§IV-D) so the frontend is the
    /// bottleneck and no data-cache traces are left.
    pub const fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store | Opcode::Clflush)
    }

    /// Execution ports the instruction's primary µop can issue to
    /// (Skylake-style port map, Fig. 1).
    pub const fn port_mask(self) -> PortMask {
        match self {
            // ALU ops: ports 0, 1, 5, 6.
            Opcode::MovImm | Opcode::AddImm => PortMask::from_bits(0b0110_0011),
            // Nop is renamed away: no ports.
            Opcode::Nop => PortMask::from_bits(0),
            // Branches: port 6 (and 0 for not-taken Jcc).
            Opcode::Jmp => PortMask::from_bits(0b0100_0000),
            Opcode::Jcc => PortMask::from_bits(0b0100_0001),
            // Loads: ports 2, 3.
            Opcode::Load => PortMask::from_bits(0b0000_1100),
            // Store: store-data port 4 (the STA µop uses 2/3/7).
            Opcode::Store => PortMask::from_bits(0b1001_0000),
            Opcode::Lea => PortMask::from_bits(0b0010_0011),
            Opcode::Rdtscp => PortMask::from_bits(0b0000_0011),
            Opcode::Lfence => PortMask::from_bits(0b0010_0000),
            Opcode::Clflush => PortMask::from_bits(0b0000_1100),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::MovImm => "mov",
            Opcode::AddImm => "add",
            Opcode::Nop => "nop",
            Opcode::Jmp => "jmp",
            Opcode::Jcc => "jcc",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Lea => "lea",
            Opcode::Rdtscp => "rdtscp",
            Opcode::Lfence => "lfence",
            Opcode::Clflush => "clflush",
        };
        f.write_str(s)
    }
}

/// A set of execution ports (ports 0-7), used for the backend contention
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortMask(u8);

impl PortMask {
    /// Creates a mask from raw bits (bit *i* = port *i*).
    pub const fn from_bits(bits: u8) -> Self {
        PortMask(bits)
    }

    /// Raw bits of the mask.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether the mask contains `port`.
    pub const fn contains(self, port: u8) -> bool {
        port < 8 && (self.0 >> port) & 1 == 1
    }

    /// Number of ports in the mask.
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates over the port numbers in the mask.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0u8..8).filter(move |&p| self.contains(p))
    }
}

impl fmt::Binary for PortMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// One modeled instruction: an opcode plus an optional Length-Changing
/// Prefix.
///
/// # Examples
///
/// ```
/// use leaky_isa::{Instruction, Opcode};
///
/// let add = Instruction::new(Opcode::AddImm);
/// let lcp_add = Instruction::with_lcp(Opcode::AddImm);
/// assert_eq!(add.length(), 3);
/// assert_eq!(lcp_add.length(), 4); // 0x66 prefix + shrunken imm16 encoding
/// assert!(lcp_add.has_lcp());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    opcode: Opcode,
    lcp: bool,
}

impl Instruction {
    /// Creates an instruction without a prefix.
    pub const fn new(opcode: Opcode) -> Self {
        Instruction { opcode, lcp: false }
    }

    /// Creates an instruction carrying a Length-Changing Prefix (0x66).
    ///
    /// # Panics
    ///
    /// Panics if the opcode cannot take an LCP (see
    /// [`Opcode::lcp_capable`]).
    pub fn with_lcp(opcode: Opcode) -> Self {
        assert!(
            opcode.lcp_capable(),
            "{opcode} cannot carry a length-changing prefix"
        );
        Instruction { opcode, lcp: true }
    }

    /// The opcode.
    pub const fn opcode(self) -> Opcode {
        self.opcode
    }

    /// Whether the instruction carries a Length-Changing Prefix. LCP
    /// instructions force the MITE path and stall the pre-decoder (§IV-H).
    pub const fn has_lcp(self) -> bool {
        self.lcp
    }

    /// Encoded length in bytes. An LCP adds the prefix byte but shrinks the
    /// immediate from 4 to 2 bytes, netting one byte shorter for `mov` and
    /// one byte longer for `add` (imm8 → imm16).
    pub const fn length(self) -> u8 {
        let base = self.opcode.base_length();
        if self.lcp {
            match self.opcode {
                Opcode::MovImm => base - 1, // 66 B8 imm16 = 4 bytes
                Opcode::AddImm => base + 1, // 66 83/0 ib -> 66 05 imm16 = 4
                _ => base,
            }
        } else {
            base
        }
    }

    /// µop count (unchanged by prefixes).
    pub const fn uops(self) -> u8 {
        self.opcode.uops()
    }

    /// Execution-port affinity.
    pub const fn port_mask(self) -> PortMask {
        self.opcode.port_mask()
    }
}

impl From<Opcode> for Instruction {
    fn from(op: Opcode) -> Self {
        Instruction::new(op)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lcp {
            write!(f, "66:{}", self.opcode)
        } else {
            write!(f, "{}", self.opcode)
        }
    }
}

/// How normal and LCP-prefixed instructions are interleaved in the §IV-H
/// experiments and the slow-switch covert channel (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LcpPattern {
    /// One normal `add` followed by one LCP `add`, repeated (the paper's
    /// "mixed issue"). Maximises DSB↔MITE switches.
    Mixed,
    /// All normal `add`s first, then all LCP `add`s (the paper's "ordered
    /// issue"). Minimises switches but serialises LCP decode stalls.
    Ordered,
}

impl fmt::Display for LcpPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcpPattern::Mixed => f.write_str("mixed"),
            LcpPattern::Ordered => f.write_str("ordered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_block_ingredients_match_paper() {
        // §IV-D: 4 mov + 1 jmp = 25 bytes, 5 µops.
        let bytes = 4 * Instruction::new(Opcode::MovImm).length() as usize
            + Instruction::new(Opcode::Jmp).length() as usize;
        let uops = 4 * Opcode::MovImm.uops() as usize + Opcode::Jmp.uops() as usize;
        assert_eq!(bytes, 25);
        assert_eq!(uops, 5);
    }

    #[test]
    fn lcp_changes_length() {
        let normal = Instruction::new(Opcode::AddImm);
        let lcp = Instruction::with_lcp(Opcode::AddImm);
        assert_ne!(normal.length(), lcp.length());
        assert_eq!(normal.uops(), lcp.uops());
    }

    #[test]
    #[should_panic(expected = "cannot carry")]
    fn lcp_on_nop_rejected() {
        let _ = Instruction::with_lcp(Opcode::Nop);
    }

    #[test]
    fn memory_ops_flagged() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::MovImm.is_memory());
        assert!(!Opcode::Nop.is_memory());
    }

    #[test]
    fn branches_flagged() {
        assert!(Opcode::Jmp.is_branch());
        assert!(Opcode::Jcc.is_branch());
        assert!(!Opcode::AddImm.is_branch());
    }

    #[test]
    fn port_masks_avoid_overlap_with_memory_for_alu() {
        // §IV-D requirement 3: the mix block avoids load/store ports.
        let alu = Opcode::MovImm.port_mask();
        for p in [2u8, 3, 4, 7] {
            assert!(!alu.contains(p), "ALU mov should not use memory port {p}");
        }
        assert!(alu.count() >= 3, "movs must spread over several ports");
    }

    #[test]
    fn port_mask_iter_roundtrip() {
        let m = PortMask::from_bits(0b0100_0101);
        let ports: Vec<u8> = m.iter().collect();
        assert_eq!(ports, vec![0, 2, 6]);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn nop_uses_no_ports() {
        assert_eq!(Opcode::Nop.port_mask().count(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instruction::new(Opcode::MovImm).to_string(), "mov");
        assert_eq!(Instruction::with_lcp(Opcode::AddImm).to_string(), "66:add");
        assert_eq!(LcpPattern::Mixed.to_string(), "mixed");
    }
}

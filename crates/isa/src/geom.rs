//! Frontend geometry constants reverse-engineered by the paper (§IV, Table I).

/// Geometry of the frontend structures on the modeled Skylake-family cores.
///
/// All four CPUs evaluated in the paper share these parameters (Table I);
/// they are grouped in a struct so experiments can perturb them for
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrontendGeometry {
    /// Number of DSB sets (paper §IV-B: 32).
    pub dsb_sets: usize,
    /// Number of DSB ways per set (paper §IV-B: 8).
    pub dsb_ways: usize,
    /// Bytes covered by one DSB window / line (paper §IV-B: 32).
    pub dsb_window_bytes: usize,
    /// Maximum µops stored per DSB line (paper §IV-B: 6).
    pub dsb_line_uops: usize,
    /// Maximum µops the LSD can stream (paper §IV-A: 64).
    pub lsd_uops: usize,
    /// Maximum 32-byte windows a LSD-resident loop may span (fitted to the
    /// §IV-G misalignment data; see DESIGN.md).
    pub lsd_windows: usize,
    /// L1 instruction cache sets (Table I: 64).
    pub l1i_sets: usize,
    /// L1 instruction cache ways (Table I: 8).
    pub l1i_ways: usize,
    /// L1 instruction cache line size in bytes (Table I: 64).
    pub l1i_line_bytes: usize,
    /// Instruction queue entries feeding the decoders (§IV-C: 50).
    pub iq_entries: usize,
    /// Legacy decode width: one complex + four simple decoders (§IV, Fig. 1).
    pub decode_width: usize,
    /// µops deliverable per cycle from the IDQ to rename (Fig. 1: 6).
    pub idq_delivery_width: usize,
}

impl FrontendGeometry {
    /// The Skylake-family geometry shared by every CPU in the paper's
    /// Table I.
    pub const fn skylake() -> Self {
        FrontendGeometry {
            dsb_sets: 32,
            dsb_ways: 8,
            dsb_window_bytes: 32,
            dsb_line_uops: 6,
            lsd_uops: 64,
            lsd_windows: 8,
            l1i_sets: 64,
            l1i_ways: 8,
            l1i_line_bytes: 64,
            iq_entries: 50,
            decode_width: 5,
            idq_delivery_width: 6,
        }
    }

    /// Total µop capacity of the DSB (paper: 32 × 8 × 6 = 1536).
    pub const fn dsb_capacity_uops(&self) -> usize {
        self.dsb_sets * self.dsb_ways * self.dsb_line_uops
    }

    /// Total L1I capacity in bytes (Table I: 32 KB).
    pub const fn l1i_capacity_bytes(&self) -> usize {
        self.l1i_sets * self.l1i_ways * self.l1i_line_bytes
    }
}

impl Default for FrontendGeometry {
    fn default() -> Self {
        Self::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_paper_table1() {
        let g = FrontendGeometry::skylake();
        assert_eq!(g.dsb_sets, 32);
        assert_eq!(g.dsb_ways, 8);
        assert_eq!(g.dsb_window_bytes, 32);
        assert_eq!(g.dsb_line_uops, 6);
        assert_eq!(g.lsd_uops, 64);
        assert_eq!(g.dsb_capacity_uops(), 1536);
        assert_eq!(g.l1i_capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn l1i_is_four_times_dsb_footprint() {
        // Paper §IV-F: "the size of the L1 instruction is 4 times of DSB".
        let g = FrontendGeometry::skylake();
        let dsb_bytes = g.dsb_sets * g.dsb_ways * g.dsb_window_bytes;
        assert_eq!(g.l1i_capacity_bytes(), 4 * dsb_bytes);
    }
}

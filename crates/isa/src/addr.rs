//! Virtual addresses and their frontend-relevant decompositions.
//!
//! The paper reverse-engineers (§IV-B) that with a single active thread, an
//! instruction's virtual address bits `addr[4:0]` form the byte offset within
//! the 32-byte DSB window and `addr[9:5]` select one of the 32 DSB sets.
//! L1I indexing uses 64-byte lines over 64 sets (`addr[5:0]` offset,
//! `addr[11:6]` set).

use std::fmt;

use crate::geom::FrontendGeometry;

/// A code virtual address.
///
/// A thin newtype over `u64` providing the frontend-relevant bit-field
/// accessors from the paper's reverse engineering.
///
/// # Examples
///
/// ```
/// use leaky_isa::{Addr, DsbSet};
///
/// let a = Addr::new(0x0041_8064);
/// assert_eq!(a.dsb_offset(), 0x04);
/// assert_eq!(a.dsb_set(), DsbSet::new(3));
/// assert_eq!(a.window(), 0x0041_8064 >> 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw virtual address.
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// The raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Byte offset inside the 32-byte DSB window (`addr[4:0]`, §IV-B).
    pub const fn dsb_offset(self) -> u64 {
        self.0 & 0x1f
    }

    /// DSB set index (`addr[9:5]`, §IV-B) for the single-thread, unpartitioned
    /// case.
    pub const fn dsb_set(self) -> DsbSet {
        DsbSet(((self.0 >> 5) & 0x1f) as u8)
    }

    /// The 32-byte window number (`addr >> 5`); two instructions share a DSB
    /// line only if they share a window.
    pub const fn window(self) -> u64 {
        self.0 >> 5
    }

    /// L1I cache set index (`addr[11:6]` for 64 sets of 64-byte lines).
    pub const fn l1i_set(self) -> u64 {
        (self.0 >> 6) & 0x3f
    }

    /// The 64-byte cache-line number (`addr >> 6`).
    pub const fn cache_line(self) -> u64 {
        self.0 >> 6
    }

    /// Whether the address is aligned to the start of a 32-byte DSB window.
    pub const fn is_window_aligned(self) -> bool {
        self.dsb_offset() == 0
    }

    /// Adds a byte displacement.
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Byte distance to another (higher) address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other < self`.
    pub fn distance_to(self, other: Addr) -> u64 {
        debug_assert!(other.0 >= self.0, "distance_to: other address is lower");
        other.0 - self.0
    }

    /// The lowest address `>= self` that maps to `set`, keeping offset 0.
    pub fn align_up_to_set(self, set: DsbSet, geom: &FrontendGeometry) -> Addr {
        let window_bytes = geom.dsb_window_bytes as u64;
        let sets = geom.dsb_sets as u64;
        let period = window_bytes * sets; // 1024 B: one full pass over all sets
        let base = self.0 / period * period + set.index() as u64 * window_bytes;
        if base >= self.0 {
            Addr(base)
        } else {
            Addr(base + period)
        }
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A DSB set index in `0..32`.
///
/// Newtype so attack parameters cannot confuse set indices with way counts or
/// block counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DsbSet(u8);

impl DsbSet {
    /// Creates a set index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "DSB set index must be < 32, got {index}");
        DsbSet(index)
    }

    /// The raw index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Iterates over all 32 sets.
    pub fn all() -> impl Iterator<Item = DsbSet> {
        (0u8..32).map(DsbSet)
    }
}

impl fmt::Display for DsbSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitfields_match_paper() {
        // Figure 3 example addresses: 0x0041_8000 etc. map to set 0.
        let a = Addr::new(0x0041_8000);
        assert_eq!(a.dsb_offset(), 0);
        assert_eq!(a.dsb_set().index(), 0);
        // 0x0041_8020 is the next window: set 1.
        assert_eq!(Addr::new(0x0041_8020).dsb_set().index(), 1);
        // +1024 wraps back to the same set with a different tag/window.
        assert_eq!(Addr::new(0x0041_8400).dsb_set().index(), 0);
        assert_ne!(Addr::new(0x0041_8400).window(), a.window());
    }

    #[test]
    fn misaligned_by_16_keeps_set_but_not_alignment() {
        let aligned = Addr::new(0x0041_8000);
        let mis = aligned.offset(16);
        assert!(aligned.is_window_aligned());
        assert!(!mis.is_window_aligned());
        assert_eq!(mis.dsb_set(), aligned.dsb_set());
        assert_eq!(mis.dsb_offset(), 16);
    }

    #[test]
    fn same_dsb_set_blocks_hit_different_l1i_sets() {
        // Paper §IV-F: blocks 1024 B apart share a DSB set but stride through
        // L1I sets with period 4, so 9 chained blocks never exceed L1I
        // associativity.
        let base = Addr::new(0x0041_8000);
        let l1i_sets: Vec<u64> = (0..9).map(|i| base.offset(i * 1024).l1i_set()).collect();
        for s in 0..64 {
            let count = l1i_sets.iter().filter(|&&x| x == s).count();
            assert!(count <= 3, "L1I set {s} has {count} blocks");
        }
    }

    #[test]
    fn align_up_to_set_lands_on_requested_set() {
        let g = FrontendGeometry::skylake();
        for start in [0u64, 0x0041_8013, 0x0082_0000, 0xffff_0301] {
            for set in [0u8, 7, 31] {
                let a = Addr::new(start).align_up_to_set(DsbSet::new(set), &g);
                assert_eq!(a.dsb_set().index(), set);
                assert!(a.is_window_aligned());
                assert!(a.value() >= start);
                assert!(a.value() - start < 2048);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be < 32")]
    fn set_index_bounds_checked() {
        let _ = DsbSet::new(32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x41_8000).to_string(), "0x00418000");
        assert_eq!(DsbSet::new(5).to_string(), "set5");
    }
}

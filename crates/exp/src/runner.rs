//! Experiment specs, fault-tolerant sweep execution, and the registry.

use crate::fault::{FaultKind, FaultPlan};
use crate::grid::{JobCell, ParamGrid};
use crate::pool::{panic_message, run_ordered_observed, Flow};
use leaky_frontends::run::Provenance;
use leaky_stats::summary::merge_ordered;
use leaky_stats::OnlineStats;
use leaky_store::{
    Lookup, ResultStore, StoreError, StoreStats, StoredMetric, StoredOutcome, StoredProvenance,
};
use leaky_trace::{Telemetry, TraceMode};
use leaky_uarch::Fnv1a;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One named measurement produced by a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (table column / JSON key). Owned, so a cached
    /// cell loaded from the result store carries it unchanged.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

impl Metric {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
        }
    }
}

/// Owned channel provenance, as the sweep layer persists and renders it:
/// the strings of [`Provenance`], decoupled from the channel registry's
/// `&'static` lifetimes so store round-trips are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellProvenance {
    /// Registry name of the channel that transmitted.
    pub channel: String,
    /// Microarchitecture profile key the channel was built under.
    pub profile: String,
    /// Rendered §V parameter string.
    pub params: String,
}

impl From<&Provenance> for CellProvenance {
    fn from(p: &Provenance) -> Self {
        CellProvenance {
            channel: p.channel.to_string(),
            profile: p.profile.to_string(),
            params: p.params.to_string(),
        }
    }
}

/// Everything one cell measured: metric values plus (for channel sweeps)
/// the provenance of the transmission that produced them, which the JSON
/// rendering surfaces so a result row is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMeasurement {
    /// Named metric values (table columns / JSON keys).
    pub metrics: Vec<Metric>,
    /// Channel provenance, when the cell ran a covert channel.
    pub provenance: Option<CellProvenance>,
    /// Trace telemetry, when the sweep ran with tracing on and the spec
    /// implements [`Experiment::run_cell_traced`]. A pure function of
    /// the cell's content, like the metrics — never of scheduling.
    /// Boxed so the common untraced measurement stays small.
    pub telemetry: Option<Box<Telemetry>>,
}

impl CellMeasurement {
    /// Bundles metrics with the provenance a [`ChannelRun`] carries.
    ///
    /// [`ChannelRun`]: leaky_frontends::run::ChannelRun
    pub fn with_provenance(metrics: Vec<Metric>, provenance: Option<Provenance>) -> Self {
        CellMeasurement {
            metrics,
            provenance: provenance.as_ref().map(CellProvenance::from),
            telemetry: None,
        }
    }

    /// Attaches trace telemetry (builder style).
    pub fn with_telemetry(mut self, telemetry: Option<Telemetry>) -> Self {
        self.telemetry = telemetry.map(Box::new);
        self
    }
}

impl From<Vec<Metric>> for CellMeasurement {
    fn from(metrics: Vec<Metric>) -> Self {
        CellMeasurement {
            metrics,
            provenance: None,
            telemetry: None,
        }
    }
}

/// A declarative experiment: a grid plus a per-cell measurement.
///
/// Implementations must be pure in the cell: `run_cell` may not depend
/// on which other cells ran, in what order, or on which thread — that is
/// what makes `--jobs N` bit-identical. Cells needing randomness take it
/// from [`crate::seed::cell_rng`] (or a spec-pinned legacy seed, for
/// sweeps whose committed outputs predate this subsystem).
pub trait Experiment: Sync {
    /// Registry name (also the CLI filter argument), e.g. `"fig8_d_sweep"`.
    fn name(&self) -> &'static str;

    /// One-line human description (CLI `--list`, table headers).
    fn title(&self) -> &'static str;

    /// The parameter grid; `quick` selects a cheaper variant of the same
    /// sweep for CI smoke runs (typically fewer message bits).
    fn grid(&self, quick: bool) -> ParamGrid;

    /// Measures one cell. `None` marks a structurally unsupported cell
    /// (e.g. an SMT channel on a machine with SMT disabled) — it stays in
    /// the output as a gap but contributes nothing to summaries. Plain
    /// metric vectors convert via `Into`; channel sweeps attach
    /// provenance with [`CellMeasurement::with_provenance`].
    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement>;

    /// Measures one cell with tracing. The default ignores the mode and
    /// delegates to [`Experiment::run_cell`], so untraced specs work
    /// unchanged under `--trace` (their cells simply carry no
    /// telemetry). Implementations must keep the metrics bit-identical
    /// to the untraced path — tracing is observability, never behavior —
    /// and attach the hook's telemetry via
    /// [`CellMeasurement::with_telemetry`].
    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let _ = trace;
        self.run_cell(cell)
    }

    /// Version of this spec's *measurement code*. The result store keys
    /// entries by `(content key, code fingerprint)` and the fingerprint
    /// folds this in — bump it whenever `run_cell`'s semantics change,
    /// and every cached cell of this experiment (and only this
    /// experiment) is invalidated on the next resumed sweep.
    fn code_version(&self) -> u32 {
        1
    }
}

/// The fingerprint cached results are keyed under: entry-format version,
/// workspace version, experiment name and the spec's own
/// [`Experiment::code_version`], condensed through the workspace FNV-1a.
/// The `LEAKY_STORE_EPOCH` environment variable, when set, is folded in
/// too — tests and operators use it to force a cold store without
/// recompiling or deleting anything.
pub fn code_fingerprint(exp: &dyn Experiment) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(leaky_store::FORMAT_VERSION.as_bytes());
    h.write_bytes(env!("CARGO_PKG_VERSION").as_bytes());
    h.write_bytes(exp.name().as_bytes());
    h.write_u64(exp.code_version() as u64);
    if let Ok(epoch) = std::env::var("LEAKY_STORE_EPOCH") {
        h.write_bytes(epoch.as_bytes());
    }
    h.finish()
}

/// How one cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell measured successfully.
    Measured(CellMeasurement),
    /// The cell is structurally unsupported on this configuration (the
    /// paper's missing MT columns); a gap, not an error.
    Unsupported,
    /// Every attempt of the cell panicked or errored. The sweep keeps
    /// going; the failure becomes a row (excluded from summaries, like
    /// unsupported cells) instead of killing the run.
    Failed {
        /// The final attempt's panic/error message.
        message: String,
        /// How many attempts were made (1 + retries).
        attempts: u32,
    },
}

/// The outcome of one cell: its coordinates plus how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: JobCell,
    /// How it ended.
    pub outcome: CellOutcome,
}

impl CellResult {
    /// The measured metrics, if the cell measured.
    pub fn metrics(&self) -> Option<&[Metric]> {
        match &self.outcome {
            CellOutcome::Measured(m) => Some(&m.metrics),
            _ => None,
        }
    }

    /// Channel provenance, when the cell's measurement attached any.
    pub fn provenance(&self) -> Option<&CellProvenance> {
        match &self.outcome {
            CellOutcome::Measured(m) => m.provenance.as_ref(),
            _ => None,
        }
    }

    /// Trace telemetry, when the cell ran traced.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        match &self.outcome {
            CellOutcome::Measured(m) => m.telemetry.as_deref(),
            _ => None,
        }
    }

    /// Looks up a metric value by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics()?
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// The failure message and attempt count, if the cell failed.
    pub fn failure(&self) -> Option<(&str, u32)> {
        match &self.outcome {
            CellOutcome::Failed { message, attempts } => Some((message.as_str(), *attempts)),
            _ => None,
        }
    }
}

/// A completed sweep: ordered cell results plus per-metric summaries.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Experiment name.
    pub name: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// Whether the quick grid was used.
    pub quick: bool,
    /// Worker threads the sweep ran on (affects wall time only).
    pub jobs: usize,
    /// Cell results, in grid order.
    pub cells: Vec<CellResult>,
    /// Per-metric Welford summaries over all measured cells, keyed by
    /// metric name in first-appearance order. Built by merging per-cell
    /// accumulators in grid order (`merge_ordered`), so they are
    /// bit-identical at any `jobs`.
    pub summaries: Vec<(String, OnlineStats)>,
    /// Store traffic of this run, when it ran against a result store.
    /// Operator telemetry (stderr), never part of deterministic output.
    pub store_stats: Option<StoreStats>,
    /// Wall-clock nanoseconds of the execution phase. Excluded from all
    /// deterministic renderings; `perf_report`'s sweep-throughput
    /// metrics aggregate it via `leaky_bench::sweep::quick_sweep_throughput`.
    pub elapsed_ns: u128,
}

impl SweepRun {
    /// Number of cells that failed every attempt.
    pub fn failed_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Failed { .. }))
            .count()
    }
}

/// Everything configurable about one sweep execution. `Default` is the
/// plain path: full grid, one worker, no retries, no store, no faults.
#[derive(Debug, Default)]
pub struct RunConfig<'s> {
    /// Use the quick (CI smoke) grid.
    pub quick: bool,
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Extra attempts for a panicked/errored cell, each re-seeded by
    /// folding the attempt index into the cell stream
    /// ([`crate::seed::attempt_seed`]).
    pub retries: u32,
    /// Serve cells from the store when a valid entry exists (otherwise
    /// the store, if any, is write-through only).
    pub resume: bool,
    /// The result store to persist into / resume from.
    pub store: Option<&'s ResultStore>,
    /// Deterministic fault injection (tests and drills; empty in
    /// production).
    pub faults: FaultPlan,
    /// Trace level passed to [`Experiment::run_cell_traced`]
    /// (`TraceMode::Off`, the default, uses the plain `run_cell` path).
    pub trace: TraceMode,
}

/// Why a sweep did not complete. Cell failures are *not* errors — they
/// become [`CellOutcome::Failed`] rows; this type covers the sweep-level
/// stops.
#[derive(Debug)]
pub enum SweepError {
    /// A planned [`FaultKind::Abort`] stopped the sweep mid-grid (the
    /// kill-and-resume drill). Cells completed before the stop were
    /// already persisted if a store was attached.
    Aborted {
        /// Content key of the cell whose dispatch stopped the sweep.
        key: String,
    },
    /// The result store failed with a real I/O error.
    Store(StoreError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Aborted { key } => {
                write!(f, "sweep aborted by fault plan at cell {key:?}")
            }
            SweepError::Store(e) => write!(f, "result store: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

fn to_stored(outcome: &CellOutcome) -> Option<StoredOutcome> {
    match outcome {
        CellOutcome::Measured(m) => Some(StoredOutcome::Measured {
            metrics: m
                .metrics
                .iter()
                .map(|m| StoredMetric {
                    name: m.name.clone(),
                    value: m.value,
                })
                .collect(),
            provenance: m.provenance.as_ref().map(|p| StoredProvenance {
                channel: p.channel.clone(),
                profile: p.profile.clone(),
                params: p.params.clone(),
            }),
            telemetry: m.telemetry.clone(),
        }),
        CellOutcome::Unsupported => Some(StoredOutcome::Unsupported),
        // Failures are never cached: the next run must retry, not
        // resurrect a dead cell from disk.
        CellOutcome::Failed { .. } => None,
    }
}

fn from_stored(stored: StoredOutcome) -> CellOutcome {
    match stored {
        StoredOutcome::Measured {
            metrics,
            provenance,
            telemetry,
        } => CellOutcome::Measured(CellMeasurement {
            metrics: metrics
                .into_iter()
                .map(|m| Metric {
                    name: m.name,
                    value: m.value,
                })
                .collect(),
            provenance: provenance.map(|p| CellProvenance {
                channel: p.channel,
                profile: p.profile,
                params: p.params,
            }),
            telemetry,
        }),
        StoredOutcome::Unsupported => CellOutcome::Unsupported,
    }
}

/// Whether a stored hit can serve the sweep's trace mode. An untraced
/// sweep accepts any entry (extra telemetry is stripped); a traced sweep
/// accepts only entries whose persisted telemetry was captured in the
/// *same* mode — anything else recomputes, and the write-through put
/// upgrades the entry. Unsupported cells carry no telemetry by nature
/// and always serve.
fn hit_serves_trace(stored: &StoredOutcome, trace: TraceMode) -> bool {
    match stored {
        StoredOutcome::Unsupported => true,
        StoredOutcome::Measured { telemetry, .. } => match trace {
            TraceMode::Off => true,
            mode => telemetry.as_ref().is_some_and(|t| t.mode == mode),
        },
    }
}

/// What a worker hands back for one cell.
enum Computed {
    /// The cell finished with an outcome (`cached` when it was served
    /// from the store without recomputation).
    Done { outcome: CellOutcome, cached: bool },
    /// The cell carries a planned abort: stop the sweep.
    Abort,
}

/// Expands, executes, collects, and summarizes one experiment under the
/// given configuration.
///
/// Fault tolerance, in dispatch order per cell: a valid store entry
/// (under [`code_fingerprint`]) short-circuits the cell entirely;
/// otherwise up to `1 + retries` attempts run, each wrapped in
/// `catch_unwind` with the attempt index folded into the cell's RNG
/// stream, and a cell that exhausts its attempts becomes a
/// [`CellOutcome::Failed`] row rather than killing the sweep. Freshly
/// computed outcomes are written through to the store *as they
/// complete*, so even a sweep that later aborts resumes for free.
///
/// # Panics
///
/// Panics if a cell's channel spec violates the §V constraints
/// (`ChannelSpec::build`).
pub fn run_experiment_with(
    exp: &dyn Experiment,
    cfg: &RunConfig<'_>,
) -> Result<SweepRun, SweepError> {
    let cells = exp.grid(cfg.quick).expand();
    let fingerprint = code_fingerprint(exp);
    let mut stats = cfg.store.map(|_| StoreStats::default());

    // Resume phase: consult the store for every cell up front (cheap
    // reads, deterministic order), so the pool only sees real work.
    let mut cached_outcomes: Vec<Option<CellOutcome>> = (0..cells.len()).map(|_| None).collect();
    if let (Some(store), Some(stats), true) = (cfg.store, stats.as_mut(), cfg.resume) {
        for (cell, slot) in cells.iter().zip(&mut cached_outcomes) {
            match store
                .get(&cell.key, fingerprint)
                .map_err(SweepError::Store)?
            {
                Lookup::Hit(stored) => {
                    if hit_serves_trace(&stored, cfg.trace) {
                        stats.hits += 1;
                        let mut outcome = from_stored(stored);
                        if cfg.trace == TraceMode::Off {
                            // A traced entry serves an untraced sweep,
                            // minus the telemetry it didn't ask for.
                            if let CellOutcome::Measured(m) = &mut outcome {
                                m.telemetry = None;
                            }
                        }
                        *slot = Some(outcome);
                    } else {
                        // Cached without (or under a different) trace
                        // mode: the entry cannot supply the telemetry
                        // this sweep wants, so recompute it.
                        stats.misses += 1;
                    }
                }
                Lookup::Miss => stats.misses += 1,
                Lookup::Stale => stats.stale += 1,
                Lookup::Quarantined => stats.quarantined += 1,
            }
        }
    }

    // lint: allow(wall-clock) — elapsed_ns is operator telemetry only;
    // renderers and content keys never consume it.
    let start = Instant::now();

    let worker = |i: usize| -> Computed {
        if let Some(outcome) = &cached_outcomes[i] {
            return Computed::Done {
                outcome: outcome.clone(),
                cached: true,
            };
        }
        let cell = &cells[i];
        let fault = cfg.faults.get(&cell.key);
        if fault.map(|f| f.kind) == Some(FaultKind::Abort) {
            return Computed::Abort;
        }
        let attempts = cfg.retries.saturating_add(1);
        let mut last_message = String::new();
        for attempt in 0..attempts {
            let injected = fault.filter(|f| attempt < f.attempts).map(|f| f.kind);
            if injected == Some(FaultKind::Error) {
                last_message = format!("injected error on {} (attempt {attempt})", cell.key);
                continue;
            }
            let attempt_cell = cell.with_attempt(attempt);
            let ran = catch_unwind(AssertUnwindSafe(|| {
                if injected == Some(FaultKind::Panic) {
                    // lint: allow(panic-path) — deliberate fault injection;
                    // the surrounding catch_unwind is the system under test.
                    panic!("injected panic on {} (attempt {attempt})", attempt_cell.key);
                }
                if cfg.trace == TraceMode::Off {
                    exp.run_cell(&attempt_cell)
                } else {
                    exp.run_cell_traced(&attempt_cell, cfg.trace)
                }
            }));
            match ran {
                Ok(Some(m)) => {
                    return Computed::Done {
                        outcome: CellOutcome::Measured(m),
                        cached: false,
                    }
                }
                Ok(None) => {
                    return Computed::Done {
                        outcome: CellOutcome::Unsupported,
                        cached: false,
                    }
                }
                Err(payload) => last_message = panic_message(payload).message,
            }
        }
        Computed::Done {
            outcome: CellOutcome::Failed {
                message: last_message,
                attempts,
            },
            cached: false,
        }
    };

    // Collection: write-through persistence happens here, on the caller
    // thread, as completions arrive — so a later crash or abort loses
    // nothing that already finished.
    let mut store_error: Option<StoreError> = None;
    let mut aborted: Option<String> = None;
    let pool_run = run_ordered_observed(cfg.jobs.max(1), cells.len(), worker, |i, result| {
        let Ok(computed) = result else {
            return Flow::Continue;
        };
        match computed {
            Computed::Abort => {
                aborted = Some(cells[i].key.clone());
                Flow::Stop
            }
            Computed::Done { outcome, cached } => {
                let (Some(store), false) = (cfg.store, *cached) else {
                    return Flow::Continue;
                };
                let Some(stored) = to_stored(outcome) else {
                    return Flow::Continue;
                };
                match store.put(&cells[i].key, fingerprint, &stored) {
                    Ok(()) => {
                        if let Some(s) = stats.as_mut() {
                            s.writes += 1;
                        }
                        // A planned corruption damages the entry we just
                        // wrote, so the *next* resumed run exercises
                        // quarantine + selective recompute.
                        if cfg.faults.get(&cells[i].key).map(|f| f.kind) == Some(FaultKind::Corrupt)
                        {
                            if let Err(e) = store.corrupt_entry(&cells[i].key) {
                                store_error = Some(e);
                                return Flow::Stop;
                            }
                        }
                        Flow::Continue
                    }
                    Err(e) => {
                        store_error = Some(e);
                        Flow::Stop
                    }
                }
            }
        }
    });
    let elapsed_ns = start.elapsed().as_nanos();

    if let Some(e) = store_error {
        return Err(SweepError::Store(e));
    }
    if let Some(key) = aborted {
        return Err(SweepError::Aborted { key });
    }

    let results: Vec<CellResult> = cells
        .into_iter()
        .zip(pool_run.slots)
        .map(|(cell, slot)| {
            let outcome = match slot {
                Some(Ok(Computed::Done { outcome, .. })) => outcome,
                // A panic that somehow escaped the per-attempt catch
                // (defensive: the pool's own isolation caught it).
                Some(Err(p)) => CellOutcome::Failed {
                    message: p.message,
                    attempts: cfg.retries.saturating_add(1),
                },
                // Only reachable if the pool stopped without an abort or
                // store error, which the branches above already returned
                // on — keep the row total anyway.
                Some(Ok(Computed::Abort)) | None => CellOutcome::Failed {
                    message: "cell never ran (sweep stopped early)".to_string(),
                    attempts: 0,
                },
            };
            CellResult { cell, outcome }
        })
        .collect();

    // Summaries: one single-sample Welford accumulator per (cell, metric),
    // merged strictly in grid order. The grouping of merges is part of the
    // bit-identical contract (f64 addition is not associative), which is
    // why this happens after ordered collection, not inside the workers.
    // Failed cells contribute nothing, exactly like unsupported ones.
    let mut names: Vec<String> = Vec::new();
    for r in &results {
        for m in r.metrics().into_iter().flatten() {
            if !names.contains(&m.name) {
                names.push(m.name.clone());
            }
        }
    }
    let summaries = names
        .into_iter()
        .map(|name| {
            let stats = merge_ordered(
                results
                    .iter()
                    .filter_map(|r| r.metric(&name).map(|v| OnlineStats::from_iter([v]))),
            );
            (name, stats)
        })
        .collect();

    Ok(SweepRun {
        name: exp.name(),
        title: exp.title(),
        quick: cfg.quick,
        jobs: cfg.jobs.max(1),
        cells: results,
        summaries,
        store_stats: stats,
        elapsed_ns,
    })
}

/// Expands, executes, collects, and summarizes one experiment on the
/// plain path: no store, no faults, no retries.
///
/// # Panics
///
/// Panics if a cell's channel spec violates the §V constraints
/// (`ChannelSpec::build`).
pub fn run_experiment(exp: &dyn Experiment, quick: bool, jobs: usize) -> SweepRun {
    let cfg = RunConfig {
        quick,
        jobs,
        ..RunConfig::default()
    };
    match run_experiment_with(exp, &cfg) {
        Ok(run) => run,
        // With no store and no fault plan, neither sweep-level error
        // source exists.
        Err(e) => unreachable!("fault-free sweep failed: {e}"),
    }
}

/// A registration clash: two experiments answering to one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateExperiment {
    /// The contested name.
    pub name: &'static str,
}

impl fmt::Display for DuplicateExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "duplicate experiment {:?}: two specs answering to one CLI filter would make \
             \"which sweep ran?\" ambiguous",
            self.name
        )
    }
}

impl std::error::Error for DuplicateExperiment {}

/// The set of registered experiments, looked up by name.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Builds a registry from experiments, rejecting duplicates as a
    /// value — the path for dynamically assembled registries (config
    /// files, tests, future scenario bundles).
    pub fn from_experiments(
        exps: impl IntoIterator<Item = Box<dyn Experiment>>,
    ) -> Result<Registry, DuplicateExperiment> {
        let mut reg = Registry::new();
        for exp in exps {
            reg.try_register(exp)?;
        }
        Ok(reg)
    }

    /// Adds an experiment, rejecting a duplicate name as a value.
    pub fn try_register(&mut self, exp: Box<dyn Experiment>) -> Result<(), DuplicateExperiment> {
        if self.get(exp.name()).is_some() {
            return Err(DuplicateExperiment { name: exp.name() });
        }
        self.entries.push(exp);
        Ok(())
    }

    /// Adds an experiment.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name. This is the *static registration*
    /// variant for compiled-in specs (`standard_registry`), where a
    /// duplicate is a code bug caught by the first test that builds the
    /// registry; fallible callers use [`try_register`](Self::try_register).
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        // Static registration of compiled-in specs; dynamic paths use
        // try_register.
        self.try_register(exp).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Looks up an experiment by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
    }

    /// All experiments, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.entries.iter().map(|e| e.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultKind};
    use crate::seed::cell_rng;
    use rand::Rng as _;

    /// A cheap spec exercising the full machinery, including derived
    /// per-cell streams and unsupported cells.
    struct Demo;

    impl Experiment for Demo {
        fn name(&self) -> &'static str {
            "demo"
        }
        fn title(&self) -> &'static str {
            "machinery demo"
        }
        fn grid(&self, quick: bool) -> ParamGrid {
            let hi = if quick { 4 } else { 16 };
            ParamGrid::new(self.name())
                .axis_strs("mode", ["on", "off"])
                .axis_ints("i", 0..hi)
        }
        fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
            if cell.str("mode") == "off" && cell.int("i") % 5 == 4 {
                return None; // exercise unsupported cells
            }
            let mut rng = cell_rng(cell);
            let noise: f64 = rng.gen_range(0.0..1e-3);
            Some(
                vec![
                    Metric::new("value", cell.int("i") as f64 + noise),
                    Metric::new("noise", noise),
                ]
                .into(),
            )
        }
    }

    fn flat(run: &SweepRun) -> Vec<(String, CellOutcome)> {
        run.cells
            .iter()
            .map(|c| (c.cell.key.clone(), c.outcome.clone()))
            .collect()
    }

    #[test]
    fn jobs_count_does_not_change_results() {
        let reference = run_experiment(&Demo, false, 1);
        for jobs in [2, 4, 9] {
            let parallel = run_experiment(&Demo, false, jobs);
            assert_eq!(flat(&parallel), flat(&reference), "jobs = {jobs}");
            assert_eq!(parallel.summaries.len(), reference.summaries.len());
            for (a, b) in parallel.summaries.iter().zip(&reference.summaries) {
                assert_eq!(a.0, b.0);
                // Bit-identical, not approximately equal.
                assert_eq!(a.1, b.1, "summary {:?} drifted at jobs = {jobs}", a.0);
            }
        }
    }

    #[test]
    fn summaries_skip_unsupported_cells() {
        let run = run_experiment(&Demo, false, 3);
        let unsupported = run
            .cells
            .iter()
            .filter(|c| c.outcome == CellOutcome::Unsupported)
            .count();
        assert!(unsupported > 0, "demo grid must contain gaps");
        let (name, stats) = &run.summaries[0];
        assert_eq!(name, "value");
        assert_eq!(stats.count() as usize, run.cells.len() - unsupported);
    }

    #[test]
    fn quick_grid_is_smaller() {
        assert!(Demo.grid(true).len() < Demo.grid(false).len());
    }

    #[test]
    fn registry_lookup_and_duplicate_rejection() {
        let mut reg = Registry::new();
        reg.register(Box::new(Demo));
        assert_eq!(reg.names(), vec!["demo"]);
        assert!(reg.get("demo").is_some());
        assert!(reg.get("nope").is_none());
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.register(Box::new(Demo))
        }));
        assert!(dup.is_err());
    }

    #[test]
    fn try_register_reports_duplicates_as_values() {
        let mut reg = Registry::new();
        assert!(reg.try_register(Box::new(Demo)).is_ok());
        assert_eq!(
            reg.try_register(Box::new(Demo)),
            Err(DuplicateExperiment { name: "demo" })
        );
        assert_eq!(reg.names(), vec!["demo"], "the duplicate was not added");

        let built = Registry::from_experiments([Box::new(Demo) as Box<dyn Experiment>])
            .expect("unique names build");
        assert!(built.get("demo").is_some());
        let clash = Registry::from_experiments([
            Box::new(Demo) as Box<dyn Experiment>,
            Box::new(Demo) as Box<dyn Experiment>,
        ]);
        assert_eq!(clash.err(), Some(DuplicateExperiment { name: "demo" }));
    }

    #[test]
    fn a_panicking_cell_becomes_a_failed_row_not_a_crash() {
        let faults = FaultPlan::none().with(
            "demo/mode=on/i=2",
            Fault {
                kind: FaultKind::Panic,
                attempts: 99,
            },
        );
        let reference = run_experiment_with(
            &Demo,
            &RunConfig {
                quick: true,
                jobs: 1,
                faults: faults.clone(),
                ..RunConfig::default()
            },
        )
        .expect("sweep completes despite the dead cell");
        assert_eq!(reference.failed_cells(), 1);
        let dead = reference
            .cells
            .iter()
            .find(|c| c.cell.key == "demo/mode=on/i=2")
            .expect("cell present");
        let (message, attempts) = dead.failure().expect("failed row");
        assert!(message.contains("injected panic"), "message: {message}");
        assert_eq!(attempts, 1, "no retries configured");
        // Failed cells stay out of summaries, like unsupported ones.
        let (name, stats) = &reference.summaries[0];
        assert_eq!(name, "value");
        let measured = reference
            .cells
            .iter()
            .filter(|c| c.metrics().is_some())
            .count();
        assert_eq!(stats.count() as usize, measured);
        // And the whole run, failure row included, is jobs-invariant.
        for jobs in [2, 4] {
            let parallel = run_experiment_with(
                &Demo,
                &RunConfig {
                    quick: true,
                    jobs,
                    faults: faults.clone(),
                    ..RunConfig::default()
                },
            )
            .expect("parallel sweep completes");
            assert_eq!(flat(&parallel), flat(&reference), "jobs = {jobs}");
        }
    }

    #[test]
    fn bounded_retries_rescue_a_flaky_cell() {
        // panic@2 sabotages attempts 0 and 1: with --retries 2 the third
        // attempt (attempt index 2) succeeds; with fewer it fails.
        let faults = FaultPlan::none().with(
            "demo/mode=on/i=1",
            Fault {
                kind: FaultKind::Panic,
                attempts: 2,
            },
        );
        let rescued = run_experiment_with(
            &Demo,
            &RunConfig {
                quick: true,
                jobs: 2,
                retries: 2,
                faults: faults.clone(),
                ..RunConfig::default()
            },
        )
        .expect("sweep completes");
        assert_eq!(rescued.failed_cells(), 0);
        let cell = rescued
            .cells
            .iter()
            .find(|c| c.cell.key == "demo/mode=on/i=1")
            .expect("cell present");
        // The rescue ran on attempt 2, whose stream is deliberately
        // different from attempt 0's (attempt_seed fold).
        let attempt0 = run_experiment(&Demo, true, 1);
        let plain = attempt0
            .cells
            .iter()
            .find(|c| c.cell.key == "demo/mode=on/i=1")
            .expect("cell present");
        assert_ne!(
            cell.metric("noise"),
            plain.metric("noise"),
            "a retried cell must draw from the attempt-folded stream"
        );

        let exhausted = run_experiment_with(
            &Demo,
            &RunConfig {
                quick: true,
                jobs: 2,
                retries: 1,
                faults,
                ..RunConfig::default()
            },
        )
        .expect("sweep completes");
        assert_eq!(exhausted.failed_cells(), 1);
        let (_, attempts) = exhausted
            .cells
            .iter()
            .find_map(|c| c.failure())
            .expect("failed row");
        assert_eq!(attempts, 2, "1 + retries attempts were made");
    }

    #[test]
    fn error_faults_take_the_structured_failure_path() {
        let faults = FaultPlan::none().with(
            "demo/mode=off/i=0",
            Fault {
                kind: FaultKind::Error,
                attempts: 1,
            },
        );
        let run = run_experiment_with(
            &Demo,
            &RunConfig {
                quick: true,
                jobs: 1,
                faults,
                ..RunConfig::default()
            },
        )
        .expect("sweep completes");
        let (message, _) = run
            .cells
            .iter()
            .find_map(|c| c.failure())
            .expect("failed row");
        assert!(message.contains("injected error"), "message: {message}");
    }

    /// A spec whose traced path attaches real telemetry, for the store
    /// round-trip tests.
    struct TracedDemo;

    impl Experiment for TracedDemo {
        fn name(&self) -> &'static str {
            "traced_demo"
        }
        fn title(&self) -> &'static str {
            "telemetry persistence demo"
        }
        fn grid(&self, _quick: bool) -> ParamGrid {
            ParamGrid::new(self.name()).axis_ints("i", 0..4)
        }
        fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
            Some(vec![Metric::new("value", cell.int("i") as f64)].into())
        }
        fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
            let mut hook = leaky_trace::TraceHook::new(trace);
            hook.emit(|| leaky_trace::TraceEvent::LcpStall {
                thread: 0,
                stall_cycles: cell.int("i") as f64 + 0.5,
            });
            Some(
                CellMeasurement::from(vec![Metric::new("value", cell.int("i") as f64)])
                    .with_telemetry(hook.into_telemetry()),
            )
        }
    }

    #[test]
    fn resume_serves_cached_cells_with_telemetry() {
        let root =
            std::env::temp_dir().join(format!("leaky_exp_telemetry_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = ResultStore::open(&root).expect("store opens");
        let traced_cfg = |jobs| RunConfig {
            quick: true,
            jobs,
            resume: true,
            store: Some(&store),
            trace: TraceMode::Summary,
            ..RunConfig::default()
        };

        let cold = run_experiment_with(&TracedDemo, &traced_cfg(1)).expect("cold run");
        let stats = cold.store_stats.expect("stats");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.writes, cold.cells.len());

        // Warm traced run: every cell is a hit AND carries the exact
        // telemetry the cold run computed.
        let warm = run_experiment_with(&TracedDemo, &traced_cfg(2)).expect("warm run");
        let stats = warm.store_stats.expect("stats");
        assert_eq!(stats.hits, warm.cells.len(), "all served from cache");
        assert_eq!(stats.writes, 0);
        for (a, b) in cold.cells.iter().zip(&warm.cells) {
            let t_cold = a.telemetry().expect("cold cell traced");
            let t_warm = b.telemetry().expect("cached cell still traced");
            assert_eq!(t_cold, t_warm, "telemetry survives the store round-trip");
        }

        // An untraced resume serves the same entries, telemetry stripped.
        let untraced = run_experiment_with(
            &TracedDemo,
            &RunConfig {
                quick: true,
                jobs: 1,
                resume: true,
                store: Some(&store),
                ..RunConfig::default()
            },
        )
        .expect("untraced run");
        let stats = untraced.store_stats.expect("stats");
        assert_eq!(stats.hits, untraced.cells.len());
        assert!(untraced.cells.iter().all(|c| c.telemetry().is_none()));

        // A different trace mode cannot be served from summary-mode
        // entries: those cells recompute (and upgrade the entries).
        let events = run_experiment_with(
            &TracedDemo,
            &RunConfig {
                quick: true,
                jobs: 1,
                resume: true,
                store: Some(&store),
                trace: TraceMode::Events,
                ..RunConfig::default()
            },
        )
        .expect("events run");
        let stats = events.store_stats.expect("stats");
        assert_eq!(stats.hits, 0, "summary entries cannot serve --trace=events");
        assert_eq!(stats.misses, events.cells.len());
        assert_eq!(stats.writes, events.cells.len());
        assert!(events
            .cells
            .iter()
            .all(|c| c.telemetry().is_some_and(|t| t.mode == TraceMode::Events)));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn abort_faults_stop_the_sweep() {
        let faults = FaultPlan::none().with(
            "demo/mode=on/i=3",
            Fault {
                kind: FaultKind::Abort,
                attempts: 1,
            },
        );
        let err = run_experiment_with(
            &Demo,
            &RunConfig {
                quick: true,
                jobs: 1,
                faults,
                ..RunConfig::default()
            },
        )
        .expect_err("abort must surface");
        match err {
            SweepError::Aborted { key } => assert_eq!(key, "demo/mode=on/i=3"),
            other => panic!("expected Aborted, got {other:?}"),
        }
    }
}

//! Experiment specs, sweep execution, and the registry.

use crate::grid::{JobCell, ParamGrid};
use crate::pool::run_ordered;
use leaky_frontends::run::Provenance;
use leaky_stats::summary::merge_ordered;
use leaky_stats::OnlineStats;
use std::time::Instant;

/// One named measurement produced by a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (table column / JSON key).
    pub name: &'static str,
    /// Measured value.
    pub value: f64,
}

impl Metric {
    /// Convenience constructor.
    pub fn new(name: &'static str, value: f64) -> Self {
        Metric { name, value }
    }
}

/// Everything one cell measured: metric values plus (for channel sweeps)
/// the provenance of the transmission that produced them, which the JSON
/// rendering surfaces so a result row is self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMeasurement {
    /// Named metric values (table columns / JSON keys).
    pub metrics: Vec<Metric>,
    /// Channel provenance, when the cell ran a covert channel.
    pub provenance: Option<Provenance>,
}

impl CellMeasurement {
    /// Bundles metrics with the provenance a [`ChannelRun`] carries.
    ///
    /// [`ChannelRun`]: leaky_frontends::run::ChannelRun
    pub fn with_provenance(metrics: Vec<Metric>, provenance: Option<Provenance>) -> Self {
        CellMeasurement {
            metrics,
            provenance,
        }
    }
}

impl From<Vec<Metric>> for CellMeasurement {
    fn from(metrics: Vec<Metric>) -> Self {
        CellMeasurement {
            metrics,
            provenance: None,
        }
    }
}

/// A declarative experiment: a grid plus a per-cell measurement.
///
/// Implementations must be pure in the cell: `run_cell` may not depend
/// on which other cells ran, in what order, or on which thread — that is
/// what makes `--jobs N` bit-identical. Cells needing randomness take it
/// from [`crate::seed::cell_rng`] (or a spec-pinned legacy seed, for
/// sweeps whose committed outputs predate this subsystem).
pub trait Experiment: Sync {
    /// Registry name (also the CLI filter argument), e.g. `"fig8_d_sweep"`.
    fn name(&self) -> &'static str;

    /// One-line human description (CLI `--list`, table headers).
    fn title(&self) -> &'static str;

    /// The parameter grid; `quick` selects a cheaper variant of the same
    /// sweep for CI smoke runs (typically fewer message bits).
    fn grid(&self, quick: bool) -> ParamGrid;

    /// Measures one cell. `None` marks a structurally unsupported cell
    /// (e.g. an SMT channel on a machine with SMT disabled) — it stays in
    /// the output as a gap but contributes nothing to summaries. Plain
    /// metric vectors convert via `Into`; channel sweeps attach
    /// provenance with [`CellMeasurement::with_provenance`].
    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement>;
}

/// The outcome of one cell: its coordinates plus measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: JobCell,
    /// Measurements, or `None` for an unsupported cell.
    pub metrics: Option<Vec<Metric>>,
    /// Channel provenance, when the cell's measurement attached any.
    pub provenance: Option<Provenance>,
}

impl CellResult {
    /// Looks up a metric value by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .as_ref()?
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

/// A completed sweep: ordered cell results plus per-metric summaries.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Experiment name.
    pub name: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// Whether the quick grid was used.
    pub quick: bool,
    /// Worker threads the sweep ran on (affects wall time only).
    pub jobs: usize,
    /// Cell results, in grid order.
    pub cells: Vec<CellResult>,
    /// Per-metric Welford summaries over all supported cells, keyed by
    /// metric name in first-appearance order. Built by merging per-cell
    /// accumulators in grid order (`merge_ordered`), so they are
    /// bit-identical at any `jobs`.
    pub summaries: Vec<(String, OnlineStats)>,
    /// Wall-clock nanoseconds of the execution phase. Excluded from all
    /// deterministic renderings; `perf_report`'s sweep-throughput
    /// metrics aggregate it via `leaky_bench::sweep::quick_sweep_throughput`.
    pub elapsed_ns: u128,
}

/// Expands, executes, collects, and summarizes one experiment.
pub fn run_experiment(exp: &dyn Experiment, quick: bool, jobs: usize) -> SweepRun {
    let cells = exp.grid(quick).expand();
    // lint: allow(wall-clock) — elapsed_ns is operator telemetry only;
    // renderers and content keys never consume it.
    let start = Instant::now();
    let outputs = run_ordered(jobs, cells.len(), |i| exp.run_cell(&cells[i]));
    let elapsed_ns = start.elapsed().as_nanos();

    let results: Vec<CellResult> = cells
        .into_iter()
        .zip(outputs)
        .map(|(cell, measurement)| {
            let (metrics, provenance) = match measurement {
                Some(m) => (Some(m.metrics), m.provenance),
                None => (None, None),
            };
            CellResult {
                cell,
                metrics,
                provenance,
            }
        })
        .collect();

    // Summaries: one single-sample Welford accumulator per (cell, metric),
    // merged strictly in grid order. The grouping of merges is part of the
    // bit-identical contract (f64 addition is not associative), which is
    // why this happens after ordered collection, not inside the workers.
    let mut names: Vec<String> = Vec::new();
    for r in &results {
        for m in r.metrics.iter().flatten() {
            if !names.iter().any(|n| n == m.name) {
                names.push(m.name.to_string());
            }
        }
    }
    let summaries = names
        .into_iter()
        .map(|name| {
            let stats = merge_ordered(
                results
                    .iter()
                    .filter_map(|r| r.metric(&name).map(|v| OnlineStats::from_iter([v]))),
            );
            (name, stats)
        })
        .collect();

    SweepRun {
        name: exp.name(),
        title: exp.title(),
        quick,
        jobs,
        cells: results,
        summaries,
        elapsed_ns,
    }
}

/// The set of registered experiments, looked up by name.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds an experiment.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — two specs answering to one CLI
    /// filter would make "which sweep ran?" ambiguous.
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        assert!(
            self.get(exp.name()).is_none(),
            "duplicate experiment {:?}",
            exp.name()
        );
        self.entries.push(exp);
    }

    /// Looks up an experiment by name.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
    }

    /// All experiments, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.entries.iter().map(|e| e.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::cell_rng;
    use rand::Rng as _;

    /// A cheap spec exercising the full machinery, including derived
    /// per-cell streams and unsupported cells.
    struct Demo;

    impl Experiment for Demo {
        fn name(&self) -> &'static str {
            "demo"
        }
        fn title(&self) -> &'static str {
            "machinery demo"
        }
        fn grid(&self, quick: bool) -> ParamGrid {
            let hi = if quick { 4 } else { 16 };
            ParamGrid::new(self.name())
                .axis_strs("mode", ["on", "off"])
                .axis_ints("i", 0..hi)
        }
        fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
            if cell.str("mode") == "off" && cell.int("i") % 5 == 4 {
                return None; // exercise unsupported cells
            }
            let mut rng = cell_rng(cell);
            let noise: f64 = rng.gen_range(0.0..1e-3);
            Some(
                vec![
                    Metric::new("value", cell.int("i") as f64 + noise),
                    Metric::new("noise", noise),
                ]
                .into(),
            )
        }
    }

    fn flat(run: &SweepRun) -> Vec<(String, Option<Vec<Metric>>)> {
        run.cells
            .iter()
            .map(|c| (c.cell.key.clone(), c.metrics.clone()))
            .collect()
    }

    #[test]
    fn jobs_count_does_not_change_results() {
        let reference = run_experiment(&Demo, false, 1);
        for jobs in [2, 4, 9] {
            let parallel = run_experiment(&Demo, false, jobs);
            assert_eq!(flat(&parallel), flat(&reference), "jobs = {jobs}");
            assert_eq!(parallel.summaries.len(), reference.summaries.len());
            for (a, b) in parallel.summaries.iter().zip(&reference.summaries) {
                assert_eq!(a.0, b.0);
                // Bit-identical, not approximately equal.
                assert_eq!(a.1, b.1, "summary {:?} drifted at jobs = {jobs}", a.0);
            }
        }
    }

    #[test]
    fn summaries_skip_unsupported_cells() {
        let run = run_experiment(&Demo, false, 3);
        let unsupported = run.cells.iter().filter(|c| c.metrics.is_none()).count();
        assert!(unsupported > 0, "demo grid must contain gaps");
        let (name, stats) = &run.summaries[0];
        assert_eq!(name, "value");
        assert_eq!(stats.count() as usize, run.cells.len() - unsupported);
    }

    #[test]
    fn quick_grid_is_smaller() {
        assert!(Demo.grid(true).len() < Demo.grid(false).len());
    }

    #[test]
    fn registry_lookup_and_duplicate_rejection() {
        let mut reg = Registry::new();
        reg.register(Box::new(Demo));
        assert_eq!(reg.names(), vec!["demo"]);
        assert!(reg.get("demo").is_some());
        assert!(reg.get("nope").is_none());
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.register(Box::new(Demo))
        }));
        assert!(dup.is_err());
    }
}

//! Deterministic fault injection: exercising the recovery path on purpose.
//!
//! A [`FaultPlan`] maps cell content keys to faults the runner injects
//! while executing exactly those cells. Because the plan is keyed by
//! content (never by index, worker, or timing), an injected failure is
//! perfectly reproducible at any `--jobs N` — which is what lets tier-1
//! tests assert that a sweep with one panicking cell renders
//! byte-identically at one and four workers.
//!
//! Plans are written as a compact spec string (CLI `--faults`, or the
//! `LEAKY_FAULTS` environment variable):
//!
//! ```text
//! panic@2:demo/i=3;error:demo/i=5;abort:demo/i=6;corrupt:demo/i=0
//! ```
//!
//! Entries are `;`-separated; each is `kind[@attempts]:key` where
//! `attempts` (default 1) is how many leading attempts of that cell the
//! fault sabotages — `panic@2` fails attempts 0 and 1, so the cell
//! succeeds only if the sweep allows at least `--retries 2`.

use std::collections::BTreeMap;
use std::fmt;

/// What to inject on a matched cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside `run_cell` (exercises `catch_unwind` recovery and
    /// deterministic re-seeded retries).
    Panic,
    /// Fail the attempt without unwinding (exercises the structured
    /// failure-row path).
    Error,
    /// Stop the whole sweep when this cell is dispatched (exercises
    /// kill-and-resume: completed cells stay persisted in the store).
    Abort,
    /// Let the cell succeed, then damage its freshly written store entry
    /// (exercises corruption detection and quarantine on the next
    /// resumed run).
    Corrupt,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "error" => Some(FaultKind::Error),
            "abort" => Some(FaultKind::Abort),
            "corrupt" => Some(FaultKind::Corrupt),
            _ => None,
        }
    }
}

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// How many leading attempts to sabotage (`Panic`/`Error` only;
    /// `Abort` and `Corrupt` ignore it).
    pub attempts: u32,
}

/// Why a fault spec string did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseError {
    /// An entry had no `kind:key` separator.
    MissingKey(String),
    /// The kind is not one of `panic`/`error`/`abort`/`corrupt`.
    UnknownKind(String),
    /// The `@attempts` suffix is not a positive integer.
    BadAttempts(String),
    /// The same key appears twice.
    DuplicateKey(String),
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultParseError::MissingKey(entry) => {
                write!(f, "fault entry {entry:?} has no `kind:key` separator")
            }
            FaultParseError::UnknownKind(kind) => write!(
                f,
                "unknown fault kind {kind:?} (expected panic, error, abort or corrupt)"
            ),
            FaultParseError::BadAttempts(entry) => {
                write!(
                    f,
                    "fault entry {entry:?}: `@attempts` must be a positive integer"
                )
            }
            FaultParseError::DuplicateKey(key) => {
                write!(f, "fault key {key:?} appears more than once")
            }
        }
    }
}

impl std::error::Error for FaultParseError {}

/// The set of planned faults, keyed by cell content key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: BTreeMap<String, Fault>,
}

impl FaultPlan {
    /// An empty plan (the default: no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parses a spec string (see the module docs for the grammar).
    /// Empty entries are skipped, so `""` parses to the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (head, key) = raw
                .split_once(':')
                .ok_or_else(|| FaultParseError::MissingKey(raw.to_string()))?;
            let (kind_str, attempts) = match head.split_once('@') {
                Some((k, n)) => {
                    let n: u32 = n
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| FaultParseError::BadAttempts(raw.to_string()))?;
                    (k, n)
                }
                None => (head, 1),
            };
            let kind = FaultKind::parse(kind_str)
                .ok_or_else(|| FaultParseError::UnknownKind(kind_str.to_string()))?;
            if plan
                .entries
                .insert(key.to_string(), Fault { kind, attempts })
                .is_some()
            {
                return Err(FaultParseError::DuplicateKey(key.to_string()));
            }
        }
        Ok(plan)
    }

    /// Loads the plan from the `LEAKY_FAULTS` environment variable
    /// (absent or empty means no faults).
    pub fn from_env() -> Result<FaultPlan, FaultParseError> {
        match std::env::var("LEAKY_FAULTS") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Adds one fault (test/builder convenience).
    pub fn with(mut self, key: impl Into<String>, fault: Fault) -> FaultPlan {
        self.entries.insert(key.into(), fault);
        self
    }

    /// The fault planned for `key`, if any.
    pub fn get(&self, key: &str) -> Option<Fault> {
        self.entries.get(key).copied()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan =
            FaultPlan::parse("panic@2:demo/i=3; error:demo/i=5;abort:demo/i=6;corrupt:demo/i=0")
                .expect("valid spec");
        assert_eq!(
            plan.get("demo/i=3"),
            Some(Fault {
                kind: FaultKind::Panic,
                attempts: 2
            })
        );
        assert_eq!(
            plan.get("demo/i=5"),
            Some(Fault {
                kind: FaultKind::Error,
                attempts: 1
            })
        );
        assert_eq!(plan.get("demo/i=6").map(|f| f.kind), Some(FaultKind::Abort));
        assert_eq!(
            plan.get("demo/i=0").map(|f| f.kind),
            Some(FaultKind::Corrupt)
        );
        assert_eq!(plan.get("demo/i=1"), None);
    }

    #[test]
    fn empty_specs_are_no_faults() {
        assert!(FaultPlan::parse("").expect("empty ok").is_empty());
        assert!(FaultPlan::parse(" ; ;").expect("blanks ok").is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn keys_may_contain_axis_syntax() {
        // Content keys carry `/` and `=`; only the *first* `:` splits.
        let plan = FaultPlan::parse("panic:tab3/machine=Gold 6226/ch=mt-eviction")
            .expect("axis syntax ok");
        assert!(plan.get("tab3/machine=Gold 6226/ch=mt-eviction").is_some());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert_eq!(
            FaultPlan::parse("panic"),
            Err(FaultParseError::MissingKey("panic".to_string()))
        );
        assert_eq!(
            FaultPlan::parse("explode:k"),
            Err(FaultParseError::UnknownKind("explode".to_string()))
        );
        assert_eq!(
            FaultPlan::parse("panic@0:k"),
            Err(FaultParseError::BadAttempts("panic@0:k".to_string()))
        );
        assert_eq!(
            FaultPlan::parse("panic@x:k"),
            Err(FaultParseError::BadAttempts("panic@x:k".to_string()))
        );
        assert_eq!(
            FaultPlan::parse("panic:k;error:k"),
            Err(FaultParseError::DuplicateKey("k".to_string()))
        );
    }
}

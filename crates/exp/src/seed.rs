//! Per-cell seed derivation: splitmix64 over the cell's content key.
//!
//! A sweep cell's random stream must depend only on *what* the cell
//! computes (its content key), never on execution order or worker
//! count — otherwise `--jobs 4` would reshuffle the noise and break
//! bit-identical output. The derivation is: FNV-1a over the key bytes
//! to condense the string, then one [`SplitMix64::split`] to decorrelate
//! keys that differ in few bits (FNV is fast but weakly avalanching).

use leaky_uarch::Fnv1a;
use rand::rngs::{SplitMix64, StdRng};
use rand::{RngCore as _, SeedableRng as _};

use crate::grid::JobCell;

/// Derives the deterministic RNG seed of a content key. The FNV-1a
/// accumulator is the shared [`leaky_uarch::Fnv1a`] (also behind
/// profile fingerprints), so the workspace has exactly one set of FNV
/// constants; the pinned-value test below keeps this derivation
/// byte-stable regardless.
pub fn derive_seed(key: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(key.as_bytes());
    SplitMix64::new(h.finish()).split().next_u64()
}

/// Folds a retry attempt into a cell seed: attempt 0 *is* the seed
/// (pinning every committed golden), and each later attempt takes one
/// more [`SplitMix64::split`] hop so a retried cell replays fresh — but
/// scheduling-independent — randomness. A cell that panicked from an
/// unlucky draw would otherwise retry into the identical draw and fail
/// forever.
pub fn attempt_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return seed;
    }
    // Weyl-increment the seed by the attempt before splitting, so
    // attempts decorrelate even though they share the base seed.
    let shifted = seed.wrapping_add((attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    SplitMix64::new(shifted).split().next_u64()
}

/// The cell's independent random stream: a [`StdRng`] over the derived
/// seed, with the cell's retry attempt folded in (see [`attempt_seed`]).
/// Two cells never share a stream; re-running a cell always replays the
/// same stream.
pub fn cell_rng(cell: &JobCell) -> StdRng {
    StdRng::seed_from_u64(attempt_seed(cell.seed, cell.attempt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ParamGrid;
    use rand::Rng as _;

    #[test]
    fn derivation_is_pinned() {
        // Literal pinned values: any change to the FNV constants or the
        // post-FNV split silently re-seeds every derived-stream sweep
        // (and the jobs-1-vs-4 diff cannot catch it, since both sides
        // shift together) — so make it loud instead.
        assert_eq!(derive_seed("tab3_all_channels"), 0x8c19_f8b0_621c_bdb0);
        assert_eq!(derive_seed("x/d=1"), 0x370b_4a6e_2840_3e66);
        assert_eq!(derive_seed("x/d=2"), 0xbbc4_45b0_ea0e_d0a5);
    }

    #[test]
    fn attempt_zero_is_the_plain_seed() {
        // Goldens depend on this: adding the retry machinery must not
        // move any first-attempt stream.
        for seed in [0u64, 1, 0x8c19_f8b0_621c_bdb0, u64::MAX] {
            assert_eq!(attempt_seed(seed, 0), seed);
        }
    }

    #[test]
    fn attempt_seeds_are_pinned_and_distinct() {
        // Pinned literals, same reasoning as `derivation_is_pinned`: a
        // silent change to the fold would re-seed every retried cell.
        let base = derive_seed("x/d=1");
        assert_eq!(attempt_seed(base, 1), 0x4b96_7a91_2435_4b02);
        assert_eq!(attempt_seed(base, 2), 0xd6f5_49e9_d592_92ce);
        let mut seen: Vec<u64> = (0..16).map(|a| attempt_seed(base, a)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16, "attempt seeds collided");
    }

    #[test]
    fn near_identical_keys_decorrelate() {
        // Keys differing by one trailing digit must not produce nearby
        // seeds (the reason for the post-FNV split()).
        let seeds: Vec<u64> = (0..64)
            .map(|i| derive_seed(&format!("exp/cell={i}")))
            .collect();
        for w in seeds.windows(2) {
            assert_ne!(w[0], w[1]);
            // Crude avalanche check: adjacent cells differ in many bits.
            assert!((w[0] ^ w[1]).count_ones() > 8);
        }
    }

    #[test]
    fn cell_rngs_are_independent_streams() {
        let cells = ParamGrid::new("s").axis_ints("i", 0..8).expand();
        let firsts: Vec<f64> = cells
            .iter()
            .map(|c| cell_rng(c).gen_range(0.0..1.0))
            .collect();
        let replay: Vec<f64> = cells
            .iter()
            .map(|c| cell_rng(c).gen_range(0.0..1.0))
            .collect();
        assert_eq!(firsts, replay, "streams must replay exactly");
        let mut sorted = firsts.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "streams collided");
    }
}

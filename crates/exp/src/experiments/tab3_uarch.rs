//! Table III across microarchitecture profiles: every covert channel on
//! the primary (Gold 6226) machine, swept over the `uarch` axis
//! (DESIGN.md §8). The `skylake` column reproduces Table III's operating
//! point; `icelake` shows the channels surviving an LSD-less,
//! wider-decode core; `constant_time` shows the §XII defense killing
//! them (a channel that fails threshold calibration reports rate 0 and
//! error 0.5 — a dead channel, which is the defense's success metric).
//!
//! Both sweep axes are registry keys — `uarch` indexes the profile
//! registry, `channel` the channel registry — so the whole grid is one
//! [`channel_cell_traced`](super::channel_cell_traced) call per cell,
//! no type matching.

use super::{channel_cell_traced, machine, profile, uarch};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment};
use leaky_frontends::channels::{channel_info, ChannelSpec};
use leaky_frontends::params::MessagePattern;
use leaky_trace::TraceMode;
use leaky_uarch::UarchProfile;

/// The machine the cross-profile sweep runs on: the paper's primary
/// test machine (SMT and LSD available, so every channel has a column).
const MACHINE: &str = "Gold 6226";

/// Cross-microarchitecture Table III sweep: uarch × channel.
pub struct Tab3Uarch;

impl Tab3Uarch {
    fn bits(quick: bool) -> (usize, usize) {
        // (non-MT bits, MT bits); smaller than tab3_all_channels' full
        // sizes — the grid is 3× wider and rates stabilize well before
        // 128 bits.
        if quick {
            (32, 16)
        } else {
            (128, 48)
        }
    }
}

impl Experiment for Tab3Uarch {
    fn name(&self) -> &'static str {
        "tab3_uarch"
    }

    fn title(&self) -> &'static str {
        "Table III rates across microarchitecture profiles (Gold 6226), alternating message"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("uarch", UarchProfile::keys())
            .axis_strs("channel", super::tab3::CHANNELS)
            .axis_strs("machine", [MACHINE])
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        self.run_cell_traced(cell, TraceMode::Off)
    }

    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let quick = cell.str("profile") == "quick";
        let (bits, mt_bits) = Self::bits(quick);
        let channel = cell.str("channel");
        // MT bit slots are ~100x more expensive; the registry's SMT
        // requirement is the single source for which channels those are.
        let bits = if channel_info(channel).is_some_and(|i| i.requires_smt) {
            mt_bits
        } else {
            bits
        };
        // Derived per-cell seed (this sweep postdates the legacy binaries,
        // so its streams are content-addressed rather than pinned).
        let spec = ChannelSpec::new(channel)
            .model(machine(cell.str("machine")))
            .profile(uarch(cell.str("uarch")))
            .seed(cell.seed);
        channel_cell_traced(&spec, &MessagePattern::Alternating.generate(bits, 0), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;

    #[test]
    fn grid_covers_every_profile_and_channel() {
        let grid = Tab3Uarch.grid(false);
        assert_eq!(grid.len(), 3 * 6);
        let cells = grid.expand();
        assert_eq!(cells[0].key, "tab3_uarch/profile=full/uarch=skylake/channel=non-mt-stealthy-eviction/machine=Gold 6226");
    }

    #[test]
    fn constant_time_profile_reports_dead_or_noise_channels() {
        // The defense column, §XII scope: equalizing path costs kills the
        // *stealthy* channels (whose 0-encoding does matched dummy work —
        // the only difference was the frontend path). Fast variants still
        // leak trivially through the raw presence/absence of sender work,
        // and MT variants through SMT backend contention — both outside
        // what a constant-time frontend can hide.
        let run = run_experiment(&Tab3Uarch, true, 2);
        for cell in run.cells.iter().filter(|c| {
            c.cell.str("uarch") == "constant_time"
                && c.cell.str("channel").starts_with("non-mt-stealthy")
        }) {
            let err = cell.metric("error_rate").expect("supported on 6226");
            assert!(
                err > 0.2,
                "{}: constant-time profile leaked (error {err:.3})",
                cell.cell.key
            );
        }
        // ...while the skylake column transmits the fast non-MT channels
        // essentially error-free, as in Table III.
        for cell in run.cells.iter().filter(|c| {
            c.cell.str("uarch") == "skylake" && c.cell.str("channel") == "non-mt-fast-eviction"
        }) {
            let err = cell.metric("error_rate").expect("supported");
            assert!(err < 0.10, "{}: error {err:.3}", cell.cell.key);
            assert!(cell.metric("rate_kbps").expect("supported") > 100.0);
        }
    }

    #[test]
    fn cells_carry_channel_provenance() {
        // Every supported cell's provenance names the channel and the
        // uarch profile it actually ran under — the sweep JSON surfaces
        // this, so it must match the cell's own coordinates.
        let run = run_experiment(&Tab3Uarch, true, 2);
        for cell in &run.cells {
            if cell.metrics().is_none() {
                continue;
            }
            let prov = cell.provenance().expect("channel cells attach provenance");
            assert_eq!(prov.channel, cell.cell.str("channel"), "{}", cell.cell.key);
            assert_eq!(prov.profile, cell.cell.str("uarch"), "{}", cell.cell.key);
        }
    }
}

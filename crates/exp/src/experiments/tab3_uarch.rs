//! Table III across microarchitecture profiles: every covert channel on
//! the primary (Gold 6226) machine, swept over the `uarch` axis
//! (DESIGN.md §8). The `skylake` column reproduces Table III's operating
//! point; `icelake` shows the channels surviving an LSD-less,
//! wider-decode core; `constant_time` shows the §XII defense killing
//! them (a channel that fails threshold calibration reports rate 0 and
//! error 0.5 — a dead channel, which is the defense's success metric).

use super::{machine, profile, uarch};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{Experiment, Metric};
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends::params::{ChannelParams, EncodeMode, MessagePattern};
use leaky_frontends::run::ChannelRun;
use leaky_uarch::UarchProfile;

/// The machine the cross-profile sweep runs on: the paper's primary
/// test machine (SMT and LSD available, so every channel has a column).
const MACHINE: &str = "Gold 6226";

/// Cross-microarchitecture Table III sweep: uarch × channel.
pub struct Tab3Uarch;

impl Tab3Uarch {
    fn bits(quick: bool) -> (usize, usize) {
        // (non-MT bits, MT bits); smaller than tab3_all_channels' full
        // sizes — the grid is 3× wider and rates stabilize well before
        // 128 bits.
        if quick {
            (32, 16)
        } else {
            (128, 48)
        }
    }
}

impl Experiment for Tab3Uarch {
    fn name(&self) -> &'static str {
        "tab3_uarch"
    }

    fn title(&self) -> &'static str {
        "Table III rates across microarchitecture profiles (Gold 6226), alternating message"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("uarch", UarchProfile::keys())
            .axis_strs("channel", super::tab3::CHANNELS)
            .axis_strs("machine", [MACHINE])
    }

    fn run_cell(&self, cell: &JobCell) -> Option<Vec<Metric>> {
        let quick = cell.str("profile") == "quick";
        let (bits, mt_bits) = Self::bits(quick);
        let model = machine(cell.str("machine"));
        let uarch_profile = uarch(cell.str("uarch"));
        // Derived per-cell seed (this sweep postdates the legacy binaries,
        // so its streams are content-addressed rather than pinned).
        let seed = cell.seed;
        let message = |n| MessagePattern::Alternating.generate(n, 0);
        let run = match cell.str("channel") {
            "non-mt-stealthy-eviction" => non_mt(
                model,
                NonMtKind::Eviction,
                EncodeMode::Stealthy,
                &uarch_profile,
                seed,
                &message(bits),
            ),
            "non-mt-stealthy-misalignment" => non_mt(
                model,
                NonMtKind::Misalignment,
                EncodeMode::Stealthy,
                &uarch_profile,
                seed,
                &message(bits),
            ),
            "non-mt-fast-eviction" => non_mt(
                model,
                NonMtKind::Eviction,
                EncodeMode::Fast,
                &uarch_profile,
                seed,
                &message(bits),
            ),
            "non-mt-fast-misalignment" => non_mt(
                model,
                NonMtKind::Misalignment,
                EncodeMode::Fast,
                &uarch_profile,
                seed,
                &message(bits),
            ),
            "mt-eviction" => mt(
                model,
                MtKind::Eviction,
                &uarch_profile,
                seed,
                &message(mt_bits),
            )?,
            "mt-misalignment" => mt(
                model,
                MtKind::Misalignment,
                &uarch_profile,
                seed,
                &message(mt_bits),
            )?,
            other => panic!("unknown channel {other:?}"),
        };
        Some(run)
    }
}

fn metrics_of(run: &ChannelRun) -> Vec<Metric> {
    vec![
        Metric::new("rate_kbps", run.rate_kbps()),
        Metric::new("error_rate", run.error_rate()),
        Metric::new("capacity_kbps", run.capacity_kbps()),
    ]
}

/// The dead-channel row: calibration found no timing separation between
/// the bit classes (the §XII defense succeeding), so nothing transmits.
fn dead_channel() -> Vec<Metric> {
    vec![
        Metric::new("rate_kbps", 0.0),
        Metric::new("error_rate", 0.5),
        Metric::new("capacity_kbps", 0.0),
    ]
}

fn non_mt(
    model: leaky_cpu::ProcessorModel,
    kind: NonMtKind,
    mode: EncodeMode,
    uarch_profile: &UarchProfile,
    seed: u64,
    message: &[bool],
) -> Vec<Metric> {
    let params = match kind {
        NonMtKind::Eviction => ChannelParams::eviction_defaults(),
        NonMtKind::Misalignment => ChannelParams::misalignment_defaults(),
    };
    let mut ch = NonMtChannel::with_profile(model, kind, mode, params, uarch_profile, seed);
    if ch.try_calibrate().is_err() {
        return dead_channel();
    }
    metrics_of(&ch.transmit(message))
}

/// `None` on machines with SMT disabled (structurally unsupported cell).
fn mt(
    model: leaky_cpu::ProcessorModel,
    kind: MtKind,
    uarch_profile: &UarchProfile,
    seed: u64,
    message: &[bool],
) -> Option<Vec<Metric>> {
    let params = match kind {
        MtKind::Eviction => ChannelParams::mt_defaults(),
        MtKind::Misalignment => ChannelParams::mt_misalignment_defaults(),
    };
    let mut ch = MtChannel::with_profile(model, kind, params, uarch_profile, seed).ok()?;
    if ch.try_calibrate().is_err() {
        return Some(dead_channel());
    }
    Some(metrics_of(&ch.transmit(message)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;

    #[test]
    fn grid_covers_every_profile_and_channel() {
        let grid = Tab3Uarch.grid(false);
        assert_eq!(grid.len(), 3 * 6);
        let cells = grid.expand();
        assert_eq!(cells[0].key, "tab3_uarch/profile=full/uarch=skylake/channel=non-mt-stealthy-eviction/machine=Gold 6226");
    }

    #[test]
    fn constant_time_profile_reports_dead_or_noise_channels() {
        // The defense column, §XII scope: equalizing path costs kills the
        // *stealthy* channels (whose 0-encoding does matched dummy work —
        // the only difference was the frontend path). Fast variants still
        // leak trivially through the raw presence/absence of sender work,
        // and MT variants through SMT backend contention — both outside
        // what a constant-time frontend can hide.
        let run = run_experiment(&Tab3Uarch, true, 2);
        for cell in run.cells.iter().filter(|c| {
            c.cell.str("uarch") == "constant_time"
                && c.cell.str("channel").starts_with("non-mt-stealthy")
        }) {
            let err = cell.metric("error_rate").expect("supported on 6226");
            assert!(
                err > 0.2,
                "{}: constant-time profile leaked (error {err:.3})",
                cell.cell.key
            );
        }
        // ...while the skylake column transmits the fast non-MT channels
        // essentially error-free, as in Table III.
        for cell in run.cells.iter().filter(|c| {
            c.cell.str("uarch") == "skylake" && c.cell.str("channel") == "non-mt-fast-eviction"
        }) {
            let err = cell.metric("error_rate").expect("supported");
            assert!(err < 0.10, "{}: error {err:.3}", cell.cell.key);
            assert!(cell.metric("rate_kbps").expect("supported") > 100.0);
        }
    }
}

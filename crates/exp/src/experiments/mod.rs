//! Registered paper sweeps (EXPERIMENTS.md maps bins to spec names).
//!
//! Each migrated spec reproduces one legacy figure/table binary's grid
//! cell-for-cell, pinning the *legacy* RNG seeds so the committed
//! outputs stay bit-identical (the derived `JobCell::seed` streams are
//! for new experiments; `rng_stream_grid` demonstrates them).

mod fig8;
mod rng_grid;
mod tab2;
mod tab3;
mod tab3_uarch;
mod tab5;
mod tab7;

pub use fig8::Fig8DSweep;
pub use rng_grid::RngStreamGrid;
pub use tab2::Tab2MtPatterns;
pub use tab3::Tab3AllChannels;
pub use tab3_uarch::Tab3Uarch;
pub use tab5::Tab5PowerChannels;
pub use tab7::Tab7SpectreMissRates;

use crate::runner::{CellMeasurement, Metric, Registry};
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::{BuildError, ChannelSpec};
use leaky_frontends::run::Provenance;
use leaky_uarch::UarchProfile;

/// The registry every frontend (CLI, wrappers, perf harness) shares.
///
/// # Panics
///
/// Panics if two compiled-in experiments share a name
/// (`Registry::register`).
pub fn standard_registry() -> Registry {
    let mut reg = Registry::new();
    reg.register(Box::new(Tab3AllChannels));
    reg.register(Box::new(Tab2MtPatterns));
    reg.register(Box::new(Fig8DSweep));
    reg.register(Box::new(Tab5PowerChannels));
    reg.register(Box::new(Tab7SpectreMissRates));
    reg.register(Box::new(Tab3Uarch));
    reg.register(Box::new(RngStreamGrid));
    reg
}

/// Resolves a Table I machine by its display name (the axis value).
/// Public so dynamically loaded specs (`leaky_scenario` bundles) share
/// the compiled-in sweeps' resolution path.
///
/// # Panics
///
/// Panics on an unknown name — grids only emit names from
/// [`ProcessorModel::all`], so this is a spec bug.
pub fn machine(name: &str) -> ProcessorModel {
    ProcessorModel::all()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown machine {name:?}"))
}

/// The quick/full profile axis: a single-valued axis, so the sweep's
/// content keys (and therefore derived seeds) distinguish the two
/// workload sizes.
pub(crate) fn profile(quick: bool) -> &'static str {
    if quick {
        "quick"
    } else {
        "full"
    }
}

/// Resolves a microarchitecture profile by its registry key (the `uarch`
/// axis value).
///
/// # Panics
///
/// Panics on an unknown key — grids only emit keys from
/// [`UarchProfile::keys`], so this is a spec bug.
pub(crate) fn uarch(key: &str) -> UarchProfile {
    UarchProfile::by_key(key).unwrap_or_else(|| panic!("unknown uarch profile {key:?}"))
}

/// Runs one covert-channel cell: builds the spec's channel from the
/// registry, transmits `message`, and reports the standard rate /
/// error / capacity metrics with the run's provenance attached.
///
/// Structural gaps and defended frontends map to the sweep vocabulary:
/// an SMT channel on an SMT-less machine is `None` (the paper's missing
/// MT columns), and a channel whose calibration finds no class
/// separation is a *dead channel* row — rate 0, error 0.5, capacity 0,
/// the §XII defense's success metric.
///
/// The trace hook is installed before calibration, so the telemetry
/// covers the whole cell — including dead-channel rows, whose stall
/// summary is exactly what explains the death (the trace layer's
/// reason for existing). The metrics are bit-identical to the untraced
/// path ([`TraceMode::Off`](leaky_trace::TraceMode::Off)): the hook
/// observes, it never steers.
///
/// Public so dynamically loaded specs (`leaky_scenario` bundles) run
/// their cells through exactly the same path as the compiled-in sweeps.
///
/// # Panics
///
/// Panics on spec errors that indicate a grid bug (unknown channel
/// name, unsupported override) rather than a structural gap.
pub fn channel_cell_traced(
    spec: &ChannelSpec,
    message: &[bool],
    trace: leaky_trace::TraceMode,
) -> Option<CellMeasurement> {
    let mut ch = match spec.build() {
        Ok(ch) => ch,
        Err(BuildError::SmtUnavailable(_)) => return None,
        Err(e) => panic!("channel spec invalid: {e}"),
    };
    ch.set_trace(leaky_trace::TraceHook::new(trace));
    let provenance = Provenance {
        channel: ch.name(),
        profile: ch.profile_key(),
        params: ch.params(),
    };
    if ch.try_calibrate().is_err() {
        return Some(
            CellMeasurement::with_provenance(
                vec![
                    Metric::new("rate_kbps", 0.0),
                    Metric::new("error_rate", 0.5),
                    Metric::new("capacity_kbps", 0.0),
                ],
                Some(provenance),
            )
            .with_telemetry(ch.take_trace().into_telemetry()),
        );
    }
    let run = ch.transmit(message);
    Some(
        CellMeasurement::with_provenance(
            vec![
                Metric::new("rate_kbps", run.rate_kbps()),
                Metric::new("error_rate", run.error_rate()),
                Metric::new("capacity_kbps", run.capacity_kbps()),
            ],
            run.provenance().cloned(),
        )
        .with_telemetry(ch.take_trace().into_telemetry()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_experiment, run_experiment_with, RunConfig};
    use leaky_trace::TraceMode;

    #[test]
    fn registry_contains_the_migrated_sweeps() {
        let reg = standard_registry();
        assert_eq!(
            reg.names(),
            vec![
                "tab3_all_channels",
                "tab2_mt_patterns",
                "fig8_d_sweep",
                "tab5_power_channels",
                "tab7_spectre_miss_rates",
                "tab3_uarch",
                "rng_stream_grid",
            ]
        );
    }

    #[test]
    fn machine_lookup_roundtrips() {
        for m in ProcessorModel::all() {
            assert_eq!(machine(m.name).name, m.name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown machine")]
    fn unknown_machine_panics() {
        let _ = machine("Pentium II");
    }

    #[test]
    fn traced_sweeps_keep_metrics_and_attach_telemetry() {
        // Summary tracing must never steer the simulation: the traced
        // sweep's metrics are bit-identical to the untraced run, every
        // supported channel cell carries telemetry, and the telemetry
        // itself is invariant under the worker count.
        let cfg = |jobs| RunConfig {
            quick: true,
            jobs,
            trace: TraceMode::Summary,
            ..RunConfig::default()
        };
        let plain = run_experiment(&Tab3AllChannels, true, 1);
        let traced = run_experiment_with(&Tab3AllChannels, &cfg(1)).expect("no store attached");
        let traced4 = run_experiment_with(&Tab3AllChannels, &cfg(4)).expect("no store attached");
        assert_eq!(plain.cells.len(), traced.cells.len());
        for ((p, t), t4) in plain.cells.iter().zip(&traced.cells).zip(&traced4.cells) {
            assert_eq!(p.metrics(), t.metrics(), "{}", p.cell.key);
            assert_eq!(t.telemetry(), t4.telemetry(), "{}", p.cell.key);
            if t.metrics().is_some() {
                let tel = t.telemetry().expect("channel cells attach telemetry");
                assert_eq!(tel.mode, TraceMode::Summary, "{}", p.cell.key);
                assert!(tel.summary.iterations > 0, "{}", p.cell.key);
            }
        }
    }

    #[test]
    fn quick_grids_are_parallel_deterministic() {
        // The heavyweight full grids are covered by the golden-output
        // integration tests in leaky_bench; here the quick variants of
        // every registered sweep must be bit-identical at jobs 1 vs 4.
        let reg = standard_registry();
        for exp in reg.iter() {
            let a = run_experiment(exp, true, 1);
            let b = run_experiment(exp, true, 4);
            assert_eq!(a.cells.len(), b.cells.len(), "{}", exp.name());
            for (x, y) in a.cells.iter().zip(&b.cells) {
                assert_eq!(x, y, "{} diverged at jobs 4", exp.name());
            }
            assert_eq!(a.summaries.len(), b.summaries.len());
            for (x, y) in a.summaries.iter().zip(&b.summaries) {
                assert_eq!(x, y, "{} summary diverged", exp.name());
            }
        }
    }
}

//! Demo sweep exercising the derived per-cell RNG streams.
//!
//! The four migrated paper sweeps pin their legacy seeds (their
//! committed outputs predate this subsystem), so this small grid is the
//! registry's living example of the content-key seed derivation: each
//! cell draws from [`crate::seed::cell_rng`] and summarizes its own
//! stream. If stream derivation ever became order- or thread-dependent,
//! the determinism tests over this spec would catch it.

use super::profile;
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment, Metric};
use crate::seed::cell_rng;
use leaky_stats::OnlineStats;
use rand::Rng as _;

/// Seed-derivation demo: per-cell uniform-sample summaries.
pub struct RngStreamGrid;

impl Experiment for RngStreamGrid {
    fn name(&self) -> &'static str {
        "rng_stream_grid"
    }

    fn title(&self) -> &'static str {
        "derived per-cell RNG streams: uniform-sample summaries"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_ints("stream", 0..8)
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        let samples = if cell.str("profile") == "quick" {
            512
        } else {
            4096
        };
        let mut rng = cell_rng(cell);
        let stats: OnlineStats = (0..samples).map(|_| rng.gen_range(0.0..1.0)).collect();
        Some(
            vec![
                Metric::new("seed_lo32", (cell.seed & 0xffff_ffff) as f64),
                Metric::new("mean", stats.mean()),
                Metric::new("std_dev", stats.std_dev()),
            ]
            .into(),
        )
    }
}

//! Figure 8: MT eviction channel vs receiver way number `d` (spec
//! behind the `fig8_d_sweep` binary). Channels come from the registry
//! with a per-cell `d` parameter override.

use super::{machine, profile};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment, Metric};
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::{ChannelParams, MessagePattern};
use leaky_trace::{TraceHook, TraceMode};

/// The three SMT machines the legacy binary sweeps, in its order.
pub const MACHINES: [&str; 3] = ["Gold 6226", "Xeon E-2174G", "Xeon E-2286G"];

/// Receiver way numbers swept (paper Fig. 8's x-axis).
pub const D_RANGE: std::ops::RangeInclusive<i64> = 1..=8;

/// Fig. 8 sweep: machine × d.
pub struct Fig8DSweep;

impl Experiment for Fig8DSweep {
    fn name(&self) -> &'static str {
        "fig8_d_sweep"
    }

    fn title(&self) -> &'static str {
        "Figure 8: MT Eviction-Based channel vs receiver way number d"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("machine", MACHINES)
            .axis_ints("d", D_RANGE)
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        self.run_cell_traced(cell, TraceMode::Off)
    }

    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let bits = if cell.str("profile") == "quick" {
            16
        } else {
            96
        };
        let d = cell.int("d") as usize;
        // Legacy seed schedule (1000 + d), pinned by the pre-migration
        // binary; all three machines are SMT-capable, so `expect` holds.
        let mut ch = ChannelSpec::new("mt-eviction")
            .model(machine(cell.str("machine")))
            .params(ChannelParams::mt_defaults().with_d(d))
            .seed(1000 + d as u64)
            .build()
            .expect("SMT machine"); // lint: allow(panic-path) — all fig8 machines are SMT-capable (comment above)
        ch.set_trace(TraceHook::new(trace));
        let run = ch.transmit(&MessagePattern::Alternating.generate(bits, 0));
        Some(
            CellMeasurement::with_provenance(
                vec![
                    Metric::new("rate_kbps", run.rate_kbps()),
                    Metric::new("error_rate", run.error_rate()),
                    Metric::new("effective_kbps", run.effective_rate_kbps()),
                    Metric::new("capacity_kbps", run.capacity_kbps()),
                ],
                run.provenance().cloned(),
            )
            .with_telemetry(ch.take_trace().into_telemetry()),
        )
    }
}

//! Table II: the MT Eviction-Based channel at d = 1 across the four
//! message patterns on the three SMT-capable machines (spec behind the
//! `tab2_mt_patterns` binary).
//!
//! Paper shape: all-0s and all-1s transmit error-free, alternating shows
//! moderate errors, random is slowest with the highest error rate.

use super::{channel_cell_traced, machine, profile};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment};
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::{ChannelParams, MessagePattern};
use leaky_trace::TraceMode;

/// Legacy channel seed pinned by the pre-migration binary.
const SEED: u64 = 99;
/// Legacy message seed (only [`MessagePattern::Random`] consumes it).
const MESSAGE_SEED: u64 = 7;

/// Row labels, in [`MessagePattern::all`] order (the axis vocabulary is
/// the patterns' `Display` labels).
pub const PATTERNS: [&str; 4] = ["all-0s", "all-1s", "alternating", "random"];

/// Table II sweep: message pattern × SMT machine.
pub struct Tab2MtPatterns;

impl Tab2MtPatterns {
    fn bits(quick: bool) -> usize {
        // Full matches the legacy binary; MT bit slots are expensive
        // (p = 1000 decode iterations per bit), so quick stays small.
        if quick {
            24
        } else {
            96
        }
    }

    /// The three Table I machines with SMT enabled, in legacy column
    /// order.
    fn machines() -> [ProcessorModel; 3] {
        [
            ProcessorModel::gold_6226(),
            ProcessorModel::xeon_e2174g(),
            ProcessorModel::xeon_e2286g(),
        ]
    }

    fn pattern(label: &str) -> MessagePattern {
        MessagePattern::all()
            .into_iter()
            .find(|p| p.to_string() == label)
            .unwrap_or_else(|| panic!("unknown message pattern {label:?}"))
    }
}

impl Experiment for Tab2MtPatterns {
    fn name(&self) -> &'static str {
        "tab2_mt_patterns"
    }

    fn title(&self) -> &'static str {
        "Table II: MT Eviction-Based channel, d = 1, by message pattern"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("pattern", PATTERNS)
            .axis_strs("machine", Self::machines().map(|m| m.name))
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        self.run_cell_traced(cell, TraceMode::Off)
    }

    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let quick = cell.str("profile") == "quick";
        let pattern = Self::pattern(cell.str("pattern"));
        let spec = ChannelSpec::new("mt-eviction")
            .model(machine(cell.str("machine")))
            .params(ChannelParams::mt_defaults().with_d(1))
            .seed(SEED);
        let message = pattern.generate(Self::bits(quick), MESSAGE_SEED);
        channel_cell_traced(&spec, &message, trace)
    }
}

//! Table III: every eviction-/misalignment-based covert channel on all
//! four Table I machines (spec behind the `tab3_all_channels` binary).

use super::{machine, profile};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{Experiment, Metric};
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends::params::{ChannelParams, EncodeMode, MessagePattern};

/// Legacy seed pinned by the pre-migration binary; keeps the committed
/// Table III numbers bit-identical.
const SEED: u64 = 1234;

/// Row labels, in the paper's (and the legacy binary's) order.
pub const CHANNELS: [&str; 6] = [
    "non-mt-stealthy-eviction",
    "non-mt-stealthy-misalignment",
    "non-mt-fast-eviction",
    "non-mt-fast-misalignment",
    "mt-eviction",
    "mt-misalignment",
];

/// Table III sweep: channel × machine.
pub struct Tab3AllChannels;

impl Tab3AllChannels {
    fn bits(quick: bool) -> (usize, usize) {
        // (non-MT bits, MT bits); full matches the legacy binary.
        if quick {
            (32, 24)
        } else {
            (256, 96)
        }
    }
}

impl Experiment for Tab3AllChannels {
    fn name(&self) -> &'static str {
        "tab3_all_channels"
    }

    fn title(&self) -> &'static str {
        "Table III: covert-channel rates (Kbps) and error rates, alternating message"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("channel", CHANNELS)
            .axis_strs("machine", ProcessorModel::all().map(|m| m.name))
    }

    fn run_cell(&self, cell: &JobCell) -> Option<Vec<Metric>> {
        let quick = cell.str("profile") == "quick";
        let (bits, mt_bits) = Self::bits(quick);
        let model = machine(cell.str("machine"));
        let run = match cell.str("channel") {
            "non-mt-stealthy-eviction" => {
                non_mt(model, NonMtKind::Eviction, EncodeMode::Stealthy, bits)
            }
            "non-mt-stealthy-misalignment" => {
                non_mt(model, NonMtKind::Misalignment, EncodeMode::Stealthy, bits)
            }
            "non-mt-fast-eviction" => non_mt(model, NonMtKind::Eviction, EncodeMode::Fast, bits),
            "non-mt-fast-misalignment" => {
                non_mt(model, NonMtKind::Misalignment, EncodeMode::Fast, bits)
            }
            "mt-eviction" => mt(model, MtKind::Eviction, mt_bits)?,
            "mt-misalignment" => mt(model, MtKind::Misalignment, mt_bits)?,
            other => panic!("unknown channel {other:?}"),
        };
        Some(run)
    }
}

fn metrics_of(run: &leaky_frontends::run::ChannelRun) -> Vec<Metric> {
    vec![
        Metric::new("rate_kbps", run.rate_kbps()),
        Metric::new("error_rate", run.error_rate()),
        Metric::new("capacity_kbps", run.capacity_kbps()),
    ]
}

fn non_mt(model: ProcessorModel, kind: NonMtKind, mode: EncodeMode, bits: usize) -> Vec<Metric> {
    let params = match kind {
        NonMtKind::Eviction => ChannelParams::eviction_defaults(),
        NonMtKind::Misalignment => ChannelParams::misalignment_defaults(),
    };
    let mut ch = NonMtChannel::new(model, kind, mode, params, SEED);
    metrics_of(&ch.transmit(&MessagePattern::Alternating.generate(bits, 0)))
}

/// `None` on machines with SMT disabled (no MT columns in the paper).
fn mt(model: ProcessorModel, kind: MtKind, bits: usize) -> Option<Vec<Metric>> {
    let params = match kind {
        MtKind::Eviction => ChannelParams::mt_defaults(),
        MtKind::Misalignment => ChannelParams::mt_misalignment_defaults(),
    };
    let mut ch = MtChannel::new(model, kind, params, SEED).ok()?;
    Some(metrics_of(
        &ch.transmit(&MessagePattern::Alternating.generate(bits, 0)),
    ))
}

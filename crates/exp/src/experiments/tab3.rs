//! Table III: every eviction-/misalignment-based covert channel on all
//! four Table I machines (spec behind the `tab3_all_channels` binary).
//!
//! The channel axis values *are* channel-registry names: each cell
//! builds its channel through [`ChannelSpec`] instead of matching on
//! concrete types, and the committed output stays bit-identical because
//! the registry build is a relabeling of the legacy constructors.

use super::{channel_cell_traced, machine, profile};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment};
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::{channel_info, ChannelSpec};
use leaky_frontends::params::MessagePattern;
use leaky_trace::TraceMode;

/// Legacy seed pinned by the pre-migration binary; keeps the committed
/// Table III numbers bit-identical.
const SEED: u64 = 1234;

/// Row labels, in the paper's (and the legacy binary's) order — all
/// channel-registry names.
pub const CHANNELS: [&str; 6] = [
    "non-mt-stealthy-eviction",
    "non-mt-stealthy-misalignment",
    "non-mt-fast-eviction",
    "non-mt-fast-misalignment",
    "mt-eviction",
    "mt-misalignment",
];

/// Table III sweep: channel × machine.
pub struct Tab3AllChannels;

impl Tab3AllChannels {
    fn bits(quick: bool) -> (usize, usize) {
        // (non-MT bits, MT bits); full matches the legacy binary.
        if quick {
            (32, 24)
        } else {
            (256, 96)
        }
    }
}

impl Experiment for Tab3AllChannels {
    fn name(&self) -> &'static str {
        "tab3_all_channels"
    }

    fn title(&self) -> &'static str {
        "Table III: covert-channel rates (Kbps) and error rates, alternating message"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("channel", CHANNELS)
            .axis_strs("machine", ProcessorModel::all().map(|m| m.name))
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        self.run_cell_traced(cell, TraceMode::Off)
    }

    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let quick = cell.str("profile") == "quick";
        let (bits, mt_bits) = Self::bits(quick);
        let channel = cell.str("channel");
        // MT bit slots are ~100x more expensive (p = 1000 decode
        // iterations per bit); the registry's SMT requirement is the
        // single source for which channels those are.
        let bits = if channel_info(channel).is_some_and(|i| i.requires_smt) {
            mt_bits
        } else {
            bits
        };
        let spec = ChannelSpec::new(channel)
            .model(machine(cell.str("machine")))
            .seed(SEED);
        channel_cell_traced(&spec, &MessagePattern::Alternating.generate(bits, 0), trace)
    }
}

//! Table V: non-MT power-based covert channels on the Gold 6226 (spec
//! behind the `tab5_power_channels` binary).

use super::{machine, profile};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{Experiment, Metric};
use leaky_frontends::channels::non_mt::NonMtKind;
use leaky_frontends::channels::power::PowerChannel;
use leaky_frontends::params::{ChannelParams, MessagePattern};

/// Legacy seed pinned by the pre-migration binary.
const SEED: u64 = 55;

/// Table V sweep: channel kind on the Gold 6226.
pub struct Tab5PowerChannels;

impl Experiment for Tab5PowerChannels {
    fn name(&self) -> &'static str {
        "tab5_power_channels"
    }

    fn title(&self) -> &'static str {
        "Table V: non-MT power-based channels (Gold 6226), alternating message"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("kind", ["eviction", "misalignment"])
    }

    fn run_cell(&self, cell: &JobCell) -> Option<Vec<Metric>> {
        let bits = if cell.str("profile") == "quick" {
            16
        } else {
            64
        };
        let (kind, params) = match cell.str("kind") {
            "eviction" => (NonMtKind::Eviction, ChannelParams::power_defaults()),
            "misalignment" => (
                NonMtKind::Misalignment,
                ChannelParams {
                    d: 5,
                    ..ChannelParams::power_defaults()
                },
            ),
            other => panic!("unknown kind {other:?}"),
        };
        let mut ch = PowerChannel::new(machine("Gold 6226"), kind, params, SEED);
        let run = ch.transmit(&MessagePattern::Alternating.generate(bits, 0));
        Some(vec![
            Metric::new("rate_kbps", run.rate_kbps()),
            Metric::new("error_rate", run.error_rate()),
            Metric::new("capacity_kbps", run.capacity_kbps()),
        ])
    }
}

//! Table V: non-MT power-based covert channels on the Gold 6226 (spec
//! behind the `tab5_power_channels` binary). The `kind` axis maps onto
//! the registry's `power-*` channel family.

use super::{channel_cell_traced, machine, profile};
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment};
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::MessagePattern;
use leaky_trace::TraceMode;

/// Legacy seed pinned by the pre-migration binary.
const SEED: u64 = 55;

/// Table V sweep: channel kind on the Gold 6226.
pub struct Tab5PowerChannels;

impl Experiment for Tab5PowerChannels {
    fn name(&self) -> &'static str {
        "tab5_power_channels"
    }

    fn title(&self) -> &'static str {
        "Table V: non-MT power-based channels (Gold 6226), alternating message"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("kind", ["eviction", "misalignment"])
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        self.run_cell_traced(cell, TraceMode::Off)
    }

    fn run_cell_traced(&self, cell: &JobCell, trace: TraceMode) -> Option<CellMeasurement> {
        let bits = if cell.str("profile") == "quick" {
            16
        } else {
            64
        };
        // Registry defaults already encode the paper's operating points
        // (d = 6 eviction / d = 5 misalignment at p = q = 240 000).
        let spec = ChannelSpec::new(format!("power-{}", cell.str("kind")))
            .model(machine("Gold 6226"))
            .seed(SEED);
        channel_cell_traced(&spec, &MessagePattern::Alternating.generate(bits, 0), trace)
    }
}

//! Table VII: Spectre v1 L1 miss rates per disclosure channel (spec
//! behind the `tab7_spectre_miss_rates` binary).

use super::profile;
use crate::grid::{JobCell, ParamGrid};
use crate::runner::{CellMeasurement, Experiment, Metric};
use leaky_spectre::{ChannelKind, SpectreV1};

/// Legacy seed pinned by the pre-migration binary.
const SEED: u64 = 2024;

/// Table VII sweep: one cell per disclosure channel; each cell runs the
/// full Spectre v1 attack and reports cache-footprint metrics. The
/// legacy binary's `table7()` loop is embarrassingly parallel — every
/// attack owns its core, victim, and RNG — so cells are independent.
pub struct Tab7SpectreMissRates;

/// The legacy binary's secret: 5-bit chunks `(i·7 + 3) mod 32`.
fn secret(chunks: usize) -> Vec<u8> {
    (0..chunks as u8).map(|i| (i * 7 + 3) % 32).collect()
}

impl Experiment for Tab7SpectreMissRates {
    fn name(&self) -> &'static str {
        "tab7_spectre_miss_rates"
    }

    fn title(&self) -> &'static str {
        "Table VII: Spectre v1 L1 miss rates by disclosure channel (Gold 6226)"
    }

    fn grid(&self, quick: bool) -> ParamGrid {
        ParamGrid::new(self.name())
            .axis_strs("profile", [profile(quick)])
            .axis_strs("channel", ChannelKind::all().map(ChannelKind::label))
    }

    fn run_cell(&self, cell: &JobCell) -> Option<CellMeasurement> {
        let chunks = if cell.str("profile") == "quick" {
            6
        } else {
            24
        };
        let kind = ChannelKind::all()
            .into_iter()
            .find(|k| k.label() == cell.str("channel"))
            .unwrap_or_else(|| panic!("unknown channel {:?}", cell.str("channel"))); // lint: allow(panic-path) — grid emits only ChannelKind labels
        let mut attack = SpectreV1::new(kind, secret(chunks), SEED);
        let result = attack.leak();
        Some(
            vec![
                Metric::new("l1_miss_rate", result.l1_miss_rate()),
                Metric::new("accuracy", result.accuracy()),
                Metric::new("l1i_misses", result.l1i_misses as f64),
                Metric::new("l1d_misses", result.l1d_misses as f64),
            ]
            .into(),
        )
    }
}

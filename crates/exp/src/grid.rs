//! Declarative parameter grids and their expansion into job cells.

use crate::seed::derive_seed;
use std::fmt;

/// One coordinate value of a grid axis.
///
/// Integers cover counts and distances (`d = 1..8`, message bits);
/// strings cover categorical axes (channel kind, machine name). Floats
/// are deliberately absent: a float in a content key would make seeds
/// hostage to formatting, and no paper sweep needs one as a *coordinate*.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AxisValue {
    /// An integer coordinate.
    Int(i64),
    /// A categorical coordinate.
    Str(String),
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Int(v) => write!(f, "{v}"),
            AxisValue::Str(s) => f.write_str(s),
        }
    }
}

/// A named axis with its ordered coordinate values.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis name as it appears in content keys and table headers.
    pub name: String,
    /// Coordinate values, in sweep order.
    pub values: Vec<AxisValue>,
}

/// A declarative parameter grid: the cross product of its axes.
///
/// # Examples
///
/// ```
/// use leaky_exp::ParamGrid;
///
/// let grid = ParamGrid::new("demo")
///     .axis_ints("d", 1..=3)
///     .axis_strs("machine", ["A", "B"]);
/// assert_eq!(grid.len(), 6);
/// let cells = grid.expand();
/// // Row-major: the last axis varies fastest.
/// assert_eq!(cells[0].key, "demo/d=1/machine=A");
/// assert_eq!(cells[1].key, "demo/d=1/machine=B");
/// assert_eq!(cells[5].key, "demo/d=3/machine=B");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGrid {
    experiment: String,
    axes: Vec<Axis>,
}

impl ParamGrid {
    /// Creates an empty grid for the named experiment.
    pub fn new(experiment: impl Into<String>) -> Self {
        ParamGrid {
            experiment: experiment.into(),
            axes: Vec::new(),
        }
    }

    /// Appends an axis of integer coordinates.
    pub fn axis_ints<I: IntoIterator<Item = i64>>(self, name: &str, values: I) -> Self {
        self.push_axis(name, values.into_iter().map(AxisValue::Int).collect())
    }

    /// Appends an axis of categorical coordinates.
    pub fn axis_strs<I, S>(self, name: &str, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.push_axis(
            name,
            values
                .into_iter()
                .map(|s| AxisValue::Str(s.into()))
                .collect(),
        )
    }

    fn push_axis(mut self, name: &str, values: Vec<AxisValue>) -> Self {
        assert!(!values.is_empty(), "axis {name:?} has no values");
        assert!(
            !self.axes.iter().any(|a| a.name == name),
            "duplicate axis {name:?}"
        );
        self.axes.push(Axis {
            name: name.to_string(),
            values,
        });
        self
    }

    /// The experiment name this grid belongs to.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of cells (product of axis lengths; 1 for an axis-less grid).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expands the grid into ordered cells, row-major (the *last* axis
    /// varies fastest), each with its content key and derived seed.
    pub fn expand(&self) -> Vec<JobCell> {
        let n = self.len();
        let mut cells = Vec::with_capacity(n);
        for index in 0..n {
            // Decompose the flat index into per-axis coordinates.
            let mut rem = index;
            let mut coords = vec![0usize; self.axes.len()];
            for (slot, axis) in coords.iter_mut().zip(&self.axes).rev() {
                *slot = rem % axis.values.len();
                rem /= axis.values.len();
            }
            let coords: Vec<(String, AxisValue)> = self
                .axes
                .iter()
                .zip(coords)
                .map(|(axis, i)| (axis.name.clone(), axis.values[i].clone()))
                .collect();
            let mut key = self.experiment.clone();
            for (name, value) in &coords {
                key.push('/');
                key.push_str(name);
                key.push('=');
                key.push_str(&value.to_string());
            }
            let seed = derive_seed(&key);
            cells.push(JobCell {
                index,
                key,
                coords,
                seed,
                attempt: 0,
            });
        }
        cells
    }
}

/// One executable cell of an expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCell {
    /// Position in grid order; the ordered collector merges by this.
    pub index: usize,
    /// Content key: `experiment/axis=value/...` — names *what* the cell
    /// computes, independent of scheduling.
    pub key: String,
    /// Axis coordinates, in axis declaration order.
    pub coords: Vec<(String, AxisValue)>,
    /// Deterministic RNG seed, derived from `key` (see [`crate::seed`]).
    pub seed: u64,
    /// Which execution attempt this is (0 on first execution; the
    /// runner's bounded retry re-dispatches a panicked cell with the
    /// attempt bumped, which [`crate::seed::cell_rng`] folds into the
    /// cell's stream so a retry replays *different* — but still fully
    /// deterministic — randomness).
    pub attempt: u32,
}

impl JobCell {
    /// A copy of this cell marked as retry attempt `attempt`
    /// (attempt 0 is the cell itself).
    pub fn with_attempt(&self, attempt: u32) -> JobCell {
        JobCell {
            attempt,
            ..self.clone()
        }
    }
    /// The coordinate of the named axis, if present.
    pub fn get(&self, axis: &str) -> Option<&AxisValue> {
        self.coords
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v)
    }

    /// The integer coordinate of the named axis.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not an integer — both are spec
    /// bugs, not runtime conditions.
    pub fn int(&self, axis: &str) -> i64 {
        match self.get(axis) {
            Some(AxisValue::Int(v)) => *v,
            other => panic!("axis {axis:?}: expected Int, got {other:?}"),
        }
    }

    /// The categorical coordinate of the named axis.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or not categorical.
    pub fn str(&self, axis: &str) -> &str {
        match self.get(axis) {
            Some(AxisValue::Str(s)) => s,
            other => panic!("axis {axis:?}: expected Str, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ParamGrid {
        ParamGrid::new("t")
            .axis_strs("ch", ["a", "b", "c"])
            .axis_ints("d", 1..=4)
    }

    #[test]
    fn expansion_is_row_major_and_complete() {
        let cells = demo().expand();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].key, "t/ch=a/d=1");
        assert_eq!(cells[3].key, "t/ch=a/d=4");
        assert_eq!(cells[4].key, "t/ch=b/d=1");
        assert_eq!(cells[11].key, "t/ch=c/d=4");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn coordinate_accessors() {
        let cells = demo().expand();
        assert_eq!(cells[5].str("ch"), "b");
        assert_eq!(cells[5].int("d"), 2);
        assert_eq!(cells[5].get("missing"), None);
    }

    #[test]
    fn seeds_are_distinct_and_content_addressed() {
        let a = demo().expand();
        let b = demo().expand();
        // Same content ⇒ same seeds; distinct cells ⇒ distinct seeds.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
        }
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 12, "cell seeds collided");
        // A different experiment name shifts every stream.
        let other = ParamGrid::new("u")
            .axis_strs("ch", ["a", "b", "c"])
            .axis_ints("d", 1..=4)
            .expand();
        assert!(a.iter().zip(&other).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn axis_less_grid_is_one_cell() {
        let cells = ParamGrid::new("solo").expand();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].key, "solo");
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_rejected() {
        let _ = ParamGrid::new("t")
            .axis_ints("d", 0..2)
            .axis_ints("d", 0..2);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_axis_rejected() {
        let _ = ParamGrid::new("t").axis_ints("d", 0..0);
    }
}

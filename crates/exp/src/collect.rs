//! Ordered result collection: re-sequencing out-of-order completions.

/// Collects `(index, value)` completions arriving in any order and
/// releases them in index order, so a parallel sweep's downstream fold
/// (table rows, Welford merges, JSON arrays) is independent of worker
/// scheduling.
#[derive(Debug)]
pub struct OrderedCollector<T> {
    slots: Vec<Option<T>>,
    filled: usize,
}

impl<T> OrderedCollector<T> {
    /// Creates a collector expecting exactly `n` results.
    pub fn new(n: usize) -> Self {
        OrderedCollector {
            slots: (0..n).map(|_| None).collect(),
            filled: 0,
        }
    }

    /// Records the result of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a duplicate delivery — both
    /// indicate a pool bug, and silently dropping either would corrupt
    /// the sweep.
    pub fn insert(&mut self, index: usize, value: T) {
        assert!(
            index < self.slots.len(),
            "result index {index} out of range"
        );
        assert!(
            self.slots[index].is_none(),
            "duplicate result for cell {index}"
        );
        self.slots[index] = Some(value);
        self.filled += 1;
    }

    /// Number of results recorded so far.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Whether every expected result has arrived.
    pub fn is_complete(&self) -> bool {
        self.filled == self.slots.len()
    }

    /// Releases the results in index order.
    ///
    /// # Panics
    ///
    /// Panics if any cell is missing (a worker died without reporting).
    pub fn into_ordered(self) -> Vec<T> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} never reported")))
            .collect()
    }

    /// Releases whatever arrived, in index order, with `None` holes for
    /// cells that never reported — the stopped-early counterpart of
    /// [`into_ordered`](Self::into_ordered), used when a sweep is
    /// deliberately halted mid-grid.
    pub fn into_partial(self) -> Vec<Option<T>> {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorders_out_of_order_completions() {
        let mut c = OrderedCollector::new(4);
        for i in [2usize, 0, 3, 1] {
            assert!(!c.is_complete());
            c.insert(i, i * 10);
        }
        assert!(c.is_complete());
        assert_eq!(c.into_ordered(), vec![0, 10, 20, 30]);
    }

    #[test]
    fn empty_collector_is_trivially_complete() {
        let c: OrderedCollector<u8> = OrderedCollector::new(0);
        assert!(c.is_complete());
        assert!(c.into_ordered().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn duplicate_delivery_panics() {
        let mut c = OrderedCollector::new(2);
        c.insert(1, ());
        c.insert(1, ());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let mut c = OrderedCollector::new(2);
        c.insert(2, ());
    }

    #[test]
    fn partial_release_keeps_holes_in_place() {
        let mut c = OrderedCollector::new(4);
        c.insert(2, "c");
        c.insert(0, "a");
        assert_eq!(
            c.into_partial(),
            vec![Some("a"), None, Some("c"), None],
            "holes must stay at the indices that never reported"
        );
    }

    #[test]
    #[should_panic(expected = "cell 1 never reported")]
    fn incomplete_release_panics() {
        let mut c = OrderedCollector::new(2);
        c.insert(0, ());
        let _ = c.into_ordered();
    }
}

//! `leaky_exp` — deterministic parallel experiment orchestration.
//!
//! The paper's headline results (Tables II–VII, Figs. 8–12) are
//! parameter sweeps: a grid of channel × machine × parameter cells, each
//! cell an independent simulation. This crate turns those sweeps into a
//! subsystem (DESIGN.md §7):
//!
//! * [`grid`] expands a declarative [`ParamGrid`] into ordered
//!   [`JobCell`]s, each with a stable *content key* naming its
//!   coordinates.
//! * [`seed`] derives a per-cell RNG seed by running splitmix64 over the
//!   cell's content key, so a cell's random stream depends only on *what*
//!   it computes — never on scheduling, worker count, or sibling cells.
//! * [`pool`] runs cells on a hand-rolled scoped worker pool
//!   (`std::thread::scope`; the container has no crates.io access) and
//!   [`collect::OrderedCollector`] re-sequences completions by cell
//!   index, so downstream folds see results in grid order regardless of
//!   which worker finished first.
//! * [`runner`] ties it together: an [`Experiment`] produces named f64
//!   metrics per cell; summaries fold per-cell Welford accumulators with
//!   `leaky_stats::summary::merge_ordered`, keeping output bit-identical
//!   at any `--jobs N`. A panicking cell is caught per-attempt and
//!   becomes a structured [`CellOutcome::Failed`] row (with bounded,
//!   deterministically re-seeded retries) instead of killing the sweep,
//!   and [`RunConfig`] wires in the `leaky_store` result store for
//!   crash-safe, resumable sweeps.
//! * [`fault`] is the deterministic fault-injection harness: a
//!   [`FaultPlan`] keyed by cell content key injects panics, errors,
//!   mid-grid aborts, and store corruption, so the recovery paths above
//!   are exercised by tests and CI drills, not just believed in.
//! * [`experiments`] registers the migrated paper sweeps
//!   (`tab3_all_channels`, `fig8_d_sweep`, `tab5_power_channels`,
//!   `tab7_spectre_miss_rates`) plus an RNG-stream demo grid; the
//!   `leaky_sweep` binary in `leaky_bench` is the unified CLI over this
//!   registry, and the legacy figure/table binaries are thin wrappers.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod collect;
pub mod experiments;
pub mod fault;
pub mod grid;
pub mod pool;
pub mod runner;
pub mod seed;

pub use collect::OrderedCollector;
pub use experiments::standard_registry;
pub use fault::{Fault, FaultKind, FaultParseError, FaultPlan};
pub use grid::{Axis, AxisValue, JobCell, ParamGrid};
pub use pool::{run_ordered, run_ordered_observed, CellPanic, Flow, PoolRun};
pub use runner::{
    code_fingerprint, run_experiment, run_experiment_with, CellMeasurement, CellOutcome,
    CellProvenance, CellResult, DuplicateExperiment, Experiment, Metric, Registry, RunConfig,
    SweepError, SweepRun,
};
pub use seed::{attempt_seed, cell_rng, derive_seed};

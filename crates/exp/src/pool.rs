//! Hand-rolled scoped worker pool (`std::thread::scope`).
//!
//! The container builds with no crates.io access, so there is no rayon;
//! the pool is a work-stealing-free classic: an atomic next-index
//! counter hands cells to workers, completions flow through an mpsc
//! channel, and an [`OrderedCollector`] re-sequences them. Determinism
//! does not depend on the pool at all — cells are pure functions of
//! their index, and ordering is restored at collection — so any `jobs`
//! count produces identical output.

use crate::collect::OrderedCollector;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Runs `f(0..n)` on `jobs` worker threads and returns the results in
/// index order.
///
/// `jobs` is clamped to `[1, n]`; `jobs == 1` runs inline on the caller
/// thread (no pool, no channel), which is also the reference order the
/// parallel path must reproduce.
///
/// # Panics
///
/// A panicking cell propagates: the scope joins all workers and re-raises.
pub fn run_ordered<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut collector = OrderedCollector::new(n);
    thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A closed receiver means the collector bailed; stop early.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            collector.insert(i, value);
        }
    });
    collector.into_ordered()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_matches_sequential() {
        let cell = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(7);
        let seq = run_ordered(1, 100, cell);
        for jobs in [2, 4, 7, 100, 5000] {
            assert_eq!(run_ordered(jobs, 100, cell), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = run_ordered(8, 64, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn slow_early_cells_do_not_scramble_order() {
        // Make low indices finish last: order must still be by index.
        let out = run_ordered(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 200) as u64));
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_cells_is_empty() {
        let out: Vec<u8> = run_ordered(4, 0, |_| unreachable!("no cells to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_ordered(3, 8, |i| {
                if i == 5 {
                    panic!("cell 5 exploded");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}

//! Hand-rolled scoped worker pool (`std::thread::scope`).
//!
//! The container builds with no crates.io access, so there is no rayon;
//! the pool is a work-stealing-free classic: an atomic next-index
//! counter hands cells to workers, completions flow through an mpsc
//! channel, and an [`OrderedCollector`] re-sequences them. Determinism
//! does not depend on the pool at all — cells are pure functions of
//! their index, and ordering is restored at collection — so any `jobs`
//! count produces identical output.
//!
//! The pool is fault-isolated: a panic inside one cell is caught *in the
//! worker* and delivered as an `Err(CellPanic)` completion, so a dying
//! cell can neither kill its worker thread nor leave a hole that
//! poisons the [`OrderedCollector`]. [`run_ordered_observed`] exposes
//! the full machinery (streaming observation, early stop, partial
//! results); [`run_ordered`] keeps the original all-or-nothing contract
//! on top of it.

use crate::collect::OrderedCollector;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// A panic caught inside one cell, reduced to its message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case); a placeholder otherwise.
    pub message: String,
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> CellPanic {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    CellPanic { message }
}

/// Observer verdict after each completion: keep going, or stop
/// dispatching and return what finished so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep running.
    Continue,
    /// Stop the sweep: workers wind down, undispatched cells never run.
    Stop,
}

/// What [`run_ordered_observed`] returns: per-index slots (in index
/// order) plus whether the observer stopped the run early. A `None`
/// slot means the cell never reported (only possible when `stopped`).
#[derive(Debug)]
pub struct PoolRun<T> {
    /// One slot per cell, in index order.
    pub slots: Vec<Option<Result<T, CellPanic>>>,
    /// Whether the observer stopped the run before completion.
    pub stopped: bool,
}

/// Runs `f(0..n)` on `jobs` worker threads with per-cell panic
/// isolation, invoking `observe` on the caller thread as each completion
/// arrives (in *arrival* order — observers must not depend on it for
/// anything deterministic; the returned slots are in index order).
///
/// `jobs` is clamped to `[1, n]`; `jobs == 1` runs inline on the caller
/// thread (no pool, no channel), which is also the reference order the
/// parallel path must reproduce.
///
/// # Panics
///
/// Panics on an out-of-range or duplicate cell delivery
/// (`OrderedCollector::insert`) — either indicates a pool bug.
pub fn run_ordered_observed<T, F, O>(jobs: usize, n: usize, f: F, mut observe: O) -> PoolRun<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: FnMut(usize, &Result<T, CellPanic>) -> Flow,
{
    if n == 0 {
        return PoolRun {
            slots: Vec::new(),
            stopped: false,
        };
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        let mut slots: Vec<Option<Result<T, CellPanic>>> = (0..n).map(|_| None).collect();
        for i in 0..n {
            let result = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(panic_message);
            let flow = observe(i, &result);
            slots[i] = Some(result);
            if flow == Flow::Stop {
                return PoolRun {
                    slots,
                    stopped: true,
                };
            }
        }
        return PoolRun {
            slots,
            stopped: false,
        };
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, CellPanic>)>();
    let mut collector = OrderedCollector::new(n);
    let mut stopped = false;
    thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(panic_message);
                // A closed receiver means the collector stopped; wind down.
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((i, result)) = rx.recv() {
            let flow = observe(i, &result);
            collector.insert(i, result);
            if flow == Flow::Stop {
                stopped = true;
                // Dropping the receiver closes the channel; workers see
                // the failed send and exit after their in-flight cell.
                drop(rx);
                break;
            }
        }
    });
    PoolRun {
        slots: collector.into_partial(),
        stopped,
    }
}

/// Runs `f(0..n)` on `jobs` worker threads and returns the results in
/// index order.
///
/// # Panics
///
/// A panicking cell propagates: the pool contains it long enough for
/// every other cell to finish, then re-raises with the original message.
pub fn run_ordered<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = run_ordered_observed(jobs, n, f, |_, _| Flow::Continue);
    run.slots
        .into_iter()
        .enumerate()
        .map(
            |(i, slot)| match slot.unwrap_or_else(|| panic!("cell {i} never reported")) {
                Ok(value) => value,
                Err(p) => panic!("cell {i} panicked: {}", p.message),
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_matches_sequential() {
        let cell = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(7);
        let seq = run_ordered(1, 100, cell);
        for jobs in [2, 4, 7, 100, 5000] {
            assert_eq!(run_ordered(jobs, 100, cell), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = run_ordered(8, 64, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn slow_early_cells_do_not_scramble_order() {
        // Make low indices finish last: order must still be by index.
        let out = run_ordered(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 200) as u64));
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_cells_is_empty() {
        let out: Vec<u8> = run_ordered(4, 0, |_| unreachable!("no cells to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_ordered(3, 8, |i| {
                if i == 5 {
                    panic!("cell 5 exploded");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn a_panicking_cell_does_not_poison_the_others() {
        // The fault-isolated entry point: every other cell completes and
        // is delivered in order; the dead cell arrives as Err with its
        // message intact. Identical at any worker count.
        for jobs in [1, 2, 4] {
            let run = run_ordered_observed(
                jobs,
                16,
                |i| {
                    if i == 5 {
                        panic!("cell 5 exploded");
                    }
                    i * 2
                },
                |_, _| Flow::Continue,
            );
            assert!(!run.stopped);
            assert_eq!(run.slots.len(), 16);
            for (i, slot) in run.slots.iter().enumerate() {
                match slot.as_ref().expect("every cell reports") {
                    Ok(v) => assert_eq!(*v, i * 2),
                    Err(p) => {
                        assert_eq!(i, 5, "only cell 5 panics");
                        assert_eq!(p.message, "cell 5 exploded");
                    }
                }
            }
        }
    }

    #[test]
    fn observer_stop_halts_dispatch() {
        for jobs in [1, 3] {
            let ran: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
            let run = run_ordered_observed(
                jobs,
                1000,
                |i| {
                    ran[i].fetch_add(1, Ordering::Relaxed);
                    // Pace the workers so the observer (which reacts
                    // immediately) stops the run long before the grid
                    // could drain on its own.
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    i
                },
                |i, _| {
                    if i == 10 {
                        Flow::Stop
                    } else {
                        Flow::Continue
                    }
                },
            );
            assert!(run.stopped, "jobs = {jobs}");
            let executed: usize = ran.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            assert!(
                executed < 1000,
                "jobs = {jobs}: stop must leave cells undispatched (ran {executed})"
            );
            // Slot 10 itself was observed and recorded.
            assert!(run.slots[10].is_some());
        }
    }

    #[test]
    fn observed_arrival_feeds_every_completion_exactly_once() {
        let mut seen = vec![0usize; 32];
        let run = run_ordered_observed(
            4,
            32,
            |i| i,
            |i, _| {
                seen[i] += 1;
                Flow::Continue
            },
        );
        assert!(seen.iter().all(|&c| c == 1));
        assert!(run.slots.iter().all(|s| s.is_some()));
    }
}

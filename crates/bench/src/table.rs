//! Minimal fixed-width table printer for the experiment binaries.

/// Prints aligned rows for the table/figure regeneration binaries.
#[derive(Debug, Default)]
pub struct TableWriter {
    widths: Vec<usize>,
}

impl TableWriter {
    /// Creates a writer with explicit column widths.
    pub fn new(widths: &[usize]) -> Self {
        TableWriter {
            widths: widths.to_vec(),
        }
    }

    /// Formats one row.
    pub fn row(&self, cells: &[String]) -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let w = self.widths.get(i).copied().unwrap_or(12);
                format!("{c:>w$}")
            })
            .collect::<Vec<_>>()
            .join("  ")
    }

    /// Prints one row to stdout.
    pub fn print_row(&self, cells: &[String]) {
        println!("{}", self.row(cells));
    }

    /// Prints a separator line matching the total width.
    pub fn print_sep(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + 2 * self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// Convenience: formats a float with the given precision.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_aligned() {
        let t = TableWriter::new(&[6, 8]);
        let r = t.row(&["a".into(), "b".into()]);
        assert_eq!(r.len(), 6 + 2 + 8);
        assert!(r.ends_with('b'));
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}

//! Shared channel diagnostics over the [`CovertChannel`] debug hooks.
//!
//! The debug binaries (`debug_channels`, `debug_d1`, `debug_mt`) all
//! want the same dump — the calibrated decoder's class means and
//! threshold, then a short run of raw per-bit measurements with their
//! decoded values — so it lives here once, expressed against the trait
//! instead of per concrete channel type.

use leaky_frontends::channels::CovertChannel;

/// Prints a channel's calibrated decoder followed by `bits` alternating
/// raw measurements and their decoded bits. Reports a dead channel (and
/// takes no measurements) when calibration finds indistinguishable
/// classes.
pub fn dump_channel(label: &str, ch: &mut dyn CovertChannel, bits: usize) {
    let identity = format!("{} on {}", ch.name(), ch.profile_key());
    match ch.debug_decoder() {
        None => println!("{label} [{identity}]: calibration failed (dead channel)"),
        Some(dec) => {
            println!(
                "{label} [{identity}] decoder: zero={:.2} one={:.2} thr={:.2} sep={:.2}",
                dec.zero_mean(),
                dec.one_mean(),
                dec.threshold(),
                dec.separation()
            );
            for i in 0..bits {
                let bit = i % 2 == 1;
                let m = ch.debug_measure(bit);
                println!(
                    "  bit={} meas={:.2} -> {}",
                    bit as u8,
                    m,
                    dec.decode(m) as u8
                );
            }
        }
    }
}

//! Shared channel diagnostics over the trace layer.
//!
//! The debug binaries (`debug_channels`, `debug_d1`, `debug_mt`,
//! `debug_phases`) all want the same dump — calibration, a short traced
//! run, the structured event stream, and the folded stall summary — so
//! it lives here once, rendered through the [`leaky_trace`] sinks
//! instead of bespoke printf paths.

use leaky_frontends::channels::CovertChannel;
use leaky_trace::{drain, StallSummary, TextSink, TraceEvent, TraceHook, TraceMode};

/// Prints `events` one per line through a [`TextSink`] on stdout.
pub fn print_events(events: &[TraceEvent]) {
    let stdout = std::io::stdout();
    let mut sink = TextSink::new(stdout.lock());
    let _ = drain(events, &mut sink);
}

/// Prints a stall summary's statistic rows (`stat = value`) to stdout.
pub fn print_summary(summary: &StallSummary) {
    for line in summary.csv_rows().lines().skip(1) {
        let (stat, value) = line.split_once(',').unwrap_or((line, ""));
        println!("summary {stat} = {value}");
    }
}

/// Runs a channel's calibration and a short alternating transmit under
/// an events-mode trace hook, then prints the channel-level events
/// (calibration thresholds, per-bit decode outcomes, session framing)
/// and the folded stall summary. A dead channel (failed calibration)
/// prints its `calibration_failed` event and whatever the calibration
/// attempt cost.
///
/// # Panics
///
/// Panics if calibration found indistinguishable bit classes
/// (`CovertChannel::transmit`).
pub fn dump_channel(label: &str, ch: &mut dyn CovertChannel, bits: usize) {
    println!("{label} [{} on {}]", ch.name(), ch.profile_key());
    ch.set_trace(TraceHook::new(TraceMode::Events));
    if ch.try_calibrate().is_ok() {
        let message: Vec<bool> = (0..bits).map(|i| i % 2 == 1).collect();
        let _ = ch.transmit(&message);
    }
    let hook = ch.take_trace();
    let Some(summary) = hook.summary() else {
        println!("  (channel exposes no trace events)");
        return;
    };
    // Channel-level events only (no thread column): the per-iteration
    // frontend events are delivery-path noise at this zoom level — the
    // summary below folds them.
    let channel_events: Vec<TraceEvent> = hook
        .events()
        .unwrap_or(&[])
        .iter()
        .filter(|e| e.thread().is_none())
        .cloned()
        .collect();
    print_events(&channel_events);
    print_summary(&summary);
}

//! Benchmark harness regenerating every table and figure of the *Leaky
//! Frontends* paper (HPCA 2022).
//!
//! Each table/figure has a dedicated binary (`fig2_path_histogram`,
//! `tab3_all_channels`, ...) that prints the same rows/series the paper
//! reports; `cargo bench` additionally runs Criterion micro-benchmarks over
//! the frontend primitives. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! The heavy parameter sweeps (Table III, Fig. 8, Tables V and VII) are
//! registered as `leaky_exp` specs and run on its deterministic worker
//! pool; the `leaky_sweep` binary is the unified CLI and the [`sweep`]
//! module holds its renderers (DESIGN.md §7).

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod debug;
pub mod perf;
pub mod sweep;
pub mod table;

pub use sweep::SWEEP_SCHEMA;
pub use table::TableWriter;

/// The trace schema travels with the sweep document it annotates;
/// re-exported so document consumers resolve both tags from one crate.
pub use leaky_trace::TRACE_SCHEMA;

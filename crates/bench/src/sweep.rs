//! Renderers and entry points for `leaky_exp` sweeps.
//!
//! Three output layers over one [`SweepRun`]:
//!
//! * [`render_legacy`] — byte-identical reproductions of the migrated
//!   figure/table binaries' stdout (the wrappers call [`run_legacy`];
//!   golden tests in `tests/sweep_golden.rs` pin the bytes).
//! * [`render_table`] — the unified `leaky_sweep` table format.
//! * [`render_json`] — the `leaky-frontends/sweep/v1` JSON document
//!   (readable back with [`crate::perf::parse_json`]).
//!
//! Every rendering is a pure function of the sweep's deterministic state
//! (cells + ordered summaries); wall-time and worker count are never
//! printed, which is what makes `--jobs 1` and `--jobs 4` byte-identical.

use crate::table::{fmt, TableWriter};
use leaky_exp::runner::SweepRun;
use leaky_exp::{
    run_experiment, run_experiment_with, standard_registry, CellOutcome, Experiment, RunConfig,
};
use leaky_trace::TraceMode;
use std::fmt::Write as _;
use std::path::Path;

/// Schema tag of the [`render_json_document`] output. One shared
/// constant so the writer, the readers and the docs cannot drift.
pub const SWEEP_SCHEMA: &str = "leaky-frontends/sweep/v1";

/// Worker threads to use when the caller does not say: the
/// `LEAKY_SWEEP_JOBS` environment variable, else all available cores.
pub fn default_jobs() -> usize {
    std::env::var("LEAKY_SWEEP_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs a registered experiment's full grid and prints its legacy
/// (pre-migration) stdout — the body of the thin wrapper binaries.
///
/// # Panics
///
/// Panics if `name` is unregistered or has no legacy rendering.
pub fn run_legacy(name: &str) {
    let registry = standard_registry();
    let exp = registry
        .get(name)
        .unwrap_or_else(|| panic!("unregistered experiment {name:?}"));
    let run = run_experiment(exp, false, default_jobs());
    print!(
        "{}",
        render_legacy(&run).unwrap_or_else(|| panic!("no legacy rendering for {name:?}"))
    );
}

/// The experiments with a pre-migration binary format (the migrated
/// sweeps). Checked by the CLI *before* running anything, so a
/// `--format legacy` selection fails fast instead of after the grids ran.
pub fn has_legacy_rendering(name: &str) -> bool {
    matches!(
        name,
        "tab3_all_channels"
            | "tab2_mt_patterns"
            | "fig8_d_sweep"
            | "tab5_power_channels"
            | "tab7_spectre_miss_rates"
    )
}

/// Renders a sweep in its pre-migration binary's exact format, if it is
/// one of the migrated experiments.
pub fn render_legacy(run: &SweepRun) -> Option<String> {
    match run.name {
        "tab3_all_channels" => Some(legacy_tab3(run)),
        "tab2_mt_patterns" => Some(legacy_tab2(run)),
        "fig8_d_sweep" => Some(legacy_fig8(run)),
        "tab5_power_channels" => Some(legacy_tab5(run)),
        "tab7_spectre_miss_rates" => Some(legacy_tab7(run)),
        _ => None,
    }
}

/// Machine column order of Table III (Table I order).
const TAB3_MACHINES: usize = 4;

fn legacy_tab3(run: &SweepRun) -> String {
    let labels = [
        "Non-MT Stealthy Eviction-Based",
        "Non-MT Stealthy Misalignment",
        "Non-MT Fast Eviction-Based",
        "Non-MT Fast Misalignment",
        "MT Eviction-Based",
        "MT Misalignment-Based",
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III: covert-channel rates (Kbps) and error rates, alternating message\n"
    );
    let _ = write!(out, "{:<34}", "channel");
    for m in 0..TAB3_MACHINES {
        let _ = write!(out, " {:>17}", run.cells[m].cell.str("machine"));
    }
    let _ = writeln!(out, "\n{:-<110}", "");
    for (ch, label) in labels.iter().enumerate() {
        let _ = write!(out, "{label:<34}");
        for m in 0..TAB3_MACHINES {
            let result = &run.cells[ch * TAB3_MACHINES + m];
            match (result.metric("rate_kbps"), result.metric("error_rate")) {
                (Some(rate), Some(err)) => {
                    let _ = write!(
                        out,
                        " {:>9} {:>7}",
                        fmt(rate, 2),
                        format!("{}%", fmt(err * 100.0, 2))
                    );
                }
                _ => {
                    let _ = write!(out, " {:>9} {:>7}", "--", "--");
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "\npaper reference points (alternating message):");
    let _ = writeln!(
        out,
        "  Non-MT Fast Misalignment on E-2288G: 1410.84 Kbps, 0.00% error (fastest attack)"
    );
    let _ = writeln!(
        out,
        "  Non-MT rates >> MT rates; fast >= stealthy; E-2288G has no MT columns (SMT off)"
    );
    out
}

fn legacy_tab2(run: &SweepRun) -> String {
    // Machine column order of Table II (the three SMT machines).
    const TAB2_MACHINES: usize = 3;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II: MT Eviction-Based channel, d = 1, by message pattern\n"
    );
    let _ = write!(out, "{:<14}", "pattern");
    for m in 0..TAB2_MACHINES {
        let _ = write!(out, " {:>18}", run.cells[m].cell.str("machine"));
    }
    let _ = writeln!(out, "\n{:-<72}", "");
    let patterns = run.cells.len() / TAB2_MACHINES;
    for p in 0..patterns {
        let _ = write!(
            out,
            "{:<14}",
            run.cells[p * TAB2_MACHINES].cell.str("pattern")
        );
        for m in 0..TAB2_MACHINES {
            let result = &run.cells[p * TAB2_MACHINES + m];
            let _ = write!(
                out,
                " {:>9} {:>8}",
                fmt(result.metric("rate_kbps").expect("supported"), 2), // lint: allow(panic-path) — metric set fixed by this run's own spec
                format!(
                    "{}%",
                    fmt(result.metric("error_rate").expect("supported") * 100.0, 2) // lint: allow(panic-path) — metric set fixed by this run's own spec
                )
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\npaper (G-6226): all-0s 42.66 Kbps/0%, all-1s 55.28/0%, alt 50.21/2.68%, random 18.28/22.57%"
    );
    out
}

fn legacy_fig8(run: &SweepRun) -> String {
    const DS: usize = 8;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: MT Eviction-Based channel vs receiver way number d\n"
    );
    let machines = run.cells.len() / DS;
    for m in 0..machines {
        let _ = writeln!(out, "{}:", run.cells[m * DS].cell.str("machine"));
        let _ = writeln!(
            out,
            "{:>3} {:>12} {:>10} {:>14}",
            "d", "rate Kbps", "error", "effective Kbps"
        );
        for di in 0..DS {
            let result = &run.cells[m * DS + di];
            let d = result.cell.int("d");
            let _ = writeln!(
                out,
                "{d:>3} {:>12} {:>9}% {:>14}",
                fmt(result.metric("rate_kbps").expect("supported"), 2), // lint: allow(panic-path) — metric set fixed by this run's own spec
                fmt(result.metric("error_rate").expect("supported") * 100.0, 2), // lint: allow(panic-path) — metric set fixed by this run's own spec
                fmt(result.metric("effective_kbps").expect("supported"), 2) // lint: allow(panic-path) — metric set fixed by this run's own spec
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "paper (G-6226): rate grows ~50 -> ~250 Kbps over d = 1..8; errors grow toward ~15-25%"
    );
    let _ = writeln!(
        out,
        "NOTE (documented deviation, see EXPERIMENTS.md): our protocol wall-balances sender and"
    );
    let _ = writeln!(
        out,
        "receiver, so bit slots grow with the receiver footprint and rate *falls* with d; the"
    );
    let _ = writeln!(
        out,
        "paper's slots are sender-bound (q fixed), so its rate rises. The d = 6 operating point"
    );
    let _ = writeln!(out, "used by Table III matches in both.");
    out
}

fn legacy_tab5(run: &SweepRun) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table V: non-MT power-based channels (Gold 6226), alternating message\n"
    );
    let _ = writeln!(out, "{:<22} {:>12} {:>10}", "channel", "rate Kbps", "error");
    let _ = writeln!(out, "{:-<46}", "");
    for result in &run.cells {
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>9}%",
            format!("{}-based", result.cell.str("kind")),
            fmt(result.metric("rate_kbps").expect("supported"), 2), // lint: allow(panic-path) — metric set fixed by this run's own spec
            fmt(result.metric("error_rate").expect("supported") * 100.0, 2) // lint: allow(panic-path) — metric set fixed by this run's own spec
        );
    }
    let _ = writeln!(
        out,
        "\npaper: eviction 0.66 Kbps / 18.87%; misalignment 0.63 Kbps / 9.07%"
    );
    let _ = writeln!(
        out,
        "(>100 bps: high-bandwidth by the TCSEC criterion the paper cites)"
    );
    out
}

fn legacy_tab7(run: &SweepRun) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table VII: Spectre v1 L1 miss rates by disclosure channel (Gold 6226)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "channel", "L1 miss", "accuracy", "L1I misses", "L1D misses"
    );
    let _ = writeln!(out, "{:-<60}", "");
    for result in &run.cells {
        let _ = writeln!(
            out,
            "{:<10} {:>11}% {:>9}% {:>12} {:>12}",
            result.cell.str("channel"),
            fmt(result.metric("l1_miss_rate").expect("supported") * 100.0, 2), // lint: allow(panic-path) — metric set fixed by this run's own spec
            fmt(result.metric("accuracy").expect("supported") * 100.0, 0), // lint: allow(panic-path) — metric set fixed by this run's own spec
            result.metric("l1i_misses").expect("supported"), // lint: allow(panic-path) — metric set fixed by this run's own spec
            result.metric("l1d_misses").expect("supported"), // lint: allow(panic-path) — metric set fixed by this run's own spec
        );
    }
    let _ = writeln!(out, "\npaper:   MEM F+R 2.81%  L1D F+R 4.79%  L1D LRU 4.48%  L1I F+R 0.45%  L1I P+P 0.48%  Frontend 0.21%");
    let _ = writeln!(out, "shape:   Frontend < L1I channels << data-cache channels; frontend displaces no cache lines");
    out
}

/// Formats a metric value for the unified table: integers plainly,
/// everything else with four decimals.
fn metric_cell(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{v}")
    } else {
        fmt(v, 4)
    }
}

/// Renders the unified fixed-width table of one sweep.
pub fn render_table(run: &SweepRun) -> String {
    let mut out = String::new();
    let profile = if run.quick { "quick" } else { "full" };
    let _ = writeln!(out, "== {} [{profile}] — {}", run.name, run.title);

    // Column set: axes (minus the redundant profile axis) then metrics
    // in first-appearance order.
    let axes: Vec<&str> = run
        .cells
        .first()
        .map(|c| {
            c.cell
                .coords
                .iter()
                .map(|(name, _)| name.as_str())
                .filter(|n| *n != "profile")
                .collect()
        })
        .unwrap_or_default();
    let metrics: Vec<&str> = run.summaries.iter().map(|(n, _)| n.as_str()).collect();

    let header: Vec<String> = axes.iter().chain(&metrics).map(|s| s.to_string()).collect();
    let mut rows: Vec<Vec<String>> = vec![header];
    for result in &run.cells {
        let mut row: Vec<String> = axes
            .iter()
            .map(|a| result.cell.get(a).expect("axis present").to_string()) // lint: allow(panic-path) — axes come from the run's own grid
            .collect();
        for m in &metrics {
            row.push(match (&result.outcome, result.metric(m)) {
                (_, Some(v)) => metric_cell(v),
                // `!!` distinguishes a cell that *died* from a structural
                // `--` gap; the detail line below carries the message.
                (CellOutcome::Failed { .. }, None) => "!!".to_string(),
                (_, None) => "--".to_string(),
            });
        }
        rows.push(row);
    }

    let ncols = rows[0].len();
    let widths: Vec<usize> = (0..ncols)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let writer = TableWriter::new(&widths);
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "{}", writer.row(row));
        if i == 0 {
            let _ = writeln!(
                out,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1)))
            );
        }
    }

    let unsupported = run
        .cells
        .iter()
        .filter(|c| c.outcome == CellOutcome::Unsupported)
        .count();
    let failed = run.failed_cells();
    let _ = write!(out, "cells: {}", run.cells.len());
    if unsupported > 0 {
        let _ = write!(out, " ({unsupported} unsupported)");
    }
    if failed > 0 {
        let _ = write!(out, " ({failed} failed)");
    }
    let _ = writeln!(out);
    // Failure detail lines appear only when something failed, so a clean
    // sweep's bytes are untouched by the fault-tolerance machinery.
    for result in &run.cells {
        if let Some((message, attempts)) = result.failure() {
            let _ = writeln!(
                out,
                "failed {}: {message} ({attempts} attempt{})",
                result.cell.key,
                if attempts == 1 { "" } else { "s" }
            );
        }
    }
    for (name, stats) in &run.summaries {
        let _ = writeln!(
            out,
            "summary {name}: n={} mean={} std_dev={} min={} max={}",
            stats.count(),
            metric_cell(stats.mean()),
            metric_cell(stats.std_dev()),
            metric_cell(stats.min()),
            metric_cell(stats.max()),
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Formats an f64 as a JSON number: shortest round-trip form, with a
/// trailing `.0` forced onto integral values so the token stays a float.
/// Non-finite values (an unmeasurable metric, an empty summary's ±inf
/// min/max) become `null` — `NaN`/`inf` are not JSON, and emitting them
/// would break the documented [`crate::perf::parse_json`] round-trip.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Renders one sweep as a JSON object (schema `leaky-frontends/sweep/v1`
/// wraps a list of these; see [`render_json_document`]).
pub fn render_json(run: &SweepRun) -> String {
    let mut out = String::new();
    let profile = if run.quick { "quick" } else { "full" };
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"experiment\": \"{}\",", json_escape(run.name));
    let _ = writeln!(out, "      \"title\": \"{}\",", json_escape(run.title));
    let _ = writeln!(out, "      \"profile\": \"{profile}\",");
    let _ = writeln!(out, "      \"cells\": [");
    for (i, result) in run.cells.iter().enumerate() {
        let comma = if i + 1 < run.cells.len() { "," } else { "" };
        let _ = write!(
            out,
            "        {{ \"key\": \"{}\", \"seed\": \"0x{:016x}\", ",
            json_escape(&result.cell.key),
            result.cell.seed
        );
        if let Some(p) = result.provenance() {
            let _ = write!(
                out,
                "\"provenance\": {{ \"channel\": \"{}\", \"profile\": \"{}\", \"params\": \"{}\" }}, ",
                json_escape(&p.channel),
                json_escape(&p.profile),
                json_escape(&p.params)
            );
        }
        // Telemetry (schema leaky-frontends/trace/v1) appears only on
        // traced runs, so untraced documents are byte-identical to the
        // pre-trace format.
        if let Some(t) = result.telemetry() {
            let _ = write!(out, "\"telemetry\": {}, ", t.to_json_inline());
        }
        match &result.outcome {
            CellOutcome::Unsupported => {
                let _ = write!(out, "\"supported\": false");
            }
            CellOutcome::Failed { message, attempts } => {
                let _ = write!(
                    out,
                    "\"supported\": false, \"failed\": true, \"error\": \"{}\", \"attempts\": {attempts}",
                    json_escape(message)
                );
            }
            CellOutcome::Measured(meas) => {
                let _ = write!(out, "\"supported\": true, \"metrics\": {{ ");
                for (j, m) in meas.metrics.iter().enumerate() {
                    let mcomma = if j + 1 < meas.metrics.len() {
                        ", "
                    } else {
                        " "
                    };
                    let _ = write!(out, "\"{}\": {}{mcomma}", m.name, json_num(m.value));
                }
                let _ = write!(out, "}}");
            }
        }
        let _ = writeln!(out, " }}{comma}");
    }
    let _ = writeln!(out, "      ],");
    let _ = writeln!(out, "      \"summary\": {{");
    for (i, (name, stats)) in run.summaries.iter().enumerate() {
        let comma = if i + 1 < run.summaries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "        \"{}\": {{ \"count\": {}, \"mean\": {}, \"std_dev\": {}, \"min\": {}, \"max\": {} }}{comma}",
            json_escape(name),
            stats.count(),
            json_num(stats.mean()),
            json_num(stats.std_dev()),
            json_num(stats.min()),
            json_num(stats.max()),
        );
    }
    let _ = writeln!(out, "      }}");
    let _ = write!(out, "    }}");
    out
}

/// Wraps rendered sweeps into the full JSON document.
pub fn render_json_document(sweeps: &[SweepRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"");
    out.push_str(SWEEP_SCHEMA);
    out.push_str("\",\n  \"sweeps\": [\n");
    for (i, run) in sweeps.iter().enumerate() {
        out.push_str(&render_json(run));
        out.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Times one quick sweep of every registered experiment at the given
/// worker count, returning total cells and wall nanoseconds (the
/// `perf_report` sweep-throughput metric).
///
/// # Panics
///
/// Panics if two compiled-in experiments share a name
/// (`Registry::register`).
pub fn quick_sweep_throughput(jobs: usize) -> (usize, u128) {
    let registry = standard_registry();
    let mut cells = 0usize;
    let mut ns = 0u128;
    for exp in registry.iter() {
        let run = run_experiment(exp, true, jobs);
        cells += run.cells.len();
        ns += run.elapsed_ns;
    }
    (cells, ns)
}

/// Ranks registered experiment names by closeness to an unknown CLI
/// filter, for the "did you mean" half of the error message. A name is
/// suggested when it contains the typo as a substring (`fig8` →
/// `fig8_d_sweep`) or is within an edit distance scaled to the typo's
/// length; closest first, ties in registry order.
pub fn suggest_experiments<'a>(unknown: &str, names: &[&'a str]) -> Vec<&'a str> {
    let typo: Vec<char> = unknown.chars().collect();
    let budget = (typo.len() / 3).max(2);
    let mut scored: Vec<(usize, &'a str)> = names
        .iter()
        .filter_map(|name| {
            if name.contains(unknown) || unknown.contains(*name) {
                return Some((0, *name));
            }
            let d =
                leaky_stats::distance::edit_distance(&typo, &name.chars().collect::<Vec<char>>());
            (d <= budget).then_some((d, *name))
        })
        .collect();
    scored.sort_by_key(|(d, _)| *d);
    scored.into_iter().map(|(_, name)| name).collect()
}

/// Runs one registered experiment by name (panicking on unknown names —
/// CLI-level validation happens in `leaky_sweep`).
///
/// # Panics
///
/// Panics for a name absent from `standard_registry`.
pub fn run_by_name(name: &str, quick: bool, jobs: usize) -> SweepRun {
    run_by_name_traced(name, quick, jobs, TraceMode::Off)
}

/// [`run_by_name`] with a trace level. Metrics and renderings (other
/// than the JSON `telemetry` field) are bit-identical to the untraced
/// run at any `jobs`; the trace layer observes, it never steers.
///
/// # Panics
///
/// Panics on unknown names — CLI-level validation happens in
/// `leaky_sweep`.
pub fn run_by_name_traced(name: &str, quick: bool, jobs: usize, trace: TraceMode) -> SweepRun {
    let registry = standard_registry();
    let exp: &dyn Experiment = registry
        .get(name)
        .unwrap_or_else(|| panic!("unregistered experiment {name:?}"));
    let cfg = RunConfig {
        quick,
        jobs,
        trace,
        ..RunConfig::default()
    };
    // lint: allow(panic-path) — storeless runs cannot fail
    run_experiment_with(exp, &cfg).expect("no store attached, so no store errors")
}

/// Maps a cell's content key onto a trace filename: every byte outside
/// `[A-Za-z0-9._=-]` becomes `_`, so axis separators (`/`) and spaces in
/// machine names flatten into one filesystem-safe token. Keys are
/// unique per sweep and the mapping is injective enough in practice
/// (axis names never differ only by punctuation).
pub fn trace_file_name(key: &str) -> String {
    let mut name: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '=' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    name.push_str(".csv");
    name
}

/// Writes one trace file per traced cell (cells without telemetry —
/// untraced channels, unsupported/failed/cached cells — are skipped)
/// under `dir`, creating it if needed. Files are written in grid order
/// with deterministic contents, so two runs at different `--jobs` agree
/// byte-for-byte. Returns the number of files written.
pub fn write_trace_files(runs: &[SweepRun], dir: &Path) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut written = 0;
    for run in runs {
        for cell in &run.cells {
            if let Some(telemetry) = cell.telemetry() {
                std::fs::write(
                    dir.join(trace_file_name(&cell.cell.key)),
                    telemetry.trace_file_contents(),
                )?;
                written += 1;
            }
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::parse_json;

    #[test]
    fn unified_renderings_are_jobs_invariant() {
        let a = run_by_name("rng_stream_grid", true, 1);
        let b = run_by_name("rng_stream_grid", true, 3);
        assert_eq!(render_table(&a), render_table(&b));
        assert_eq!(render_json(&a), render_json(&b));
    }

    #[test]
    fn json_document_parses_and_carries_cells() {
        let runs = vec![run_by_name("rng_stream_grid", true, 2)];
        let doc = parse_json(&render_json_document(&runs)).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| match s {
                crate::perf::Json::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("leaky-frontends/sweep/v1")
        );
        let crate::perf::Json::Arr(sweeps) = doc.get("sweeps").expect("sweeps") else {
            panic!("sweeps must be an array");
        };
        let crate::perf::Json::Arr(cells) = sweeps[0].get("cells").expect("cells") else {
            panic!("cells must be an array");
        };
        assert_eq!(cells.len(), 8);
        let mean = sweeps[0]
            .get("summary")
            .and_then(|s| s.get("mean"))
            .and_then(|m| m.get("mean"))
            .and_then(crate::perf::Json::as_num)
            .expect("summary.mean.mean");
        // 8 cells of 512 uniform draws: the grand mean is near 0.5.
        assert!((mean - 0.5).abs() < 0.1, "grand mean {mean} implausible");
    }

    #[test]
    fn traced_json_and_trace_files_are_jobs_invariant() {
        let a = run_by_name_traced("tab3_all_channels", true, 1, TraceMode::Summary);
        let b = run_by_name_traced("tab3_all_channels", true, 3, TraceMode::Summary);
        let json = render_json(&a);
        assert_eq!(json, render_json(&b));
        assert!(json.contains("\"telemetry\""), "telemetry missing:\n{json}");
        assert!(json.contains("\"schema\": \"leaky-frontends/trace/v1\""));

        let dir = std::env::temp_dir().join(format!("leaky_trace_ji_{}", std::process::id()));
        let dir_a = dir.join("a");
        let dir_b = dir.join("b");
        let na = write_trace_files(std::slice::from_ref(&a), &dir_a).expect("write");
        let nb = write_trace_files(std::slice::from_ref(&b), &dir_b).expect("write");
        assert_eq!(na, nb);
        // Every supported cell in quick tab3 is a traced channel cell.
        let supported = a
            .cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Measured(_)))
            .count();
        assert_eq!(na, supported);
        for cell in &a.cells {
            if cell.telemetry().is_some() {
                let name = trace_file_name(&cell.cell.key);
                let fa = std::fs::read(dir_a.join(&name)).expect("file written");
                let fb = std::fs::read(dir_b.join(&name)).expect("file written");
                assert_eq!(fa, fb, "{name} differs across jobs");
                assert!(fa.starts_with(b"stat,value\n"), "{name} not a summary CSV");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_file_names_are_sanitized() {
        assert_eq!(
            trace_file_name(
                "tab3_all_channels/profile=quick/channel=mt-eviction/machine=Gold 6226"
            ),
            "tab3_all_channels_profile=quick_channel=mt-eviction_machine=Gold_6226.csv"
        );
    }

    #[test]
    fn json_num_keeps_floats_floaty() {
        assert_eq!(json_num(2295.0), "2295.0");
        assert_eq!(json_num(0.5), "0.5");
        assert_eq!(json_num(850.583), "850.583");
    }

    #[test]
    fn metric_cell_formats() {
        assert_eq!(metric_cell(2295.0), "2295");
        assert_eq!(metric_cell(0.00390625), "0.0039");
    }
}

//! Figure 10: frontend timing and power for loops below/above LSD capacity
//! under microcode patch1 (LSD enabled) vs patch2 (LSD disabled), plus the
//! fingerprinting accuracy of §X.

use leaky_bench::table::fmt;
use leaky_cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontends::fingerprint::microcode::MicrocodeFingerprint;

fn main() {
    println!("Figure 10: microcode patch fingerprinting via LSD behaviour (Gold 6226)\n");
    let fp = MicrocodeFingerprint::default();
    println!(
        "{:<28} {:>14} {:>14} {:>10} {:>10}",
        "patch", "small cyc/blk", "large cyc/blk", "small W", "large W"
    );
    println!("{:-<80}", "");
    for patch in [MicrocodePatch::Patch1, MicrocodePatch::Patch2] {
        let mut core = Core::with_microcode(ProcessorModel::gold_6226(), patch, 9);
        let obs = fp.observe(&mut core);
        println!(
            "{:<28} {:>14} {:>14} {:>10} {:>10}",
            patch.version(),
            fmt(obs.small_loop_cycles_per_block, 2),
            fmt(obs.large_loop_cycles_per_block, 2),
            fmt(obs.small_loop_watts, 1),
            fmt(obs.large_loop_watts, 1),
        );
        let classified = fp.classify(&obs);
        println!("{:<28} -> classified as {}", "", classified.version());
    }
    let acc = fp.accuracy(ProcessorModel::gold_6226(), 25);
    println!(
        "\nfingerprinting accuracy over 50 trials: {:.1}%",
        acc * 100.0
    );
    println!("paper: patches \"clearly\" distinguishable; timing the more reliable indicator;");
    println!(
        "       patch1 small loops run at LSD pace and lower power, patch2 collapses the gap."
    );
}

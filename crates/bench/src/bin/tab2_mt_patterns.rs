//! Table II: transmission and error rates of the MT Eviction-Based
//! channel at d = 1 under the four message patterns (all-0s, all-1s,
//! alternating, random) on the three SMT-capable Table I machines.
//!
//! Thin wrapper: the sweep itself lives in `leaky_exp` (spec
//! `tab2_mt_patterns`; see EXPERIMENTS.md) and runs on the
//! deterministic worker pool, so output is bit-identical at any job
//! count — and to this binary's pre-migration stdout
//! (`tests/golden/tab2_mt_patterns.txt`).

fn main() {
    leaky_bench::sweep::run_legacy("tab2_mt_patterns");
}

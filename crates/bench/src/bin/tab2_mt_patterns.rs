//! Table II: MT Eviction-Based channel with d = 1 for the four message
//! patterns (all 0s, all 1s, alternating, random) on the three SMT-capable
//! machines.
//!
//! Paper shape: all-0s and all-1s transmit error-free, with all-1s faster
//! (early bit declaration); alternating shows moderate errors; random is
//! slowest with the highest error rate.

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::{ChannelParams, MessagePattern};

const BITS: usize = 96;

fn main() {
    println!("Table II: MT Eviction-Based channel, d = 1, by message pattern\n");
    let machines = [
        ProcessorModel::gold_6226(),
        ProcessorModel::xeon_e2174g(),
        ProcessorModel::xeon_e2286g(),
    ];
    print!("{:<14}", "pattern");
    for m in &machines {
        print!(" {:>18}", m.name);
    }
    println!("\n{:-<72}", "");
    let params = ChannelParams::mt_defaults().with_d(1);
    for pattern in MessagePattern::all() {
        print!("{:<14}", pattern.to_string());
        for &model in &machines {
            let mut ch = ChannelSpec::new("mt-eviction")
                .model(model)
                .params(params)
                .seed(99)
                .build()
                .expect("SMT machine");
            let run = ch.transmit(&pattern.generate(BITS, 7));
            print!(
                " {:>9} {:>8}",
                fmt(run.rate_kbps(), 2),
                format!("{}%", fmt(run.error_rate() * 100.0, 2))
            );
        }
        println!();
    }
    println!("\npaper (G-6226): all-0s 42.66 Kbps/0%, all-1s 55.28/0%, alt 50.21/2.68%, random 18.28/22.57%");
}

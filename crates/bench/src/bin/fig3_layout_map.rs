//! Figure 3: how chained instruction mix blocks map onto the MITE (byte
//! stream), the DSB (32 sets × 8 ways) and the LSD (64 µop slots).
//!
//! Prints the mapping for the paper's example: 8 chained 5-µop blocks that
//! all collide in one DSB set yet stride across L1I sets, and shows what
//! changes when a 9th block is added or the chain is misaligned.

use leaky_isa::{same_set_chain, Alignment, BlockChain, DsbSet, FrontendGeometry};

fn describe(title: &str, chain: &BlockChain) {
    let g = FrontendGeometry::skylake();
    println!("== {title} ==");
    println!(
        "{:>4} {:>12} {:>8} {:>6} {:>8} {:>9} {:>8}",
        "blk", "base", "DSB set", "bytes", "µops", "windows", "L1I set"
    );
    for (i, b) in chain.blocks().iter().enumerate() {
        println!(
            "{:>4} {:>12} {:>8} {:>6} {:>8} {:>9} {:>8}",
            i,
            format!("{}", b.base()),
            b.dsb_set().index(),
            b.len_bytes(),
            b.uop_count(),
            b.windows().len(),
            b.base().l1i_set(),
        );
    }
    let uops = chain.total_uops() as usize;
    let lines = chain.dsb_lines(&g);
    println!(
        "totals: {uops} µops ({} LSD slots of {}), {lines} DSB lines in set {} ({} ways)",
        uops,
        g.lsd_uops,
        chain.blocks()[0].dsb_set(),
        g.dsb_ways
    );
    let fits_lsd = uops <= g.lsd_uops
        && chain.window_count() <= g.lsd_windows
        && (chain.misaligned_count() == 0 || chain.window_count() < g.lsd_windows);
    let fits_dsb = lines <= g.dsb_ways;
    println!(
        "-> {}",
        if fits_lsd {
            "fits the LSD: steady-state delivery streams from the LSD"
        } else if fits_dsb {
            "exceeds LSD tracking but fits the DSB set: steady-state DSB delivery"
        } else {
            "exceeds the 8 ways: permanent DSB evictions, MITE in the loop"
        }
    );
    println!();
}

fn main() {
    println!("Figure 3: instruction-mix-block mapping to MITE/DSB/LSD\n");
    let eight = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
    describe(
        "8 aligned blocks, same DSB set (paper's LSD-resident chain)",
        &eight,
    );
    let nine = same_set_chain(0x0041_8000, DsbSet::new(0), 9, Alignment::Aligned);
    describe("9 aligned blocks (the §IV-F eviction trigger)", &nine);
    let four_mis = same_set_chain(0x0041_8000, DsbSet::new(0), 4, Alignment::Misaligned);
    describe("4 misaligned blocks (the §IV-G LSD collision)", &four_mis);
}

//! Table V: non-MT power-based covert channels on the Gold 6226
//! (p = q = 240 000 iterations per bit, RAPL-limited).
//!
//! Paper: eviction-based 0.66 Kbps / 18.87%; misalignment-based
//! 0.63 Kbps / 9.07%.

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::non_mt::NonMtKind;
use leaky_frontends::channels::power::PowerChannel;
use leaky_frontends::params::{ChannelParams, MessagePattern};

const BITS: usize = 64;

fn main() {
    println!("Table V: non-MT power-based channels (Gold 6226), alternating message\n");
    println!("{:<22} {:>12} {:>10}", "channel", "rate Kbps", "error");
    println!("{:-<46}", "");
    for (kind, params) in [
        (NonMtKind::Eviction, ChannelParams::power_defaults()),
        (
            NonMtKind::Misalignment,
            ChannelParams {
                d: 5,
                ..ChannelParams::power_defaults()
            },
        ),
    ] {
        let mut ch = PowerChannel::new(ProcessorModel::gold_6226(), kind, params, 55);
        let run = ch.transmit(&MessagePattern::Alternating.generate(BITS, 0));
        println!(
            "{:<22} {:>12} {:>9}%",
            format!("{kind}-based"),
            fmt(run.rate_kbps(), 2),
            fmt(run.error_rate() * 100.0, 2)
        );
    }
    println!("\npaper: eviction 0.66 Kbps / 18.87%; misalignment 0.63 Kbps / 9.07%");
    println!("(>100 bps: high-bandwidth by the TCSEC criterion the paper cites)");
}

//! Table V: non-MT power-based covert channels on the Gold 6226
//! (p = q = 240 000 iterations per bit, RAPL-limited).
//!
//! Paper: eviction-based 0.66 Kbps / 18.87%; misalignment-based
//! 0.63 Kbps / 9.07%.
//!
//! Thin wrapper over the `tab5_power_channels` spec in `leaky_exp`;
//! output is bit-identical to the pre-migration binary
//! (`tests/golden/tab5_power_channels.txt`).

fn main() {
    leaky_bench::sweep::run_legacy("tab5_power_channels");
}

//! Figure 4: performance-counter readings for mixed-issue vs ordered-issue
//! LCP `add` loops (Gold 6226, 800 M iterations).
//!
//! Paper values (per 800 M-iteration run):
//!   mixed:   MITE 8.4e9 µops, DSB 1.2e9 µops, LCP stall 1.2e10 cyc,
//!            switch penalty 9.0e8 cyc, IPC 0.67
//!   ordered: MITE 8.7e9 µops, DSB 1.2e9 µops, LCP stall 1.4e10 cyc,
//!            switch penalty 1.5e6 cyc, IPC 0.59
//!
//! The reproduction target is the *shape*: similar MITE/DSB µop splits for
//! both patterns, more LCP stall cycles for ordered issue, vastly more
//! switch penalty for mixed issue, and mixed IPC > ordered IPC.

use leaky_cpu::{Core, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{Addr, Block, BlockChain, LcpPattern};

const ITERATIONS: u64 = 800_000_000;

fn run(pattern: LcpPattern) -> (leaky_frontend::IterationReport, f64) {
    let mut core = Core::new(ProcessorModel::gold_6226(), 7);
    let chain = BlockChain::new(vec![Block::lcp_adds(Addr::new(0x10_0000), pattern, 16)]);
    let instrs = chain.total_instructions() as u64;
    let run = core.run_loop(ThreadId::T0, &chain, ITERATIONS);
    let ipc = run.ipc(instrs);
    (run.report, ipc)
}

fn main() {
    println!("Figure 4: LCP experiment counters over {ITERATIONS} iterations (Gold 6226)\n");
    let (mixed, ipc_mixed) = run(LcpPattern::Mixed);
    let (ordered, ipc_ordered) = run(LcpPattern::Ordered);

    println!(
        "{:<26} {:>14} {:>14}",
        "counter", "mixed issue", "ordered issue"
    );
    println!("{:-<56}", "");
    for (name, m, o) in [
        (
            "MITE uops",
            mixed.mite_uops as f64,
            ordered.mite_uops as f64,
        ),
        ("DSB uops", mixed.dsb_uops as f64, ordered.dsb_uops as f64),
        (
            "LCP stall cycles",
            mixed.lcp_stall_cycles,
            ordered.lcp_stall_cycles,
        ),
        (
            "switch penalty cycles",
            mixed.switch_penalty_cycles,
            ordered.switch_penalty_cycles,
        ),
        (
            "DSB->MITE switches",
            mixed.dsb_to_mite_switches as f64,
            ordered.dsb_to_mite_switches as f64,
        ),
    ] {
        println!("{name:<26} {m:>14.3e} {o:>14.3e}");
    }
    println!("{:<26} {ipc_mixed:>14.2} {ipc_ordered:>14.2}", "IPC");
    println!();
    println!(
        "paper:   IPC mixed 0.67 > ordered 0.59; LCP stalls ordered > mixed; switches mixed >> ordered"
    );
    println!(
        "measured: IPC mixed {:.2} {} ordered {:.2}; stalls ordered/mixed = {:.2}; switches mixed/ordered = {:.0}",
        ipc_mixed,
        if ipc_mixed > ipc_ordered { ">" } else { "<=" },
        ipc_ordered,
        ordered.lcp_stall_cycles / mixed.lcp_stall_cycles.max(1.0),
        mixed.dsb_to_mite_switches as f64 / ordered.dsb_to_mite_switches.max(1) as f64,
    );
}

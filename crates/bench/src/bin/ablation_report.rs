//! Behavioural ablations of the simulator's design choices (DESIGN.md §2):
//! what happens to the headline attacks when each mechanism is changed?
//!
//! * SMT DSB sharing policy (Competitive / SetPartitioned / Shared) vs the
//!   MT eviction channel;
//! * the partition-transition flush vs the MT channel;
//! * LSD warm-up length vs the non-MT fast channels;
//! * window-crossing penalty vs the misalignment channel;
//! * the §XII constant-time defense vs everything.

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontend::{CostModel, FrontendConfig, SmtDsbPolicy};
use leaky_frontends::channels::non_mt::NonMtKind;
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::{EncodeMode, MessagePattern};

const BITS: usize = 64;

/// Builds a registered timing channel with its frontend replaced by
/// `config` (the ChannelSpec ablation hook) and transmits the standard
/// message; a channel whose calibration finds no class separation
/// reports `(0, 0.5)` — dead.
fn with_config(channel: &str, model: ProcessorModel, config: FrontendConfig) -> (f64, f64) {
    let mut ch = ChannelSpec::new(channel)
        .model(model)
        .seed(4)
        .frontend_config(config, 4)
        .build()
        .expect("registered timing channel");
    match ch.try_calibrate() {
        Ok(()) => {
            let run = ch.transmit(&MessagePattern::Alternating.generate(BITS, 0));
            (run.rate_kbps(), run.error_rate())
        }
        Err(_) => (0.0, 0.5), // uncalibratable: channel dead
    }
}

fn mt_with(config: FrontendConfig) -> (f64, f64) {
    with_config("mt-eviction", ProcessorModel::gold_6226(), config)
}

fn non_mt_with(kind: NonMtKind, mode: EncodeMode, config: FrontendConfig) -> (f64, f64) {
    with_config(
        &format!("non-mt-{mode}-{kind}"),
        ProcessorModel::xeon_e2288g(),
        config,
    )
}

fn main() {
    println!("Ablation report: attack viability under model variations\n");

    println!("-- SMT DSB sharing policy vs MT eviction channel (Gold 6226) --");
    for policy in [
        SmtDsbPolicy::Competitive,
        SmtDsbPolicy::SetPartitioned,
        SmtDsbPolicy::Shared,
    ] {
        for flush in [true, false] {
            let (rate, err) = mt_with(FrontendConfig {
                dsb_policy: policy,
                flush_on_partition: flush,
                ..FrontendConfig::default()
            });
            println!(
                "  {policy:?} (partition flush {}): {} Kbps, {}% error",
                if flush { "on" } else { "off" },
                fmt(rate, 1),
                fmt(err * 100.0, 1)
            );
        }
    }
    println!("  -> the channel survives every sharing discipline (§I: partitioning alone");
    println!("     is not a defense); only the transition-flush strength shifts the rate.\n");

    println!("-- LSD warm-up length vs non-MT fast eviction (E-2288G) --");
    for warmup in [1u32, 3, 8, 32] {
        let (rate, err) = non_mt_with(
            NonMtKind::Eviction,
            EncodeMode::Fast,
            FrontendConfig {
                lsd_warmup_iterations: warmup,
                ..FrontendConfig::default()
            },
        );
        println!(
            "  warmup {warmup:>2}: {} Kbps, {}% error",
            fmt(rate, 1),
            fmt(err * 100.0, 1)
        );
    }
    println!("  -> the eviction signal is robust to how eagerly the LSD locks.\n");

    // The *stealthy* variant does identical work for both bits; only the
    // alignment differs, so it isolates the split-fetch effect.
    println!("-- window-crossing penalty vs non-MT STEALTHY misalignment (E-2288G) --");
    for penalty in [0.0f64, 1.5, 4.5, 9.0] {
        let mut config = FrontendConfig::default();
        config.costs.window_crossing_penalty = penalty;
        let (rate, err) = non_mt_with(NonMtKind::Misalignment, EncodeMode::Stealthy, config);
        if rate == 0.0 {
            println!("  penalty {penalty:>4}: channel DEAD (no timing difference)");
        } else {
            println!(
                "  penalty {penalty:>4}: {} Kbps, {}% error",
                fmt(rate, 1),
                fmt(err * 100.0, 1)
            );
        }
    }
    println!("  -> the stealthy misalignment signal shrinks with the split-fetch cost:");
    println!("     the §V-D channel rides on window-crossing overhead.\n");

    println!("-- §XII constant-time frontend vs the non-MT channels (E-2288G) --");
    for mode in [EncodeMode::Stealthy, EncodeMode::Fast] {
        for kind in [NonMtKind::Eviction, NonMtKind::Misalignment] {
            let (rate, err) = non_mt_with(
                kind,
                mode,
                FrontendConfig {
                    costs: CostModel::constant_time(),
                    ..FrontendConfig::default()
                },
            );
            if rate == 0.0 || err > 0.25 {
                println!("  {mode} {kind}: channel DEAD");
            } else {
                println!(
                    "  {mode} {kind}: still {} Kbps at {}% error",
                    fmt(rate, 1),
                    fmt(err * 100.0, 1)
                );
            }
        }
    }
    println!("  -> equal path timing kills the *stealthy* (equal-work) channels; the fast");
    println!("     variants survive because they modulate the amount of work, not the path —");
    println!("     exactly why §XII says defended code must make total timing secret-independent.");
}

//! Table IV: the slow-switch (LCP) covert channel on the Gold 6226 and the
//! Xeon E-2288G; alternating message, r = 16.
//!
//! Paper: 678.11 Kbps / 6.74% (G-6226); 1351.43 Kbps / 0.64% (E-2288G).

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::MessagePattern;

const BITS: usize = 256;

fn main() {
    println!("Table IV: Non-MT Slow-Switch channel (r = 16), alternating message\n");
    println!("{:<16} {:>12} {:>10}", "machine", "rate Kbps", "error");
    println!("{:-<40}", "");
    for model in [ProcessorModel::gold_6226(), ProcessorModel::xeon_e2288g()] {
        let mut ch = ChannelSpec::new("slow-switch")
            .model(model)
            .seed(77)
            .build()
            .expect("slow-switch builds on any machine");
        let run = ch.transmit(&MessagePattern::Alternating.generate(BITS, 0));
        println!(
            "{:<16} {:>12} {:>9}%",
            model.name,
            fmt(run.rate_kbps(), 2),
            fmt(run.error_rate() * 100.0, 2)
        );
    }
    println!("\npaper: G-6226 678.11 Kbps / 6.74%; E-2288G 1351.43 Kbps / 0.64%");
}

//! §XI-B: fingerprinting ten mobile-benchmark workloads through the
//! attacker's IPC side channel.
//!
//! Paper: average intra-distance 0.232 vs inter-distance 4.793 over the ten
//! Geekbench 5 workloads tested.

use leaky_cpu::ProcessorModel;
use leaky_frontends::fingerprint::ipc::{distance_summary, FingerprintLibrary, IpcSampler};
use leaky_workloads::mobile;

const TRIALS: usize = 3;

fn main() {
    println!("§XI-B: mobile-benchmark fingerprinting (Gold 6226)\n");
    let sampler = IpcSampler::default();
    let workloads = mobile::benchmarks();
    let sets: Vec<Vec<Vec<f64>>> = workloads
        .iter()
        .map(|w| sampler.trace_set(ProcessorModel::gold_6226(), w, TRIALS, 500))
        .collect();
    let d = distance_summary(&sets);
    println!("intra-distance: {:.3}   (paper 0.232)", d.intra);
    println!("inter-distance: {:.3}   (paper 4.793)", d.inter);
    println!("separable: {}\n", d.separable());

    let lib = FingerprintLibrary::new(
        workloads
            .iter()
            .zip(&sets)
            .map(|(w, s)| (w.name().to_string(), s.clone()))
            .collect(),
    );
    println!("{:<22} {:>12}", "workload", "classified");
    println!("{:-<36}", "");
    let mut correct = 0;
    for (k, w) in workloads.iter().enumerate() {
        let probe = sampler.trace(ProcessorModel::gold_6226(), w, 777 + k as u64);
        let label = lib.classify(&probe);
        if label == w.name() {
            correct += 1;
        }
        println!("{:<22} {:>12}", w.name(), label);
    }
    println!(
        "\naccuracy: {}/{} ({:.0}%)",
        correct,
        workloads.len(),
        100.0 * correct as f64 / workloads.len() as f64
    );
}

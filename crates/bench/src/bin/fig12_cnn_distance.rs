//! Figure 12 and §XI-C: inter- vs intra-distance of attacker IPC traces
//! across the four CNN models, plus classification accuracy.
//!
//! Paper: average intra-distance 0.550 vs inter-distance 1.937 for the four
//! CNN models — clearly separable.

use leaky_cpu::ProcessorModel;
use leaky_frontends::fingerprint::ipc::{distance_summary, FingerprintLibrary, IpcSampler};
use leaky_workloads::cnn;

const TRIALS: usize = 4;

fn main() {
    println!("Figure 12: CNN model fingerprint separability (Gold 6226)\n");
    let sampler = IpcSampler::default();
    let models = cnn::models();
    let sets: Vec<Vec<Vec<f64>>> = models
        .iter()
        .map(|w| sampler.trace_set(ProcessorModel::gold_6226(), w, TRIALS, 400))
        .collect();
    let d = distance_summary(&sets);
    println!(
        "intra-distance (same model):      {:.3}   (paper 0.550)",
        d.intra
    );
    println!(
        "inter-distance (different model): {:.3}   (paper 1.937)",
        d.inter
    );
    println!("separable: {}\n", d.separable());

    // Pairwise inter-distance matrix.
    println!("pairwise mean distances:");
    print!("{:>12}", "");
    for m in &models {
        print!(" {:>11}", m.name());
    }
    println!();
    for (i, mi) in models.iter().enumerate() {
        print!("{:>12}", mi.name());
        for j in 0..models.len() {
            let dij = leaky_stats::distance::mean_pairwise_distance(&sets[i], &sets[j])
                .expect("equal lengths");
            print!(" {dij:>11.3}");
        }
        println!();
    }

    // Classification accuracy with fresh probe traces.
    let lib = FingerprintLibrary::new(
        models
            .iter()
            .zip(&sets)
            .map(|(m, s)| (m.name().to_string(), s.clone()))
            .collect(),
    );
    let mut correct = 0;
    let probes = 8;
    for (k, m) in models.iter().enumerate() {
        for p in 0..probes {
            let probe = sampler.trace(
                ProcessorModel::gold_6226(),
                m,
                900 + (k * probes + p) as u64,
            );
            if lib.classify(&probe) == m.name() {
                correct += 1;
            }
        }
    }
    println!(
        "\nclassification accuracy over {} probes: {:.1}%",
        probes * models.len(),
        100.0 * correct as f64 / (probes * models.len()) as f64
    );
}

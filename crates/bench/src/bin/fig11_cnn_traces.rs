//! Figure 11: attacker IPC traces while four CNN models run inference on
//! the sibling SMT thread (Gold 6226).
//!
//! Paper: baseline attacker IPC 3.58 solo; with a victim present the IPC
//! roughly halves and fluctuates between ~1.8 and ~2.2 in a pattern unique
//! to each model's layer schedule.

use leaky_cpu::ProcessorModel;
use leaky_frontends::fingerprint::ipc::IpcSampler;
use leaky_workloads::cnn;

fn main() {
    println!("Figure 11: attacker IPC traces vs CNN inference victims (Gold 6226)\n");
    let sampler = IpcSampler::default();
    let baseline = sampler.baseline_ipc(ProcessorModel::gold_6226(), 1);
    println!("attacker baseline IPC (solo): {baseline:.2}  (paper: 3.58)\n");
    for model in cnn::models() {
        let trace = sampler.trace(ProcessorModel::gold_6226(), &model, 17);
        let min = trace.iter().cloned().fold(f64::MAX, f64::min);
        let max = trace.iter().cloned().fold(f64::MIN, f64::max);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        println!(
            "victim {:<12} IPC mean {:.2}, range [{:.2}, {:.2}]",
            model.name(),
            mean,
            min,
            max
        );
        // ASCII waveform of the first 80 samples.
        let lo = min - 0.01;
        let hi = max + 0.01;
        let line: String = trace
            .iter()
            .take(80)
            .map(|&v| {
                let idx = ((v - lo) / (hi - lo) * 7.0) as usize;
                [' ', '.', ':', '-', '=', '+', '*', '#'][idx.min(7)]
            })
            .collect();
        println!("   |{line}|");
    }
    println!(
        "\npaper: IPC roughly halves under SMT and fluctuates with the victim's layer schedule;"
    );
    println!("       each model's waveform is visually distinct.");
}

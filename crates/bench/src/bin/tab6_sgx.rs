//! Table VI: SGX enclave exfiltration channels on the three SGX machines
//! (E-2174G, E-2286G, E-2288G): non-MT stealthy/fast (eviction and
//! misalignment) plus MT where hyper-threading allows.
//!
//! Paper shape: SGX non-MT rates are roughly 1/25–1/30 of the direct non-MT
//! rates (tens of Kbps), with low error; MT SGX rates are single-digit to
//! ~15 Kbps; no MT column for the E-2288G.

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::non_mt::NonMtKind;
use leaky_frontends::params::{ChannelParams, EncodeMode, MessagePattern};
use leaky_frontends::run::Evaluation;
use leaky_frontends::sgx::{SgxMtChannel, SgxNonMtChannel};

/// One table cell: evaluate a channel on a machine (`None` = unsupported).
type ChannelEval = Box<dyn Fn(ProcessorModel) -> Option<Evaluation>>;

const BITS: usize = 48;

fn non_mt(model: ProcessorModel, kind: NonMtKind, mode: EncodeMode) -> Evaluation {
    let mut ch = SgxNonMtChannel::new(model, kind, mode, ChannelParams::sgx_non_mt_defaults(), 321)
        .expect("SGX machine");
    ch.transmit(&MessagePattern::Alternating.generate(BITS, 0))
        .evaluation()
}

fn mt(model: ProcessorModel, kind: NonMtKind) -> Option<Evaluation> {
    let mut ch = SgxMtChannel::new(model, kind, ChannelParams::sgx_mt_defaults(), 321).ok()?;
    Some(
        ch.transmit(&MessagePattern::Alternating.generate(BITS, 0))
            .evaluation(),
    )
}

fn main() {
    let machines = [
        ProcessorModel::xeon_e2174g(),
        ProcessorModel::xeon_e2286g(),
        ProcessorModel::xeon_e2288g(),
    ];
    println!("Table VI: SGX covert channels, alternating message\n");
    print!("{:<34}", "channel");
    for m in &machines {
        print!(" {:>17}", m.name);
    }
    println!("\n{:-<92}", "");

    let rows: [(&str, ChannelEval); 6] = [
        (
            "Non-MT Stealthy Eviction-Based",
            Box::new(|m| Some(non_mt(m, NonMtKind::Eviction, EncodeMode::Stealthy))),
        ),
        (
            "Non-MT Stealthy Misalignment",
            Box::new(|m| Some(non_mt(m, NonMtKind::Misalignment, EncodeMode::Stealthy))),
        ),
        (
            "Non-MT Fast Eviction-Based",
            Box::new(|m| Some(non_mt(m, NonMtKind::Eviction, EncodeMode::Fast))),
        ),
        (
            "Non-MT Fast Misalignment",
            Box::new(|m| Some(non_mt(m, NonMtKind::Misalignment, EncodeMode::Fast))),
        ),
        (
            "MT Eviction-Based",
            Box::new(|m| mt(m, NonMtKind::Eviction)),
        ),
        (
            "MT Misalignment-Based",
            Box::new(|m| mt(m, NonMtKind::Misalignment)),
        ),
    ];
    for (label, run) in &rows {
        print!("{label:<34}");
        for &m in &machines {
            match run(m) {
                Some(e) => print!(
                    " {:>9} {:>7}",
                    fmt(e.rate_kbps, 2),
                    format!("{}%", fmt(e.error_rate * 100.0, 2))
                ),
                None => print!(" {:>9} {:>7}", "--", "--"),
            }
        }
        println!();
    }
    println!("\npaper reference: non-MT fast ~29-35 Kbps at <1.5% error; MT ~6-15 Kbps;");
    println!("E-2288G MT column empty (hyper-threading disabled).");
}

//! Diagnostic: per-phase frontend trace events for the non-MT
//! misalignment channel's round structure, dumped through the
//! `leaky_trace` event stream instead of hand-formatted reports.
use leaky_bench::debug::{print_events, print_summary};
use leaky_cpu::{Core, ProcessorModel};
use leaky_frontend::{ThreadId, TraceHook, TraceMode};
use leaky_isa::{same_set_chain, Alignment, DsbSet};
use leaky_trace::StallSummary;

fn main() {
    let mut core = Core::new(ProcessorModel::xeon_e2288g(), 42);
    let recv = same_set_chain(0x0041_8000, DsbSet::new(3), 5, Alignment::Aligned);
    let send = same_set_chain(0x0082_0000, DsbSet::new(3), 3, Alignment::Misaligned);
    let tid = ThreadId::T0;
    let mut total = StallSummary::default();
    println!("--- m=0 fast rounds (recv, recv) ---");
    for r in 0..4 {
        core.set_trace(TraceHook::new(TraceMode::Events));
        let a = core.run_once(tid, &recv);
        let b = core.run_once(tid, &recv);
        println!(
            "round {r}: init {:.2}c decode {:.2}c locked={}",
            a.cycles,
            b.cycles,
            core.frontend().lsd_locked(tid, &recv)
        );
        let hook = core.take_trace();
        print_events(hook.events().unwrap_or(&[]));
        if let Some(s) = hook.summary() {
            total.merge(&s);
        }
    }
    println!("--- m=1 rounds (recv, send-mis, recv) ---");
    for r in 0..4 {
        core.set_trace(TraceHook::new(TraceMode::Events));
        let a = core.run_once(tid, &recv);
        let s = core.run_once(tid, &send);
        let b = core.run_once(tid, &recv);
        println!(
            "round {r}: init {:.2} send {:.2} decode {:.2} locked={}",
            a.cycles,
            s.cycles,
            b.cycles,
            core.frontend().lsd_locked(tid, &recv)
        );
        let hook = core.take_trace();
        print_events(hook.events().unwrap_or(&[]));
        if let Some(s) = hook.summary() {
            total.merge(&s);
        }
    }
    println!("--- all rounds folded ---");
    print_summary(&total);
}

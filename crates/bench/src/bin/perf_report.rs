//! `perf_report`: the repo's perf-trajectory harness.
//!
//! Times the frontend simulator's hot primitives (one iteration per
//! delivery path, raw DSB operations, long-run steady-state collapse)
//! and representative per-bit covert-channel costs, then emits the
//! results as JSON in the `BENCH_frontend.json` schema.
//!
//! Usage:
//!
//! ```text
//! perf_report                 # print JSON report to stdout
//! perf_report --out FILE      # also write the report to FILE
//! perf_report --check FILE    # compare against a committed baseline;
//!                             # exit 1 if FILE is malformed or any
//!                             # metric regressed more than 3x
//! perf_report --quick         # fewer samples (CI smoke mode)
//! ```

use std::process::ExitCode;

use leaky_bench::perf::{parse_json, render_report, report_metrics, time_ns_per_op, Metric};
use leaky_cpu::ProcessorModel;
use leaky_frontend::{
    Dsb, Frontend, FrontendConfig, LineId, SmtDsbPolicy, ThreadId, TraceHook, TraceMode,
};
use leaky_frontends::channels::ChannelSpec;
use leaky_isa::{same_set_chain, Alignment, Block, BlockChain, DsbSet, FrontendGeometry};
use leaky_stats::error_rate;
use std::hint::black_box;

/// Maximum tolerated slowdown of any metric versus the committed
/// baseline before `--check` fails (generous: CI machines vary).
const MAX_REGRESSION: f64 = 3.0;

/// Tolerated slowdown of the `trace_off_*` metrics — the zero-cost-
/// when-off trace contract: a dormant [`TraceHook`] may cost at most 2%
/// on the hot paths it instruments. Scaled by the same machine factor
/// as everything else. `--quick`'s few samples are too noisy for a 2%
/// gate, so quick checks fall back to [`MAX_REGRESSION`].
const TRACE_OFF_REGRESSION: f64 = 1.02;

struct Budget {
    samples: usize,
    iter_ops: u64,
    raw_ops: u64,
    bit_ops: u64,
}

impl Budget {
    fn new(quick: bool) -> Self {
        if quick {
            Budget {
                samples: 5,
                iter_ops: 2_000,
                raw_ops: 200_000,
                bit_ops: 64,
            }
        } else {
            Budget {
                samples: 9,
                iter_ops: 10_000,
                raw_ops: 1_000_000,
                bit_ops: 256,
            }
        }
    }
}

fn warm_frontend(config: FrontendConfig, chain: &BlockChain) -> Frontend {
    let mut fe = Frontend::new(config);
    for _ in 0..8 {
        fe.run_iteration(ThreadId::T0, chain);
    }
    fe
}

fn measure(budget: &Budget) -> Vec<Metric> {
    let mut metrics = Vec::new();
    let mut push = |name: &str, ns: f64, ops: u64| {
        metrics.push(Metric {
            name: name.to_string(),
            ns_per_op: ns,
            ops_per_sample: ops,
        });
    };

    // One warm LSD-streaming iteration (8 aligned same-set blocks).
    let chain8 = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
    let mut fe = warm_frontend(FrontendConfig::default(), &chain8);
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(fe.run_iteration(ThreadId::T0, &chain8));
        },
    );
    push("lsd_iteration", ns, budget.iter_ops);

    // The same warm-LSD iteration with the dormant trace hook
    // explicitly installed: the zero-cost-when-off contract, gated at
    // `TRACE_OFF_REGRESSION` (not `MAX_REGRESSION`) by `--check`.
    let mut fe = warm_frontend(FrontendConfig::default(), &chain8);
    fe.set_trace(TraceHook::new(TraceMode::Off));
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(fe.run_iteration(ThreadId::T0, &chain8));
        },
    );
    push("trace_off_lsd_iteration", ns, budget.iter_ops);

    // One warm DSB-delivery iteration (LSD disabled).
    let mut fe = warm_frontend(
        FrontendConfig {
            lsd_enabled: false,
            ..FrontendConfig::default()
        },
        &chain8,
    );
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(fe.run_iteration(ThreadId::T0, &chain8));
        },
    );
    push("dsb_iteration", ns, budget.iter_ops);

    // One MITE-thrashing iteration (9 same-set blocks overflow the ways).
    let chain9 = same_set_chain(0x0041_8000, DsbSet::new(0), 9, Alignment::Aligned);
    let mut fe = warm_frontend(FrontendConfig::default(), &chain9);
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(fe.run_iteration(ThreadId::T0, &chain9));
        },
    );
    push("mite_iteration", ns, budget.iter_ops);

    // One LCP-block iteration (instruction-granular decode model).
    let lcp = BlockChain::new(vec![Block::lcp_adds(
        leaky_isa::Addr::new(0x10_0000),
        leaky_isa::LcpPattern::Mixed,
        16,
    )]);
    let mut fe = warm_frontend(FrontendConfig::default(), &lcp);
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(fe.run_iteration(ThreadId::T0, &lcp));
        },
    );
    push("lcp_iteration", ns, budget.iter_ops);

    // Misaligned chain under SMT: streaming-path sibling-crossing
    // bookkeeping plus window-crossing penalties.
    let mis = same_set_chain(0x0082_0000, DsbSet::new(0), 3, Alignment::Misaligned);
    let mut fe = Frontend::new(FrontendConfig::default());
    fe.set_active(ThreadId::T0, true);
    fe.set_active(ThreadId::T1, true);
    for _ in 0..8 {
        fe.run_iteration(ThreadId::T1, &mis);
    }
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(fe.run_iteration(ThreadId::T1, &mis));
        },
    );
    push("smt_crossing_iteration", ns, budget.iter_ops);

    // Raw DSB primitives.
    let geom = FrontendGeometry::skylake();
    let mut dsb = Dsb::new(geom, SmtDsbPolicy::Competitive);
    let hit_line = LineId {
        thread: 0,
        window: 64,
        chunk: 0,
    };
    dsb.insert(hit_line);
    let ns = time_ns_per_op(budget.raw_ops / 10, budget.samples, budget.raw_ops, || {
        black_box(dsb.lookup(hit_line));
    });
    push("dsb_lookup_hit", ns, budget.raw_ops);

    // Cyclic inserts of 9 same-set lines: every insert misses and evicts.
    let mut dsb = Dsb::new(geom, SmtDsbPolicy::Competitive);
    let mut next = 0u64;
    let ns = time_ns_per_op(budget.raw_ops / 10, budget.samples, budget.raw_ops, || {
        black_box(dsb.insert(LineId {
            thread: 0,
            window: next * 32,
            chunk: 0,
        }));
        next = (next + 1) % 9;
    });
    push("dsb_insert_evict", ns, budget.raw_ops);

    // Steady-state collapse: Fig. 4-scale run (800 M iterations) must be
    // handled in ~constant time by the period detector.
    let ns = time_ns_per_op(1, budget.samples, 10, || {
        let mut fe = Frontend::new(FrontendConfig::default());
        black_box(fe.run_iterations(ThreadId::T0, &chain8, 800_000_000));
    });
    push("run_iterations_800m", ns, 10);

    // One warm LSD run through the full Core layer (frontend + backend
    // throughput memo + power deposit + clocks): the delta against
    // `lsd_iteration` is the per-run bookkeeping the channels pay.
    let mut core = leaky_cpu::Core::new(ProcessorModel::xeon_e2288g(), 7);
    for _ in 0..8 {
        core.run_once(ThreadId::T0, &chain8);
    }
    let ns = time_ns_per_op(
        budget.iter_ops / 10,
        budget.samples,
        budget.iter_ops,
        || {
            black_box(core.run_once(ThreadId::T0, &chain8));
        },
    );
    push("core_run_once_lsd", ns, budget.iter_ops);

    // Per-bit covert-channel costs (the quantity that bounds how many
    // Table II-VI scenarios a sweep can afford); channels come from the
    // registry and are measured through the CovertChannel debug hook.
    for (metric, channel) in [
        ("bit_non_mt_eviction", "non-mt-fast-eviction"),
        ("bit_non_mt_misalignment", "non-mt-fast-misalignment"),
    ] {
        let mut ch = ChannelSpec::new(channel)
            .model(ProcessorModel::xeon_e2288g())
            .seed(1)
            .build()
            .expect("registered non-MT channel");
        let mut bit = false;
        let ns = time_ns_per_op(budget.bit_ops / 4, budget.samples, budget.bit_ops, || {
            bit = !bit;
            black_box(ch.debug_measure(bit));
        });
        push(metric, ns, budget.bit_ops);

        // Re-measured with the dormant hook explicitly installed — the
        // per-bit half of the zero-cost-when-off contract.
        ch.set_trace(TraceHook::new(TraceMode::Off));
        let ns = time_ns_per_op(budget.bit_ops / 4, budget.samples, budget.bit_ops, || {
            bit = !bit;
            black_box(ch.debug_measure(bit));
        });
        push(&format!("trace_off_{metric}"), ns, budget.bit_ops);
    }

    // Bit-string scoring: 4096-bit sent/received pair (§VI error rates).
    let sent: Vec<bool> = (0..4096u32)
        .map(|i| i.wrapping_mul(2654435761) & 64 != 0)
        .collect();
    let mut received = sent.clone();
    for i in (0..received.len()).step_by(17) {
        received[i] = !received[i];
    }
    let ns = time_ns_per_op(2, budget.samples, 20, || {
        black_box(error_rate(&sent, &received));
    });
    push("error_rate_4096", ns, 20);

    // Sweep-orchestration throughput: ns per grid cell for one quick
    // sweep of the whole leaky_exp registry, at 1 worker and at 4
    // workers (the layer Tables II-VI and Fig. 8 execute on; the
    // 4-worker number tracks pool overhead and, on multi-core runners,
    // scaling). Median of a few whole-registry runs.
    for jobs in [1usize, 4] {
        let runs = 3;
        let mut per_cell = Vec::with_capacity(runs);
        let mut cells = 0;
        for _ in 0..runs {
            let (n, ns) = leaky_bench::sweep::quick_sweep_throughput(jobs);
            cells = n as u64;
            per_cell.push(ns as f64 / n as f64);
        }
        per_cell.sort_by(|a, b| a.total_cmp(b));
        push(
            &format!("sweep_cell_quick_jobs{jobs}"),
            per_cell[per_cell.len() / 2],
            cells,
        );
    }

    metrics
}

fn check(metrics: &[Metric], baseline_path: &str, quick: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{baseline_path} is malformed: {e}"))?;
    let baseline = report_metrics(&doc).map_err(|e| format!("{baseline_path}: {e}"))?;
    let mut failures = Vec::new();
    // A baseline metric the harness no longer measures means the gate
    // silently lost coverage — fail loudly instead.
    for (name, _) in &baseline {
        if !metrics.iter().any(|m| &m.name == name) {
            failures.push(format!(
                "baseline metric {name:?} is no longer measured; update {baseline_path}"
            ));
        }
    }
    // Normalize by the median now/baseline ratio: the committed numbers
    // come from one machine, so a uniformly slower (or faster) runner
    // shifts every metric together, and only a metric regressing beyond
    // the tolerance *relative to its peers in the same run* is a real
    // simulator regression.
    let mut ratios: Vec<(String, f64, f64)> = Vec::new();
    for m in metrics {
        let Some((_, base)) = baseline.iter().find(|(name, _)| *name == m.name) else {
            println!(
                "{:<26} {:>12} {:>12.1} {:>8}",
                m.name, "--", m.ns_per_op, "new"
            );
            continue;
        };
        let ratio = if *base > 0.0 {
            m.ns_per_op / base
        } else {
            f64::INFINITY
        };
        ratios.push((m.name.clone(), *base, ratio));
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|(_, _, r)| *r).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let machine_factor = if sorted.is_empty() {
        1.0
    } else {
        sorted[sorted.len() / 2].max(1.0)
    };
    let limit = MAX_REGRESSION * machine_factor;
    // The zero-cost-when-off metrics get the tight gate in full mode;
    // quick samples are too noisy for a 2% tolerance.
    let tight = if quick {
        limit
    } else {
        TRACE_OFF_REGRESSION * machine_factor
    };
    println!("machine factor (median ratio, floored at 1): {machine_factor:.2}");
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "metric", "baseline ns", "now ns", "ratio"
    );
    for (name, base, ratio) in &ratios {
        println!(
            "{:<34} {:>12.1} {:>12.1} {:>7.2}x",
            name,
            base,
            base * ratio,
            ratio
        );
        let metric_limit = if name.starts_with("trace_off_") {
            tight
        } else {
            limit
        };
        if *ratio > metric_limit {
            failures.push(format!(
                "{name}: {:.1} ns vs baseline {base:.1} ns ({ratio:.2}x > {metric_limit:.2}x limit)",
                base * ratio
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("perf regression:\n  {}", failures.join("\n  ")))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out = arg_value("--out");
    let baseline = arg_value("--check");

    let metrics = measure(&Budget::new(quick));

    if let Some(path) = &baseline {
        return match check(&metrics, path, quick) {
            Ok(()) => {
                println!(
                    "perf check OK (metrics within {MAX_REGRESSION}x, trace_off within {}x)",
                    if quick {
                        MAX_REGRESSION
                    } else {
                        TRACE_OFF_REGRESSION
                    }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = render_report(&metrics, None);
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{report}");
    ExitCode::SUCCESS
}

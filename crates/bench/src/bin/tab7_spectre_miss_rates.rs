//! Table VII: L1 miss rates of Spectre v1 using six disclosure channels.
//!
//! Paper: MEM F+R 2.81%, L1D F+R 4.79%, L1D LRU 4.48%, L1I F+R 0.45%,
//! L1I P+P 0.48%, Frontend 0.21% — the frontend channel leaves the caches
//! quietest of all.

use leaky_bench::table::fmt;
use leaky_spectre::attack::table7;

fn main() {
    println!("Table VII: Spectre v1 L1 miss rates by disclosure channel (Gold 6226)\n");
    // A 24-chunk (120-bit) secret; every channel must recover it exactly.
    let secret: Vec<u8> = (0..24).map(|i| (i * 7 + 3) % 32).collect();
    let rows = table7(&secret, 2024);
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "channel", "L1 miss", "accuracy", "L1I misses", "L1D misses"
    );
    println!("{:-<60}", "");
    for (kind, result) in &rows {
        println!(
            "{:<10} {:>11}% {:>9}% {:>12} {:>12}",
            kind.label(),
            fmt(result.l1_miss_rate() * 100.0, 2),
            fmt(result.accuracy() * 100.0, 0),
            result.l1i_misses,
            result.l1d_misses,
        );
    }
    println!("\npaper:   MEM F+R 2.81%  L1D F+R 4.79%  L1D LRU 4.48%  L1I F+R 0.45%  L1I P+P 0.48%  Frontend 0.21%");
    println!("shape:   Frontend < L1I channels << data-cache channels; frontend displaces no cache lines");
}

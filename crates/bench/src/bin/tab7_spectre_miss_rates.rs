//! Table VII: L1 miss rates of Spectre v1 using six disclosure channels.
//!
//! Paper: MEM F+R 2.81%, L1D F+R 4.79%, L1D LRU 4.48%, L1I F+R 0.45%,
//! L1I P+P 0.48%, Frontend 0.21% — the frontend channel leaves the caches
//! quietest of all.
//!
//! Thin wrapper over the `tab7_spectre_miss_rates` spec in `leaky_exp`
//! (one attack per worker-pool cell; each `SpectreV1` owns its core,
//! victim and RNG); output is bit-identical to the pre-migration binary
//! (`tests/golden/tab7_spectre_miss_rates.txt`).

fn main() {
    leaky_bench::sweep::run_legacy("tab7_spectre_miss_rates");
}

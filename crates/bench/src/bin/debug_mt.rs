//! Diagnostic: MT misalignment interaction, bottom-up — first the raw
//! core-level batches (is the cross-thread collision visible at all?),
//! each followed by its folded `leaky_trace` stall summary, then the
//! full channel through the shared [`leaky_bench::debug`] dump.
use leaky_bench::debug::{dump_channel, print_summary};
use leaky_cpu::{Core, ProcessorModel, ThreadWork};
use leaky_frontend::{ThreadId, TraceHook, TraceMode};
use leaky_frontends::channels::ChannelSpec;
use leaky_isa::{same_set_chain, Alignment, DsbSet};

fn summarize(core: &mut Core) {
    if let Some(s) = core.take_trace().summary() {
        print_summary(&s);
    }
    core.set_trace(TraceHook::new(TraceMode::Summary));
}

fn main() {
    let mut core = Core::new(ProcessorModel::gold_6226(), 13);
    core.set_trace(TraceHook::new(TraceMode::Summary));
    let recv = same_set_chain(0x0041_8000, DsbSet::new(3), 5, Alignment::Aligned);
    let send = same_set_chain(0x0082_0000, DsbSet::new(3), 3, Alignment::Misaligned);
    // Warm receiver solo to LSD
    core.run_loop(ThreadId::T0, &recv, 5);
    println!(
        "solo locked: {}",
        core.frontend().lsd_locked(ThreadId::T0, &recv)
    );
    summarize(&mut core);
    // m=1 batch
    let (r, s) = core.run_concurrent(
        ThreadWork {
            chain: &recv,
            iterations: 100,
        },
        ThreadWork {
            chain: &send,
            iterations: 100,
        },
    );
    println!("m=1 batch: recv {:.2}c/iter", r.cycles / 100.0);
    println!(
        "          send {:.2}c/iter iters={}",
        s.cycles / s.iterations as f64,
        s.iterations
    );
    summarize(&mut core);
    // m=0 batch
    let r0 = core.run_loop(ThreadId::T0, &recv, 100);
    println!("m=0 batch: recv {:.2}c/iter", r0.cycles / 100.0);
    summarize(&mut core);

    // The same interaction, end to end through the channel protocol.
    println!();
    let mut ch = ChannelSpec::new("mt-misalignment")
        .model(ProcessorModel::gold_6226())
        .seed(13)
        .build()
        .expect("Gold 6226 has SMT");
    dump_channel("MT misalign channel (Gold 6226)", ch.as_mut(), 12);
}

//! Diagnostic: MT misalignment interaction, bottom-up — first the raw
//! core-level batches (is the cross-thread collision visible at all?),
//! then the full channel through the shared [`leaky_bench::debug`] dump.
use leaky_bench::debug::dump_channel;
use leaky_cpu::{Core, ProcessorModel, ThreadWork};
use leaky_frontend::ThreadId;
use leaky_frontends::channels::ChannelSpec;
use leaky_isa::{same_set_chain, Alignment, DsbSet};

fn main() {
    let mut core = Core::new(ProcessorModel::gold_6226(), 13);
    let recv = same_set_chain(0x0041_8000, DsbSet::new(3), 5, Alignment::Aligned);
    let send = same_set_chain(0x0082_0000, DsbSet::new(3), 3, Alignment::Misaligned);
    // Warm receiver solo to LSD
    core.run_loop(ThreadId::T0, &recv, 5);
    println!(
        "solo locked: {}",
        core.frontend().lsd_locked(ThreadId::T0, &recv)
    );
    // m=1 batch
    let (r, s) = core.run_concurrent(
        ThreadWork {
            chain: &recv,
            iterations: 100,
        },
        ThreadWork {
            chain: &send,
            iterations: 100,
        },
    );
    println!(
        "m=1 batch: recv {:.2}c/iter [{}]",
        r.cycles / 100.0,
        r.report
    );
    println!(
        "          send {:.2}c/iter iters={} [{}]",
        s.cycles / s.iterations as f64,
        s.iterations,
        s.report
    );
    // m=0 batch
    let r0 = core.run_loop(ThreadId::T0, &recv, 100);
    println!(
        "m=0 batch: recv {:.2}c/iter [{}]",
        r0.cycles / 100.0,
        r0.report
    );

    // The same interaction, end to end through the channel protocol.
    println!();
    let mut ch = ChannelSpec::new("mt-misalignment")
        .model(ProcessorModel::gold_6226())
        .seed(13)
        .build()
        .expect("Gold 6226 has SMT");
    dump_channel("MT misalign channel (Gold 6226)", ch.as_mut(), 12);
}

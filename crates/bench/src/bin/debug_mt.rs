//! Diagnostic: MT misalignment interaction at the core level.
use leaky_cpu::{Core, ProcessorModel, ThreadWork};
use leaky_frontend::ThreadId;
use leaky_isa::{same_set_chain, Alignment, DsbSet};

fn main() {
    let mut core = Core::new(ProcessorModel::gold_6226(), 13);
    let recv = same_set_chain(0x0041_8000, DsbSet::new(3), 5, Alignment::Aligned);
    let send = same_set_chain(0x0082_0000, DsbSet::new(3), 3, Alignment::Misaligned);
    // Warm receiver solo to LSD
    core.run_loop(ThreadId::T0, &recv, 5);
    println!(
        "solo locked: {}",
        core.frontend().lsd_locked(ThreadId::T0, &recv)
    );
    // m=1 batch
    let (r, s) = core.run_concurrent(
        ThreadWork {
            chain: &recv,
            iterations: 100,
        },
        ThreadWork {
            chain: &send,
            iterations: 100,
        },
    );
    println!(
        "m=1 batch: recv {:.2}c/iter [{}]",
        r.cycles / 100.0,
        r.report
    );
    println!(
        "          send {:.2}c/iter iters={} [{}]",
        s.cycles / s.iterations as f64,
        s.iterations,
        s.report
    );
    // m=0 batch
    let r0 = core.run_loop(ThreadId::T0, &recv, 100);
    println!(
        "m=0 batch: recv {:.2}c/iter [{}]",
        r0.cycles / 100.0,
        r0.report
    );
}

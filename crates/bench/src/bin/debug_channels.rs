//! Diagnostic: print raw per-bit measurements for the channels.
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends::params::{ChannelParams, EncodeMode};

fn main() {
    let mut ch = NonMtChannel::new(
        ProcessorModel::xeon_e2288g(),
        NonMtKind::Misalignment,
        EncodeMode::Fast,
        ChannelParams::misalignment_defaults(),
        42,
    );
    let dec = ch.debug_decoder();
    println!(
        "non-MT fast misalign 2288G decoder: zero={:.1} one={:.1} thr={:.1}",
        dec.zero_mean(),
        dec.one_mean(),
        dec.threshold()
    );
    for i in 0..12 {
        let bit = i % 2 == 1;
        let m = ch.debug_measure(bit);
        println!(
            "  bit={} meas={:.1} -> {}",
            bit as u8,
            m,
            dec.decode(m) as u8
        );
    }

    let mut ch = MtChannel::new(
        ProcessorModel::gold_6226(),
        MtKind::Misalignment,
        ChannelParams::mt_misalignment_defaults(),
        13,
    )
    .unwrap();
    let dec = ch.debug_decoder();
    println!(
        "MT misalign 6226 decoder: zero={:.2} one={:.2} thr={:.2}",
        dec.zero_mean(),
        dec.one_mean(),
        dec.threshold()
    );
    for i in 0..12 {
        let bit = i % 2 == 1;
        let m = ch.debug_measure(bit);
        println!(
            "  bit={} meas={:.2} -> {}",
            bit as u8,
            m,
            dec.decode(m) as u8
        );
    }
}

//! Diagnostic: print raw per-bit measurements for the channels, built
//! through the channel registry and dumped via the shared
//! [`leaky_bench::debug`] helper.
use leaky_bench::debug::dump_channel;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::ChannelSpec;

fn main() {
    let mut ch = ChannelSpec::new("non-mt-fast-misalignment")
        .model(ProcessorModel::xeon_e2288g())
        .seed(42)
        .build()
        .expect("non-MT channel builds on any machine");
    dump_channel("non-MT fast misalign (E-2288G)", ch.as_mut(), 12);

    let mut ch = ChannelSpec::new("mt-misalignment")
        .model(ProcessorModel::gold_6226())
        .seed(13)
        .build()
        .expect("Gold 6226 has SMT");
    dump_channel("MT misalign (Gold 6226)", ch.as_mut(), 12);
}

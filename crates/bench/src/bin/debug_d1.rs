//! Diagnostic: the MT eviction channel at its weakest operating point
//! (d = 1, the smallest receiver footprint of Fig. 8), dumped via the
//! shared [`leaky_bench::debug`] helper.
use leaky_bench::debug::dump_channel;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::ChannelSpec;
use leaky_frontends::params::ChannelParams;

fn main() {
    let mut ch = ChannelSpec::new("mt-eviction")
        .model(ProcessorModel::gold_6226())
        .params(ChannelParams::mt_defaults().with_d(1))
        .seed(99)
        .build()
        .expect("Gold 6226 has SMT");
    dump_channel("MT eviction d=1 (Gold 6226)", ch.as_mut(), 14);
}

use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::params::ChannelParams;

fn main() {
    let mut ch = MtChannel::new(
        ProcessorModel::gold_6226(),
        MtKind::Eviction,
        ChannelParams::mt_defaults().with_d(1),
        99,
    )
    .unwrap();
    let dec = ch.debug_decoder();
    println!(
        "d=1 decoder: zero={:.2} one={:.2} thr={:.2} sep={:.2}",
        dec.zero_mean(),
        dec.one_mean(),
        dec.threshold(),
        dec.separation()
    );
    for i in 0..14 {
        let bit = i % 2 == 1;
        let m = ch.debug_measure(bit);
        println!("bit={} meas={:.2} -> {}", bit as u8, m, dec.decode(m) as u8);
    }
}

//! Figure 9: histogram of package power while delivering µops from the
//! LSD, the DSB, or MITE+DSB (Gold 6226).
//!
//! Paper: three overlapping-but-separable distributions centred near 50 W
//! (LSD), 55 W (DSB) and 65 W (MITE+DSB).

use leaky_cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{same_set_chain, Alignment, BlockChain, DsbSet};
use leaky_stats::Histogram;

const SAMPLES: usize = 4000;

fn sample_power(core: &mut Core, chain: &BlockChain, hist: &mut Histogram) {
    for _ in 0..8 {
        core.run_once(ThreadId::T0, chain);
    }
    for _ in 0..SAMPLES {
        let run = core.run_once(ThreadId::T0, chain);
        hist.push(core.sample_power_watts(&run.report));
    }
}

fn main() {
    println!("Figure 9: package power by frontend delivery path (Gold 6226)\n");
    let lsd_chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
    let mite_chain = same_set_chain(0x0082_0000, DsbSet::new(0), 9, Alignment::Aligned);

    let mut lsd_hist = Histogram::new(40.0, 75.0, 70);
    let mut dsb_hist = Histogram::new(40.0, 75.0, 70);
    let mut mite_hist = Histogram::new(40.0, 75.0, 70);

    let mut core = Core::new(ProcessorModel::gold_6226(), 5);
    sample_power(&mut core, &lsd_chain, &mut lsd_hist);
    sample_power(&mut core, &mite_chain, &mut mite_hist);
    let mut core2 = Core::with_microcode(ProcessorModel::gold_6226(), MicrocodePatch::Patch2, 6);
    sample_power(&mut core2, &lsd_chain, &mut dsb_hist);

    for (name, hist, paper) in [
        ("LSD delivery", &lsd_hist, 50.0),
        ("DSB delivery", &dsb_hist, 55.0),
        ("MITE+DSB delivery", &mite_hist, 65.0),
    ] {
        let mode = hist.mode_bin().map(|b| hist.bin_center(b)).unwrap_or(0.0);
        println!("{name:>18}: mode {mode:.1} W (paper ~{paper:.0} W)");
    }
    println!("\ncombined histogram (watts):");
    println!("{:>8}  {:>6} {:>6} {:>6}", "W", "LSD", "DSB", "MITE");
    for i in 0..lsd_hist.len() {
        let (l, d, m) = (
            lsd_hist.bin_count(i),
            dsb_hist.bin_count(i),
            mite_hist.bin_count(i),
        );
        if l + d + m > 0 {
            println!("{:>8.1}  {l:>6} {d:>6} {m:>6}", lsd_hist.bin_lo(i));
        }
    }
}

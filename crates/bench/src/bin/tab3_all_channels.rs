//! Table III: transmission and error rates of every eviction- and
//! misalignment-based covert channel (non-MT stealthy/fast + MT) on all
//! four Table I machines; alternating message, d = 6 (eviction) /
//! d = 5, M = 8 (misalignment).
//!
//! Thin wrapper: the sweep itself lives in `leaky_exp` (spec
//! `tab3_all_channels`; see EXPERIMENTS.md) and runs on the
//! deterministic worker pool, so output is bit-identical at any job
//! count — and to this binary's pre-migration stdout
//! (`tests/golden/tab3_all_channels.txt`).

fn main() {
    leaky_bench::sweep::run_legacy("tab3_all_channels");
}

//! Table III: transmission and error rates of every eviction- and
//! misalignment-based covert channel (non-MT stealthy/fast + MT) on all
//! four Table I machines; alternating message, d = 6 (eviction) /
//! d = 5, M = 8 (misalignment).

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends::params::{ChannelParams, EncodeMode, MessagePattern};
use leaky_frontends::run::Evaluation;

/// One table cell: evaluate a channel on a machine (`None` = unsupported).
type ChannelEval = Box<dyn Fn(ProcessorModel) -> Option<Evaluation>>;

const BITS: usize = 256;
const MT_BITS: usize = 96;

fn non_mt(model: ProcessorModel, kind: NonMtKind, mode: EncodeMode) -> Evaluation {
    let params = match kind {
        NonMtKind::Eviction => ChannelParams::eviction_defaults(),
        NonMtKind::Misalignment => ChannelParams::misalignment_defaults(),
    };
    let mut ch = NonMtChannel::new(model, kind, mode, params, 1234);
    ch.transmit(&MessagePattern::Alternating.generate(BITS, 0))
        .evaluation()
}

fn mt(model: ProcessorModel, kind: MtKind) -> Option<Evaluation> {
    let params = match kind {
        MtKind::Eviction => ChannelParams::mt_defaults(),
        MtKind::Misalignment => ChannelParams::mt_misalignment_defaults(),
    };
    let mut ch = MtChannel::new(model, kind, params, 1234).ok()?;
    Some(
        ch.transmit(&MessagePattern::Alternating.generate(MT_BITS, 0))
            .evaluation(),
    )
}

fn row(label: &str, evals: &[Option<Evaluation>]) {
    print!("{label:<34}");
    for e in evals {
        match e {
            Some(e) => print!(
                " {:>9} {:>7}",
                fmt(e.rate_kbps, 2),
                format!("{}%", fmt(e.error_rate * 100.0, 2))
            ),
            None => print!(" {:>9} {:>7}", "--", "--"),
        }
    }
    println!();
}

fn main() {
    let machines = ProcessorModel::all();
    println!("Table III: covert-channel rates (Kbps) and error rates, alternating message\n");
    print!("{:<34}", "channel");
    for m in &machines {
        print!(" {:>17}", m.name);
    }
    println!("\n{:-<110}", "");

    let configs: [(&str, ChannelEval); 6] = [
        (
            "Non-MT Stealthy Eviction-Based",
            Box::new(|m| Some(non_mt(m, NonMtKind::Eviction, EncodeMode::Stealthy))),
        ),
        (
            "Non-MT Stealthy Misalignment",
            Box::new(|m| Some(non_mt(m, NonMtKind::Misalignment, EncodeMode::Stealthy))),
        ),
        (
            "Non-MT Fast Eviction-Based",
            Box::new(|m| Some(non_mt(m, NonMtKind::Eviction, EncodeMode::Fast))),
        ),
        (
            "Non-MT Fast Misalignment",
            Box::new(|m| Some(non_mt(m, NonMtKind::Misalignment, EncodeMode::Fast))),
        ),
        ("MT Eviction-Based", Box::new(|m| mt(m, MtKind::Eviction))),
        (
            "MT Misalignment-Based",
            Box::new(|m| mt(m, MtKind::Misalignment)),
        ),
    ];

    for (label, run) in &configs {
        let evals: Vec<Option<Evaluation>> = machines.iter().map(|&m| run(m)).collect();
        row(label, &evals);
    }

    println!("\npaper reference points (alternating message):");
    println!("  Non-MT Fast Misalignment on E-2288G: 1410.84 Kbps, 0.00% error (fastest attack)");
    println!("  Non-MT rates >> MT rates; fast >= stealthy; E-2288G has no MT columns (SMT off)");
}

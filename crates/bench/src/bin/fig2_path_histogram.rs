//! Figure 2: timing histogram of LSD vs DSB vs MITE+DSB block delivery.
//!
//! Reproduces the paper's example histogram on the Gold 6226: three loops
//! whose steady-state delivery uses the LSD (8 aligned same-set blocks), the
//! DSB (the same loop with the LSD microcode-disabled — isolating pure DSB
//! streaming), and MITE+DSB (9 same-set blocks thrashing the 8-way set).
//! The separation between LSD/DSB and MITE+DSB drives the eviction channels
//! (§V-A); the separation between LSD and DSB drives the misalignment
//! channels (§V-B).

use leaky_bench::table::fmt;
use leaky_cpu::{Core, MicrocodePatch, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{same_set_chain, Alignment, BlockChain, DsbSet};
use leaky_stats::Histogram;

const SAMPLES: usize = 3000;

fn sample_loop(core: &mut Core, chain: &BlockChain, hist: &mut Histogram) {
    // Warm to steady state, then time individual iterations with rdtscp.
    for _ in 0..8 {
        core.run_once(ThreadId::T0, chain);
    }
    for _ in 0..SAMPLES {
        let t0 = core.rdtscp(ThreadId::T0);
        core.run_once(ThreadId::T0, chain);
        let t1 = core.rdtscp(ThreadId::T0);
        // Normalise per block so the three loops are comparable.
        hist.push((t1 - t0).max(0.0) / chain.len() as f64);
    }
}

fn main() {
    println!("Figure 2: per-block timing by frontend path (Gold 6226)");
    println!("paper: LSD and DSB modes well below MITE+DSB; LSD slower than DSB\n");

    let lsd_chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
    let mite_chain = same_set_chain(0x0082_0000, DsbSet::new(0), 9, Alignment::Aligned);

    let mut lsd_hist = Histogram::new(0.0, 30.0, 60);
    let mut dsb_hist = Histogram::new(0.0, 30.0, 60);
    let mut mite_hist = Histogram::new(0.0, 30.0, 60);

    let mut core = Core::new(ProcessorModel::gold_6226(), 42);
    sample_loop(&mut core, &lsd_chain, &mut lsd_hist);
    sample_loop(&mut core, &mite_chain, &mut mite_hist);
    // Pure-DSB delivery: same loop, LSD disabled by microcode.
    let mut core2 = Core::with_microcode(ProcessorModel::gold_6226(), MicrocodePatch::Patch2, 43);
    sample_loop(&mut core2, &lsd_chain, &mut dsb_hist);

    for (name, hist) in [
        ("DSB", &dsb_hist),
        ("LSD", &lsd_hist),
        ("MITE+DSB", &mite_hist),
    ] {
        let mode = hist.mode_bin().map(|b| hist.bin_center(b)).unwrap_or(0.0);
        println!(
            "{name:>9}: mode {} cyc/block ({} samples in range)",
            fmt(mode, 2),
            hist.total() - hist.overflow() - hist.underflow()
        );
    }
    println!("\ncombined histogram (cycles/block):");
    println!("{:>10}  {:>8} {:>8} {:>8}", "bin", "DSB", "LSD", "MITE+DSB");
    for i in 0..lsd_hist.len() {
        let (d, l, m) = (
            dsb_hist.bin_count(i),
            lsd_hist.bin_count(i),
            mite_hist.bin_count(i),
        );
        if d + l + m > 0 {
            println!("{:>10}  {d:>8} {l:>8} {m:>8}", fmt(lsd_hist.bin_lo(i), 2));
        }
    }
}

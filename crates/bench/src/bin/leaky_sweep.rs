//! `leaky_sweep`: the unified experiment-sweep CLI (DESIGN.md §7).
//!
//! Runs registered `leaky_exp` experiments on the deterministic scoped
//! worker pool and renders them in one of three formats. Output is
//! byte-identical at any `--jobs N` (pinned by `tests/sweep_determinism.rs`).
//!
//! ```text
//! leaky_sweep                          # run every registered sweep, table format
//! leaky_sweep fig8_d_sweep tab5_power_channels
//! leaky_sweep --list                   # registered names, grid sizes, titles
//! leaky_sweep --channels               # the covert-channel registry
//! leaky_sweep --quick --jobs 4         # CI smoke grids on 4 workers
//! leaky_sweep --format json            # leaky-frontends/sweep/v1 document
//! leaky_sweep --format legacy tab3_all_channels   # pre-migration stdout
//! ```

use std::process::ExitCode;

use leaky_bench::sweep::{
    default_jobs, has_legacy_rendering, render_json_document, render_legacy, render_table,
};
use leaky_exp::{run_experiment, standard_registry};
use leaky_frontends::channels::REGISTRY;

enum Format {
    Table,
    Json,
    Legacy,
}

fn usage() -> &'static str {
    "usage: leaky_sweep [EXPERIMENT...] [--list] [--channels] [--quick] [--jobs N] [--format table|json|legacy]"
}

fn main() -> ExitCode {
    let registry = standard_registry();
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut list = false;
    let mut channels = false;
    let mut jobs = default_jobs();
    let mut format = Format::Table;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--channels" => channels = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--jobs" => {
                let Some(n) = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::from(2);
                };
                jobs = n;
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    Some("legacy") => Format::Legacy,
                    other => {
                        eprintln!("unknown format {other:?}\n{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?}\n{}", usage());
                return ExitCode::from(2);
            }
            name => names.push(name.to_string()),
        }
    }

    if list {
        for exp in registry.iter() {
            println!(
                "{:<26} {:>3} cells ({:>2} quick)  {}",
                exp.name(),
                exp.grid(false).len(),
                exp.grid(true).len(),
                exp.title()
            );
        }
        return ExitCode::SUCCESS;
    }
    if channels {
        for info in &REGISTRY {
            println!(
                "{:<30} §{:<4} {:<7} {}",
                info.name,
                info.section,
                if info.requires_smt { "smt" } else { "any" },
                info.description
            );
        }
        return ExitCode::SUCCESS;
    }

    // Validate filters before running anything expensive.
    for name in &names {
        if registry.get(name).is_none() {
            eprintln!(
                "unknown experiment {name:?}; registered: {}",
                registry.names().join(", ")
            );
            return ExitCode::from(2);
        }
    }
    let selected: Vec<&str> = if names.is_empty() {
        registry.names()
    } else {
        names.iter().map(String::as_str).collect()
    };
    if matches!(format, Format::Legacy) {
        for name in &selected {
            if !has_legacy_rendering(name) {
                eprintln!("{name:?} has no legacy rendering (only the migrated paper sweeps do)");
                return ExitCode::from(2);
            }
        }
    }

    let runs: Vec<_> = selected
        .iter()
        .map(|name| run_experiment(registry.get(name).expect("validated"), quick, jobs))
        .collect();

    match format {
        Format::Table => {
            for (i, run) in runs.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{}", render_table(run));
            }
        }
        Format::Json => print!("{}", render_json_document(&runs)),
        Format::Legacy => {
            for run in &runs {
                // Renderability was validated before the runs started.
                print!("{}", render_legacy(run).expect("validated"));
            }
        }
    }
    ExitCode::SUCCESS
}

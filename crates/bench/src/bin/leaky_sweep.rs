//! `leaky_sweep`: the unified experiment-sweep CLI (DESIGN.md §7, §11).
//!
//! Runs registered `leaky_exp` experiments on the deterministic scoped
//! worker pool and renders them in one of three formats. Output is
//! byte-identical at any `--jobs N` (pinned by `tests/sweep_determinism.rs`),
//! and — with `--store`/`--resume` — byte-identical whether cells were
//! computed fresh or served from the on-disk result store (pinned by
//! `tests/sweep_resume.rs`).
//!
//! ```text
//! leaky_sweep                          # run every registered sweep, table format
//! leaky_sweep fig8_d_sweep tab5_power_channels
//! leaky_sweep --list                   # registered names, grid sizes, titles
//! leaky_sweep --channels               # the covert-channel registry
//! leaky_sweep --quick --jobs 4         # CI smoke grids on 4 workers
//! leaky_sweep --format json            # leaky-frontends/sweep/v1 document
//! leaky_sweep --format legacy tab3_all_channels   # pre-migration stdout
//! leaky_sweep --store results/ --resume --quick   # crash-safe resumable sweep
//! leaky_sweep --retries 2              # re-seeded retries for dying cells
//! leaky_sweep --faults 'panic:k1;abort:k2'        # deterministic fault drill
//! leaky_sweep --quick --trace --format json       # stall telemetry in the JSON
//! leaky_sweep --trace=events --trace-dir traces/ tab3_all_channels  # per-cell CSVs
//! leaky_sweep --scenario scenarios/tab3_uarch.toml --jobs 4         # run a bundle file
//! leaky_sweep --scenario s.toml --profile-dir scenarios/            # with file profiles
//! leaky_sweep --scenario scenarios/skylake.toml --validate          # schema check only
//! ```
//!
//! Store traffic is reported on *stderr* (`store[...]: ...` lines);
//! stdout stays a pure function of the sweep's deterministic state.
//!
//! Exit codes: 0 success (even with failed cells — they are rows, not
//! errors), 2 usage error, 3 sweep aborted by the fault plan, 1 store
//! I/O failure.

use std::path::Path;
use std::process::ExitCode;

use leaky_bench::sweep::{
    default_jobs, has_legacy_rendering, render_json_document, render_legacy, render_table,
    suggest_experiments, write_trace_files,
};
use leaky_exp::{
    run_experiment_with, standard_registry, FaultPlan, Registry, RunConfig, SweepError,
};
use leaky_frontends::channels::REGISTRY;
use leaky_scenario::profile::document_kind;
use leaky_scenario::toml::Doc;
use leaky_scenario::{parse_bundle, parse_profile, ProfileRegistry, ScenarioError};
use leaky_store::ResultStore;
use leaky_trace::TraceMode;

enum Format {
    Table,
    Json,
    Legacy,
}

fn usage() -> &'static str {
    "usage: leaky_sweep [EXPERIMENT...] [--list] [--channels] [--quick] [--jobs N] \
     [--format table|json|legacy] [--store DIR] [--resume] [--retries K] [--faults SPEC] \
     [--trace[=summary|events]] [--trace-dir DIR] \
     [--scenario FILE] [--profile-dir DIR] [--validate]"
}

/// Loads `--scenario FILE` into a single-experiment registry (merging
/// `--profile-dir` files over the built-in profiles first).
///
/// `Ok(None)` means `--validate` ran and reported success — the caller
/// exits 0 without sweeping. A `kind = "profile"` file is only valid
/// under `--validate` (profiles feed sweeps via `--profile-dir`; they
/// are not runnable on their own).
fn load_scenario(
    file: &str,
    profile_dir: Option<&str>,
    validate: bool,
) -> Result<Option<Registry>, ScenarioError> {
    let mut profiles = ProfileRegistry::builtins();
    if let Some(dir) = profile_dir {
        let loaded = profiles.load_dir(dir)?;
        eprintln!("profiles[{dir}]: {loaded} loaded");
    }
    let path = Path::new(file);
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::doc(format!("{}: {e}", path.display())))?;
    let doc = Doc::parse(&text).map_err(|e| e.in_file(path))?;
    let kind = document_kind(&doc)
        .map_err(|e| e.in_file(path))?
        .to_string();
    if kind == "profile" {
        let profile = parse_profile(&text).map_err(|e| e.in_file(path))?;
        if validate {
            println!("profile {}: ok", profile.key);
            return Ok(None);
        }
        return Err(ScenarioError::doc(format!(
            "{file} is a profile, not a scenario (profiles feed sweeps via --profile-dir)"
        )));
    }
    let bundle = parse_bundle(&text, &profiles).map_err(|e| e.in_file(path))?;
    if validate {
        println!(
            "scenario {}: ok ({} cells)",
            bundle.name,
            bundle.cell_count()
        );
        return Ok(None);
    }
    let registry = Registry::from_experiments([bundle.into_experiment()])
        .map_err(|e| ScenarioError::doc(e.to_string()))?;
    Ok(Some(registry))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut list = false;
    let mut channels = false;
    let mut jobs = default_jobs();
    let mut format = Format::Table;
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut retries: u32 = 0;
    let mut faults_spec: Option<String> = None;
    let mut trace = TraceMode::Off;
    let mut trace_dir: Option<String> = None;
    let mut scenario: Option<String> = None;
    let mut profile_dir: Option<String> = None;
    let mut validate = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--channels" => channels = true,
            "--resume" => resume = true,
            "--validate" => validate = true,
            "--scenario" => {
                let Some(file) = it.next() else {
                    eprintln!("--scenario needs a file\n{}", usage());
                    return ExitCode::from(2);
                };
                scenario = Some(file.clone());
            }
            "--profile-dir" => {
                let Some(dir) = it.next() else {
                    eprintln!("--profile-dir needs a directory\n{}", usage());
                    return ExitCode::from(2);
                };
                profile_dir = Some(dir.clone());
            }
            "--trace" => trace = TraceMode::Summary,
            "--trace-dir" => {
                let Some(dir) = it.next() else {
                    eprintln!("--trace-dir needs a directory\n{}", usage());
                    return ExitCode::from(2);
                };
                trace_dir = Some(dir.clone());
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--jobs" => {
                let Some(n) = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--jobs needs a positive integer\n{}", usage());
                    return ExitCode::from(2);
                };
                jobs = n;
            }
            "--retries" => {
                let Some(n) = it.next().and_then(|v| v.parse::<u32>().ok()) else {
                    eprintln!("--retries needs a non-negative integer\n{}", usage());
                    return ExitCode::from(2);
                };
                retries = n;
            }
            "--store" => {
                let Some(dir) = it.next() else {
                    eprintln!("--store needs a directory\n{}", usage());
                    return ExitCode::from(2);
                };
                store_dir = Some(dir.clone());
            }
            "--faults" => {
                let Some(spec) = it.next() else {
                    eprintln!("--faults needs a spec string\n{}", usage());
                    return ExitCode::from(2);
                };
                faults_spec = Some(spec.clone());
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    Some("legacy") => Format::Legacy,
                    other => {
                        eprintln!("unknown format {other:?}\n{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            flag if flag.starts_with("--trace=") => {
                trace = match flag["--trace=".len()..].parse() {
                    Ok(mode) => mode,
                    Err(e) => {
                        eprintln!("{e}\n{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?}\n{}", usage());
                return ExitCode::from(2);
            }
            name => names.push(name.to_string()),
        }
    }

    if scenario.is_none() {
        if profile_dir.is_some() {
            eprintln!(
                "--profile-dir needs --scenario FILE (profiles feed a scenario sweep)\n{}",
                usage()
            );
            return ExitCode::from(2);
        }
        if validate {
            eprintln!("--validate needs --scenario FILE\n{}", usage());
            return ExitCode::from(2);
        }
    }
    let registry = match &scenario {
        Some(file) => match load_scenario(file, profile_dir.as_deref(), validate) {
            Ok(Some(registry)) => registry,
            // --validate reported success; there is nothing to run.
            Ok(None) => return ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        None => standard_registry(),
    };

    if list {
        for exp in registry.iter() {
            println!(
                "{:<26} {:>3} cells ({:>2} quick)  {}",
                exp.name(),
                exp.grid(false).len(),
                exp.grid(true).len(),
                exp.title()
            );
        }
        return ExitCode::SUCCESS;
    }
    if channels {
        for info in &REGISTRY {
            println!(
                "{:<30} §{:<4} {:<7} {}",
                info.name,
                info.section,
                if info.requires_smt { "smt" } else { "any" },
                info.description
            );
        }
        return ExitCode::SUCCESS;
    }

    if resume && store_dir.is_none() {
        eprintln!(
            "--resume needs --store DIR (there is nothing to resume from)\n{}",
            usage()
        );
        return ExitCode::from(2);
    }
    if trace_dir.is_some() && trace == TraceMode::Off {
        eprintln!(
            "--trace-dir needs --trace (there are no trace files to write)\n{}",
            usage()
        );
        return ExitCode::from(2);
    }
    // Validate filters before running anything expensive.
    for name in &names {
        if registry.get(name).is_none() {
            let registered = registry.names();
            eprintln!(
                "unknown experiment {name:?}; registered: {}",
                registered.join(", ")
            );
            let near = suggest_experiments(name, &registered);
            if !near.is_empty() {
                eprintln!("did you mean: {}?", near.join(", "));
            }
            eprintln!("(run `leaky_sweep --list` for grid sizes and titles)");
            return ExitCode::from(2);
        }
    }
    let selected: Vec<&str> = if names.is_empty() {
        registry.names()
    } else {
        names.iter().map(String::as_str).collect()
    };
    if matches!(format, Format::Legacy) {
        for name in &selected {
            if !has_legacy_rendering(name) {
                eprintln!("{name:?} has no legacy rendering (only the migrated paper sweeps do)");
                return ExitCode::from(2);
            }
        }
    }

    let faults = match faults_spec {
        Some(spec) => FaultPlan::parse(&spec),
        None => FaultPlan::from_env(),
    };
    let faults = match faults {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("bad fault spec: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let store = match &store_dir {
        Some(dir) => match ResultStore::open(dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("cannot open result store: {e}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };

    let mut runs = Vec::with_capacity(selected.len());
    for name in &selected {
        let cfg = RunConfig {
            quick,
            jobs,
            retries,
            resume,
            store: store.as_ref(),
            faults: faults.clone(),
            trace,
        };
        let exp = registry.get(name).expect("validated");
        match run_experiment_with(exp, &cfg) {
            Ok(run) => {
                if let Some(stats) = &run.store_stats {
                    let recomputed = run.cells.len() - stats.hits;
                    eprintln!(
                        "store[{name}]: {} cells, {} hits, {recomputed} recomputed, {} stale, {} quarantined, {} writes",
                        run.cells.len(),
                        stats.hits,
                        stats.stale,
                        stats.quarantined,
                        stats.writes,
                    );
                }
                runs.push(run);
            }
            Err(SweepError::Aborted { key }) => {
                eprintln!("sweep {name} aborted by fault plan at cell {key:?}");
                eprintln!("completed cells are persisted; rerun with --resume to continue");
                return ExitCode::from(3);
            }
            Err(SweepError::Store(e)) => {
                eprintln!("sweep {name}: result store failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    if let Some(dir) = &trace_dir {
        match write_trace_files(&runs, Path::new(dir)) {
            // Stderr, like the store traffic lines: stdout stays a pure
            // function of the sweep's deterministic state.
            Ok(n) => eprintln!("trace[{dir}]: {n} files"),
            Err(e) => {
                eprintln!("cannot write trace files: {e}");
                return ExitCode::from(1);
            }
        }
    }

    match format {
        Format::Table => {
            for (i, run) in runs.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{}", render_table(run));
            }
        }
        Format::Json => print!("{}", render_json_document(&runs)),
        Format::Legacy => {
            for run in &runs {
                // Renderability was validated before the runs started.
                print!("{}", render_legacy(run).expect("validated"));
            }
        }
    }
    ExitCode::SUCCESS
}

//! Figure 8: MT Eviction-Based channel for d = 1..8 — transmission rate,
//! error rate and effective rate per machine.
//!
//! Paper shape: transmission rate grows with d (early declaration becomes
//! easier as the timing delta grows), while error rate also grows (the
//! receiver's LSD stops qualifying and the signal gets noisier); small d
//! suffers from tiny absolute timing differences.

use leaky_bench::table::fmt;
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::params::{ChannelParams, MessagePattern};

const BITS: usize = 96;

fn main() {
    println!("Figure 8: MT Eviction-Based channel vs receiver way number d\n");
    let machines = [
        ProcessorModel::gold_6226(),
        ProcessorModel::xeon_e2174g(),
        ProcessorModel::xeon_e2286g(),
    ];
    for model in machines {
        println!("{}:", model.name);
        println!(
            "{:>3} {:>12} {:>10} {:>14}",
            "d", "rate Kbps", "error", "effective Kbps"
        );
        for d in 1..=8usize {
            let params = ChannelParams::mt_defaults().with_d(d);
            let mut ch =
                MtChannel::new(model, MtKind::Eviction, params, 1000 + d as u64).expect("SMT");
            let run = ch.transmit(&MessagePattern::Alternating.generate(BITS, 0));
            println!(
                "{d:>3} {:>12} {:>9}% {:>14}",
                fmt(run.rate_kbps(), 2),
                fmt(run.error_rate() * 100.0, 2),
                fmt(run.effective_rate_kbps(), 2)
            );
        }
        println!();
    }
    println!(
        "paper (G-6226): rate grows ~50 -> ~250 Kbps over d = 1..8; errors grow toward ~15-25%"
    );
    println!(
        "NOTE (documented deviation, see EXPERIMENTS.md): our protocol wall-balances sender and"
    );
    println!(
        "receiver, so bit slots grow with the receiver footprint and rate *falls* with d; the"
    );
    println!(
        "paper's slots are sender-bound (q fixed), so its rate rises. The d = 6 operating point"
    );
    println!("used by Table III matches in both.");
}

//! Figure 8: MT Eviction-Based channel for d = 1..8 — transmission rate,
//! error rate and effective rate per machine.
//!
//! Paper shape: transmission rate grows with d (early declaration becomes
//! easier as the timing delta grows), while error rate also grows (the
//! receiver's LSD stops qualifying and the signal gets noisier); small d
//! suffers from tiny absolute timing differences. Our protocol's rate
//! *falls* with d — a documented deviation printed in the output and
//! explained in EXPERIMENTS.md.
//!
//! Thin wrapper over the `fig8_d_sweep` spec in `leaky_exp`; output is
//! bit-identical to the pre-migration binary
//! (`tests/golden/fig8_d_sweep.txt`).

fn main() {
    leaky_bench::sweep::run_legacy("fig8_d_sweep");
}

//! Perf-trajectory harness: wall-clock timing of the simulator's hot
//! primitives and a minimal JSON layer for `BENCH_frontend.json`.
//!
//! The `perf_report` binary uses this module to time the frontend's
//! per-iteration paths and per-bit channel costs, emit the results as
//! JSON, and (in `--check` mode) compare a fresh measurement against the
//! committed baseline so CI catches large simulator regressions. The
//! container has no crates.io access, so the JSON layer is hand-rolled:
//! a serializer for the flat report shape and a small recursive-descent
//! parser sufficient to read it back.

use std::fmt::Write as _;
use std::time::Instant;

/// One named measurement, in nanoseconds per operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (JSON key).
    pub name: String,
    /// Nanoseconds per operation (median over samples).
    pub ns_per_op: f64,
    /// Operations per timed sample (for context in the report).
    pub ops_per_sample: u64,
}

/// Times `op`, returning the median nanoseconds per operation.
///
/// Runs `warmup` untimed operations, then `samples` timed samples of
/// `ops` operations each, and reports the median sample to shed
/// scheduler noise. The closure should already hold any setup state.
pub fn time_ns_per_op<F: FnMut()>(warmup: u64, samples: usize, ops: u64, mut op: F) -> f64 {
    assert!(samples > 0 && ops > 0, "need at least one sample of one op");
    for _ in 0..warmup {
        op();
    }
    let mut per_op: Vec<f64> = (0..samples)
        .map(|_| {
            // lint: allow(wall-clock) — perf smoke measures real elapsed
            // time by definition; its output never reaches keys or goldens.
            let start = Instant::now();
            for _ in 0..ops {
                op();
            }
            start.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.total_cmp(b));
    per_op[per_op.len() / 2]
}

/// Serializes metrics (plus an optional pre-rendered `"reference"`
/// object) into the `BENCH_frontend.json` document shape.
pub fn render_report(metrics: &[Metric], reference_json: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"leaky-frontends/perf-report/v1\",\n");
    out.push_str("  \"unit\": \"ns_per_op\",\n  \"metrics\": {\n");
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"ns_per_op\": {:.2}, \"ops_per_sample\": {} }}{comma}",
            m.name, m.ns_per_op, m.ops_per_sample
        );
    }
    out.push_str("  }");
    if let Some(r) = reference_json {
        out.push_str(",\n  \"reference\": ");
        out.push_str(r.trim_end());
    }
    out.push_str("\n}\n");
    out
}

/// A parsed JSON value (subset: no escape sequences beyond `\"` and
/// `\\`, no scientific-notation edge cases beyond `f64::from_str`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => match bytes.get(*pos) {
                Some(&c @ (b'"' | b'\\' | b'/')) => {
                    out.push(c as char);
                    *pos += 1;
                }
                Some(b'n') => {
                    out.push('\n');
                    *pos += 1;
                }
                Some(b't') => {
                    out.push('\t');
                    *pos += 1;
                }
                other => return Err(format!("unsupported escape {other:?}")),
            },
            _ => out.push(b as char),
        }
    }
    Err("unterminated string".into())
}

/// Extracts the `metrics` map of a parsed report as `(name, ns_per_op)`
/// pairs.
///
/// # Errors
///
/// Returns an error when the document lacks a well-formed `metrics`
/// object.
pub fn report_metrics(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let metrics = doc
        .get("metrics")
        .ok_or_else(|| "report has no \"metrics\" object".to_string())?;
    let Json::Obj(pairs) = metrics else {
        return Err("\"metrics\" is not an object".into());
    };
    pairs
        .iter()
        .map(|(name, v)| {
            let ns = v
                .get("ns_per_op")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("metric {name:?} has no numeric ns_per_op"))?;
            Ok((name.clone(), ns))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_then_parse_roundtrips() {
        let metrics = vec![
            Metric {
                name: "lsd_iteration".into(),
                ns_per_op: 123.45,
                ops_per_sample: 1000,
            },
            Metric {
                name: "dsb_lookup_hit".into(),
                ns_per_op: 7.0,
                ops_per_sample: 100_000,
            },
        ];
        let text = render_report(&metrics, Some("{ \"note\": \"x\", \"n\": 3 }"));
        let doc = parse_json(&text).unwrap();
        let parsed = report_metrics(&doc).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "lsd_iteration");
        assert!((parsed[0].1 - 123.45).abs() < 1e-9);
        assert_eq!(
            doc.get("reference").unwrap().get("n"),
            Some(&Json::Num(3.0))
        );
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str("leaky-frontends/perf-report/v1".into()))
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("\"open").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_scalars() {
        let doc =
            parse_json("{\"a\": [1, -2.5, true, null], \"b\": {\"c\": \"s\\\"t\"},\n \"d\": 1e3}")
                .unwrap();
        assert_eq!(doc.get("d"), Some(&Json::Num(1000.0)));
        let Json::Arr(items) = doc.get("a").unwrap() else {
            panic!("a must be an array");
        };
        assert_eq!(items[1], Json::Num(-2.5));
        assert_eq!(items[2], Json::Bool(true));
        assert_eq!(items[3], Json::Null);
        assert_eq!(
            doc.get("b").unwrap().get("c"),
            Some(&Json::Str("s\"t".into()))
        );
    }

    #[test]
    fn missing_metrics_is_an_error() {
        let doc = parse_json("{\"schema\": \"x\"}").unwrap();
        assert!(report_metrics(&doc).is_err());
    }

    #[test]
    fn timer_returns_positive_medians() {
        let mut acc = 0u64;
        let ns = time_ns_per_op(2, 3, 100, || acc = acc.wrapping_add(1));
        assert!(ns >= 0.0);
        assert!(acc > 0);
    }
}

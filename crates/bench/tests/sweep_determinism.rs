//! Tier-1 determinism gates for the `leaky_sweep` CLI: worker count must
//! never leak into output. Runs the quick grids of a small experiment
//! subset (the full grids are covered by `sweep_golden.rs` and CI's
//! release-mode smoke step).

use std::process::Command;

fn sweep(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_leaky_sweep"))
        .args(args)
        .env_remove("LEAKY_SWEEP_JOBS")
        .output()
        .expect("leaky_sweep runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.success(),
    )
}

/// The small grid the determinism gate sweeps: cheap even in debug
/// builds, yet covering a migrated channel sweep, the derived-seed demo
/// grid, and the cross-microarchitecture sweep (whose cells build
/// per-profile cores, exercising the profile-keyed caches in parallel).
const GRID: [&str; 4] = [
    "tab5_power_channels",
    "fig8_d_sweep",
    "tab3_uarch",
    "rng_stream_grid",
];

#[test]
fn table_output_is_byte_identical_across_jobs() {
    let mut args1 = GRID.to_vec();
    args1.extend(["--quick", "--jobs", "1", "--format", "table"]);
    let mut args4 = GRID.to_vec();
    args4.extend(["--quick", "--jobs", "4", "--format", "table"]);
    let (stdout1, _, ok1) = sweep(&args1);
    let (stdout4, _, ok4) = sweep(&args4);
    assert!(ok1 && ok4, "leaky_sweep must exit 0");
    assert!(!stdout1.is_empty());
    assert_eq!(stdout1, stdout4, "--jobs must not change table output");
}

#[test]
fn json_output_is_byte_identical_across_jobs() {
    let mut args1 = GRID.to_vec();
    args1.extend(["--quick", "--jobs", "1", "--format", "json"]);
    let mut args4 = GRID.to_vec();
    args4.extend(["--quick", "--jobs", "4", "--format", "json"]);
    let (stdout1, _, ok1) = sweep(&args1);
    let (stdout4, _, ok4) = sweep(&args4);
    assert!(ok1 && ok4, "leaky_sweep must exit 0");
    assert_eq!(stdout1, stdout4, "--jobs must not change JSON output");
    // And the bytes must actually be a valid sweep document.
    let doc = leaky_bench::perf::parse_json(&stdout1).expect("valid JSON");
    assert!(doc.get("sweeps").is_some(), "document has a sweeps array");
}

#[test]
fn unknown_experiment_is_rejected_before_running() {
    let (stdout, stderr, ok) = sweep(&["no_such_experiment"]);
    assert!(!ok, "unknown name must fail");
    assert!(stdout.is_empty());
    assert!(
        stderr.contains("no_such_experiment") && stderr.contains("tab3_all_channels"),
        "error must name the offender and the registered sweeps: {stderr}"
    );
}

#[test]
fn list_names_every_registered_experiment() {
    let (stdout, _, ok) = sweep(&["--list"]);
    assert!(ok);
    for name in [
        "tab3_all_channels",
        "fig8_d_sweep",
        "tab5_power_channels",
        "tab7_spectre_miss_rates",
        "rng_stream_grid",
    ] {
        assert!(stdout.contains(name), "--list must mention {name}");
    }
}

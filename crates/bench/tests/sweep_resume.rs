//! Tier-1 gates for crash-safe resumable sweeps (DESIGN.md §11): the
//! result store, kill-and-resume, fault-injected failure rows, and
//! corruption quarantine, all driven through the `leaky_sweep` binary so
//! the whole stack (CLI flags → runner → store → renderers) is under
//! test, and a planned abort kills a *subprocess*, not the test harness.

use std::path::PathBuf;
use std::process::Command;

/// Exit status plus captured streams of one `leaky_sweep` invocation.
struct Sweep {
    stdout: String,
    stderr: String,
    code: i32,
}

fn sweep(args: &[&str]) -> Sweep {
    let out = Command::new(env!("CARGO_BIN_EXE_leaky_sweep"))
        .args(args)
        .env_remove("LEAKY_SWEEP_JOBS")
        .env_remove("LEAKY_FAULTS")
        .env_remove("LEAKY_STORE_EPOCH")
        .output()
        .expect("leaky_sweep runs");
    Sweep {
        stdout: String::from_utf8(out.stdout).expect("utf-8 stdout"),
        stderr: String::from_utf8(out.stderr).expect("utf-8 stderr"),
        code: out.status.code().expect("exit code"),
    }
}

/// A per-test scratch directory under the system temp dir, removed on
/// drop so repeated `cargo test` runs never see each other's stores.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("leaky-sweep-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The cheap test vehicle: 8 cells of derived-seed RNG streams.
const EXP: &str = "rng_stream_grid";
/// A mid-grid cell of the quick grid (cells are stream=0..8).
const MID_KEY: &str = "rng_stream_grid/profile=quick/stream=5";
const PANIC_KEY: &str = "rng_stream_grid/profile=quick/stream=3";

#[test]
fn warm_store_rerun_recomputes_nothing_and_is_byte_identical() {
    let store = Scratch::new("warm");
    for format in ["table", "json"] {
        let base = [
            EXP,
            "--quick",
            "--format",
            format,
            "--store",
            store.path(),
            "--resume",
        ];
        let cold = sweep(&[&base[..], &["--jobs", "2"]].concat());
        assert_eq!(cold.code, 0, "cold run: {}", cold.stderr);
        let warm = sweep(&[&base[..], &["--jobs", "4"]].concat());
        assert_eq!(warm.code, 0, "warm run: {}", warm.stderr);
        assert_eq!(
            cold.stdout, warm.stdout,
            "a fully cached rerun must be byte-identical ({format})"
        );
        // First format's warm run onward: every cell is a hit.
        assert!(
            warm.stderr.contains("8 cells, 8 hits, 0 recomputed"),
            "warm rerun must recompute nothing: {}",
            warm.stderr
        );
        assert!(
            warm.stderr.contains("0 quarantined, 0 writes"),
            "warm rerun must write nothing: {}",
            warm.stderr
        );
    }
}

#[test]
fn killed_sweep_resumes_to_the_uninterrupted_bytes() {
    // References: uninterrupted single-threaded runs, no store at all.
    let table_ref = sweep(&[EXP, "--quick", "--jobs", "1", "--format", "table"]);
    let json_ref = sweep(&[EXP, "--quick", "--jobs", "1", "--format", "json"]);
    assert_eq!(table_ref.code, 0);
    assert_eq!(json_ref.code, 0);

    for jobs in ["1", "4"] {
        let store = Scratch::new(&format!("kill{jobs}"));
        // Phase 1: the fault plan aborts the sweep mid-grid.
        let killed = sweep(&[
            EXP,
            "--quick",
            "--jobs",
            jobs,
            "--store",
            store.path(),
            "--faults",
            &format!("abort:{MID_KEY}"),
        ]);
        assert_eq!(killed.code, 3, "planned abort exits 3: {}", killed.stderr);
        assert!(
            killed.stdout.is_empty(),
            "an aborted sweep renders nothing (jobs {jobs})"
        );
        let persisted = std::fs::read_dir(PathBuf::from(store.path()).join("entries"))
            .expect("entries dir exists")
            .count();
        assert!(
            persisted > 0,
            "cells completed before the abort stay persisted (jobs {jobs})"
        );
        assert!(
            persisted < 8,
            "the abort must land mid-grid, not after it (jobs {jobs}, {persisted} persisted)"
        );

        // Phase 2: resume merges cached + fresh cells in grid order,
        // byte-identical to the run that never died — in both formats.
        let resumed = sweep(&[
            EXP,
            "--quick",
            "--jobs",
            jobs,
            "--store",
            store.path(),
            "--resume",
        ]);
        assert_eq!(resumed.code, 0, "resume: {}", resumed.stderr);
        assert_eq!(
            resumed.stdout, table_ref.stdout,
            "resumed table (jobs {jobs}) must match the uninterrupted run"
        );
        let resumed_json = sweep(&[
            EXP,
            "--quick",
            "--jobs",
            jobs,
            "--store",
            store.path(),
            "--resume",
            "--format",
            "json",
        ]);
        assert_eq!(resumed_json.code, 0);
        assert_eq!(
            resumed_json.stdout, json_ref.stdout,
            "resumed JSON (jobs {jobs}) must match the uninterrupted run"
        );
    }
}

#[test]
fn injected_panic_becomes_exactly_one_failure_row() {
    let fault = format!("panic:{PANIC_KEY}");
    let one = sweep(&[EXP, "--quick", "--jobs", "1", "--faults", &fault]);
    let four = sweep(&[EXP, "--quick", "--jobs", "4", "--faults", &fault]);
    // A failed cell is a row, not an error: the sweep still exits 0.
    assert_eq!(one.code, 0);
    assert_eq!(four.code, 0);
    assert_eq!(
        one.stdout, four.stdout,
        "failure rows must be jobs-invariant"
    );
    assert!(
        one.stdout.contains("cells: 8 (1 failed)"),
        "exactly one failure is accounted: {}",
        one.stdout
    );
    assert_eq!(
        one.stdout.matches("\nfailed ").count(),
        1,
        "exactly one failure detail line: {}",
        one.stdout
    );
    assert!(
        one.stdout
            .contains(&format!("failed {PANIC_KEY}: injected panic")),
        "the detail line names the cell and cause: {}",
        one.stdout
    );

    // The JSON rendering carries the same single failure, jobs-invariant.
    let json1 = sweep(&[
        EXP, "--quick", "--jobs", "1", "--faults", &fault, "--format", "json",
    ]);
    let json4 = sweep(&[
        EXP, "--quick", "--jobs", "4", "--faults", &fault, "--format", "json",
    ]);
    assert_eq!(json1.code, 0);
    assert_eq!(json1.stdout, json4.stdout);
    assert_eq!(json1.stdout.matches("\"failed\": true").count(), 1);
    assert!(json1.stdout.contains("\"attempts\": 1"));
}

#[test]
fn retries_rescue_a_cell_that_panics_once() {
    // panic@1 sabotages only attempt 0; one retry rescues the cell on a
    // deterministically re-seeded second attempt.
    let fault = format!("panic@1:{PANIC_KEY}");
    let rescued = sweep(&[
        EXP,
        "--quick",
        "--jobs",
        "2",
        "--faults",
        &fault,
        "--retries",
        "1",
    ]);
    assert_eq!(rescued.code, 0);
    assert!(
        rescued.stdout.contains("cells: 8\n"),
        "no failure marker when the retry rescues: {}",
        rescued.stdout
    );
    // Without the retry budget the same plan kills the cell.
    let exhausted = sweep(&[EXP, "--quick", "--jobs", "2", "--faults", &fault]);
    assert_eq!(exhausted.code, 0);
    assert!(exhausted.stdout.contains("cells: 8 (1 failed)"));
}

#[test]
fn corrupt_entry_is_quarantined_and_selectively_recomputed() {
    let store = Scratch::new("corrupt");
    let base = [
        EXP,
        "--quick",
        "--jobs",
        "2",
        "--store",
        store.path(),
        "--resume",
    ];
    let cold = sweep(&base);
    assert_eq!(cold.code, 0);

    // Damage exactly one entry on disk (what a crash mid-write, a bad
    // disk, or bit rot would leave behind).
    let entries = PathBuf::from(store.path()).join("entries");
    let victim = std::fs::read_dir(&entries)
        .expect("entries dir")
        .next()
        .expect("at least one entry")
        .expect("readable dir entry")
        .path();
    let mut bytes = std::fs::read(&victim).expect("entry readable");
    bytes.extend_from_slice(b"trailing garbage\n");
    std::fs::write(&victim, bytes).expect("entry writable");

    let healed = sweep(&base);
    assert_eq!(
        healed.code, 0,
        "corruption must not abort: {}",
        healed.stderr
    );
    assert_eq!(
        healed.stdout, cold.stdout,
        "healing rerun is byte-identical to the cold run"
    );
    assert!(
        healed
            .stderr
            .contains("7 hits, 1 recomputed, 0 stale, 1 quarantined, 1 writes"),
        "exactly the damaged cell is quarantined and recomputed: {}",
        healed.stderr
    );
    let quarantined = std::fs::read_dir(PathBuf::from(store.path()).join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(quarantined, 1, "the bad entry is preserved for forensics");

    // And the store is healthy again: everything hits.
    let warm = sweep(&base);
    assert_eq!(warm.code, 0);
    assert!(warm.stderr.contains("8 hits, 0 recomputed"));
}

#[test]
fn unknown_experiment_suggests_near_misses() {
    let typo = sweep(&["rng_stream_gird"]);
    assert_eq!(typo.code, 2);
    assert!(typo.stdout.is_empty());
    assert!(
        typo.stderr
            .contains("unknown experiment \"rng_stream_gird\""),
        "stderr names the offender: {}",
        typo.stderr
    );
    assert!(
        typo.stderr.contains("did you mean: rng_stream_grid"),
        "stderr suggests the near miss: {}",
        typo.stderr
    );
    // A hopeless name still errors usefully, without fabricating a match.
    let hopeless = sweep(&["totally_unrelated_zzz"]);
    assert_eq!(hopeless.code, 2);
    assert!(!hopeless.stderr.contains("did you mean"));
    assert!(hopeless.stderr.contains("tab3_all_channels"));
}

#[test]
fn resume_without_store_is_a_usage_error() {
    let bad = sweep(&[EXP, "--quick", "--resume"]);
    assert_eq!(bad.code, 2);
    assert!(bad.stderr.contains("--resume needs --store"));
}

#[test]
fn resume_with_trace_warns_about_untraced_cached_cells_exactly_once() {
    // PR 8 known limitation: the result store predates the trace layer,
    // so cells served from it carry metrics but no telemetry. The CLI
    // warns about that combination up front; this pins the warning so a
    // future store-schema bump (which would start persisting telemetry)
    // has to delete it deliberately, not lose it.
    // `tab3_all_channels` rather than the usual cheap vehicle: its cells
    // are real channel runs, the only quick grids that carry telemetry.
    let store = Scratch::new("trace-warn");
    let base = [
        "tab3_all_channels",
        "--quick",
        "--trace",
        "--format",
        "json",
        "--store",
        store.path(),
        "--resume",
    ];
    let cold = sweep(&base);
    assert_eq!(cold.code, 0, "cold run: {}", cold.stderr);
    assert_eq!(
        cold.stderr.matches("without telemetry").count(),
        1,
        "cold run warns exactly once: {}",
        cold.stderr
    );
    let warm = sweep(&base);
    assert_eq!(warm.code, 0, "warm run: {}", warm.stderr);
    assert_eq!(
        warm.stderr.matches("without telemetry").count(),
        1,
        "warm (fully cached) run still warns exactly once: {}",
        warm.stderr
    );
    assert!(
        warm.stderr.contains(" hits, 0 recomputed"),
        "warm rerun serves every cell from the store: {}",
        warm.stderr
    );
    // The cached cells really are served without telemetry: the JSON
    // renderer emits a `telemetry` field only for cells that carry one,
    // so a fully cached traced rerun shows none.
    assert!(
        !warm.stdout.contains("telemetry"),
        "cached cells must not fabricate telemetry: {}",
        warm.stdout
    );
    // A no-store traced run of the same grid *does* decorate the output;
    // this guards the assertion above against the renderer simply never
    // mentioning telemetry.
    let fresh = sweep(&[
        "tab3_all_channels",
        "--quick",
        "--trace",
        "--format",
        "json",
    ]);
    assert_eq!(fresh.code, 0, "fresh traced run: {}", fresh.stderr);
    assert_eq!(
        fresh.stderr.matches("without telemetry").count(),
        0,
        "no warning without --resume: {}",
        fresh.stderr
    );
    assert!(
        fresh.stdout.contains("telemetry"),
        "freshly computed traced cells carry telemetry: {}",
        fresh.stdout
    );
}

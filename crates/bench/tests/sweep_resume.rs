//! Tier-1 gates for crash-safe resumable sweeps (DESIGN.md §11): the
//! result store, kill-and-resume, fault-injected failure rows, and
//! corruption quarantine, all driven through the `leaky_sweep` binary so
//! the whole stack (CLI flags → runner → store → renderers) is under
//! test, and a planned abort kills a *subprocess*, not the test harness.

use std::path::PathBuf;
use std::process::Command;

/// Exit status plus captured streams of one `leaky_sweep` invocation.
struct Sweep {
    stdout: String,
    stderr: String,
    code: i32,
}

fn sweep(args: &[&str]) -> Sweep {
    let out = Command::new(env!("CARGO_BIN_EXE_leaky_sweep"))
        .args(args)
        .env_remove("LEAKY_SWEEP_JOBS")
        .env_remove("LEAKY_FAULTS")
        .env_remove("LEAKY_STORE_EPOCH")
        .output()
        .expect("leaky_sweep runs");
    Sweep {
        stdout: String::from_utf8(out.stdout).expect("utf-8 stdout"),
        stderr: String::from_utf8(out.stderr).expect("utf-8 stderr"),
        code: out.status.code().expect("exit code"),
    }
}

/// A per-test scratch directory under the system temp dir, removed on
/// drop so repeated `cargo test` runs never see each other's stores.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("leaky-sweep-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The cheap test vehicle: 8 cells of derived-seed RNG streams.
const EXP: &str = "rng_stream_grid";
/// A mid-grid cell of the quick grid (cells are stream=0..8).
const MID_KEY: &str = "rng_stream_grid/profile=quick/stream=5";
const PANIC_KEY: &str = "rng_stream_grid/profile=quick/stream=3";

#[test]
fn warm_store_rerun_recomputes_nothing_and_is_byte_identical() {
    let store = Scratch::new("warm");
    for format in ["table", "json"] {
        let base = [
            EXP,
            "--quick",
            "--format",
            format,
            "--store",
            store.path(),
            "--resume",
        ];
        let cold = sweep(&[&base[..], &["--jobs", "2"]].concat());
        assert_eq!(cold.code, 0, "cold run: {}", cold.stderr);
        let warm = sweep(&[&base[..], &["--jobs", "4"]].concat());
        assert_eq!(warm.code, 0, "warm run: {}", warm.stderr);
        assert_eq!(
            cold.stdout, warm.stdout,
            "a fully cached rerun must be byte-identical ({format})"
        );
        // First format's warm run onward: every cell is a hit.
        assert!(
            warm.stderr.contains("8 cells, 8 hits, 0 recomputed"),
            "warm rerun must recompute nothing: {}",
            warm.stderr
        );
        assert!(
            warm.stderr.contains("0 quarantined, 0 writes"),
            "warm rerun must write nothing: {}",
            warm.stderr
        );
    }
}

#[test]
fn killed_sweep_resumes_to_the_uninterrupted_bytes() {
    // References: uninterrupted single-threaded runs, no store at all.
    let table_ref = sweep(&[EXP, "--quick", "--jobs", "1", "--format", "table"]);
    let json_ref = sweep(&[EXP, "--quick", "--jobs", "1", "--format", "json"]);
    assert_eq!(table_ref.code, 0);
    assert_eq!(json_ref.code, 0);

    for jobs in ["1", "4"] {
        let store = Scratch::new(&format!("kill{jobs}"));
        // Phase 1: the fault plan aborts the sweep mid-grid.
        let killed = sweep(&[
            EXP,
            "--quick",
            "--jobs",
            jobs,
            "--store",
            store.path(),
            "--faults",
            &format!("abort:{MID_KEY}"),
        ]);
        assert_eq!(killed.code, 3, "planned abort exits 3: {}", killed.stderr);
        assert!(
            killed.stdout.is_empty(),
            "an aborted sweep renders nothing (jobs {jobs})"
        );
        let persisted = std::fs::read_dir(PathBuf::from(store.path()).join("entries"))
            .expect("entries dir exists")
            .count();
        assert!(
            persisted > 0,
            "cells completed before the abort stay persisted (jobs {jobs})"
        );
        assert!(
            persisted < 8,
            "the abort must land mid-grid, not after it (jobs {jobs}, {persisted} persisted)"
        );

        // Phase 2: resume merges cached + fresh cells in grid order,
        // byte-identical to the run that never died — in both formats.
        let resumed = sweep(&[
            EXP,
            "--quick",
            "--jobs",
            jobs,
            "--store",
            store.path(),
            "--resume",
        ]);
        assert_eq!(resumed.code, 0, "resume: {}", resumed.stderr);
        assert_eq!(
            resumed.stdout, table_ref.stdout,
            "resumed table (jobs {jobs}) must match the uninterrupted run"
        );
        let resumed_json = sweep(&[
            EXP,
            "--quick",
            "--jobs",
            jobs,
            "--store",
            store.path(),
            "--resume",
            "--format",
            "json",
        ]);
        assert_eq!(resumed_json.code, 0);
        assert_eq!(
            resumed_json.stdout, json_ref.stdout,
            "resumed JSON (jobs {jobs}) must match the uninterrupted run"
        );
    }
}

#[test]
fn injected_panic_becomes_exactly_one_failure_row() {
    let fault = format!("panic:{PANIC_KEY}");
    let one = sweep(&[EXP, "--quick", "--jobs", "1", "--faults", &fault]);
    let four = sweep(&[EXP, "--quick", "--jobs", "4", "--faults", &fault]);
    // A failed cell is a row, not an error: the sweep still exits 0.
    assert_eq!(one.code, 0);
    assert_eq!(four.code, 0);
    assert_eq!(
        one.stdout, four.stdout,
        "failure rows must be jobs-invariant"
    );
    assert!(
        one.stdout.contains("cells: 8 (1 failed)"),
        "exactly one failure is accounted: {}",
        one.stdout
    );
    assert_eq!(
        one.stdout.matches("\nfailed ").count(),
        1,
        "exactly one failure detail line: {}",
        one.stdout
    );
    assert!(
        one.stdout
            .contains(&format!("failed {PANIC_KEY}: injected panic")),
        "the detail line names the cell and cause: {}",
        one.stdout
    );

    // The JSON rendering carries the same single failure, jobs-invariant.
    let json1 = sweep(&[
        EXP, "--quick", "--jobs", "1", "--faults", &fault, "--format", "json",
    ]);
    let json4 = sweep(&[
        EXP, "--quick", "--jobs", "4", "--faults", &fault, "--format", "json",
    ]);
    assert_eq!(json1.code, 0);
    assert_eq!(json1.stdout, json4.stdout);
    assert_eq!(json1.stdout.matches("\"failed\": true").count(), 1);
    assert!(json1.stdout.contains("\"attempts\": 1"));
}

#[test]
fn retries_rescue_a_cell_that_panics_once() {
    // panic@1 sabotages only attempt 0; one retry rescues the cell on a
    // deterministically re-seeded second attempt.
    let fault = format!("panic@1:{PANIC_KEY}");
    let rescued = sweep(&[
        EXP,
        "--quick",
        "--jobs",
        "2",
        "--faults",
        &fault,
        "--retries",
        "1",
    ]);
    assert_eq!(rescued.code, 0);
    assert!(
        rescued.stdout.contains("cells: 8\n"),
        "no failure marker when the retry rescues: {}",
        rescued.stdout
    );
    // Without the retry budget the same plan kills the cell.
    let exhausted = sweep(&[EXP, "--quick", "--jobs", "2", "--faults", &fault]);
    assert_eq!(exhausted.code, 0);
    assert!(exhausted.stdout.contains("cells: 8 (1 failed)"));
}

#[test]
fn corrupt_entry_is_quarantined_and_selectively_recomputed() {
    let store = Scratch::new("corrupt");
    let base = [
        EXP,
        "--quick",
        "--jobs",
        "2",
        "--store",
        store.path(),
        "--resume",
    ];
    let cold = sweep(&base);
    assert_eq!(cold.code, 0);

    // Damage exactly one entry on disk (what a crash mid-write, a bad
    // disk, or bit rot would leave behind).
    let entries = PathBuf::from(store.path()).join("entries");
    let victim = std::fs::read_dir(&entries)
        .expect("entries dir")
        .next()
        .expect("at least one entry")
        .expect("readable dir entry")
        .path();
    let mut bytes = std::fs::read(&victim).expect("entry readable");
    bytes.extend_from_slice(b"trailing garbage\n");
    std::fs::write(&victim, bytes).expect("entry writable");

    let healed = sweep(&base);
    assert_eq!(
        healed.code, 0,
        "corruption must not abort: {}",
        healed.stderr
    );
    assert_eq!(
        healed.stdout, cold.stdout,
        "healing rerun is byte-identical to the cold run"
    );
    assert!(
        healed
            .stderr
            .contains("7 hits, 1 recomputed, 0 stale, 1 quarantined, 1 writes"),
        "exactly the damaged cell is quarantined and recomputed: {}",
        healed.stderr
    );
    let quarantined = std::fs::read_dir(PathBuf::from(store.path()).join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(quarantined, 1, "the bad entry is preserved for forensics");

    // And the store is healthy again: everything hits.
    let warm = sweep(&base);
    assert_eq!(warm.code, 0);
    assert!(warm.stderr.contains("8 hits, 0 recomputed"));
}

#[test]
fn unknown_experiment_suggests_near_misses() {
    let typo = sweep(&["rng_stream_gird"]);
    assert_eq!(typo.code, 2);
    assert!(typo.stdout.is_empty());
    assert!(
        typo.stderr
            .contains("unknown experiment \"rng_stream_gird\""),
        "stderr names the offender: {}",
        typo.stderr
    );
    assert!(
        typo.stderr.contains("did you mean: rng_stream_grid"),
        "stderr suggests the near miss: {}",
        typo.stderr
    );
    // A hopeless name still errors usefully, without fabricating a match.
    let hopeless = sweep(&["totally_unrelated_zzz"]);
    assert_eq!(hopeless.code, 2);
    assert!(!hopeless.stderr.contains("did you mean"));
    assert!(hopeless.stderr.contains("tab3_all_channels"));
}

#[test]
fn resume_without_store_is_a_usage_error() {
    let bad = sweep(&[EXP, "--quick", "--resume"]);
    assert_eq!(bad.code, 2);
    assert!(bad.stderr.contains("--resume needs --store"));
}

#[test]
fn resume_with_trace_serves_cached_cells_with_telemetry() {
    // The store schema (leaky-store/v2) persists telemetry, so a fully
    // cached traced rerun is byte-identical to the cold traced run —
    // telemetry included — and the old "--resume serves cached cells
    // without telemetry" warning is gone for good.
    // `tab3_all_channels` rather than the usual cheap vehicle: its cells
    // are real channel runs, the only quick grids that carry telemetry.
    let store = Scratch::new("trace-resume");
    let base = [
        "tab3_all_channels",
        "--quick",
        "--trace",
        "--format",
        "json",
        "--store",
        store.path(),
        "--resume",
    ];
    let cold = sweep(&base);
    assert_eq!(cold.code, 0, "cold run: {}", cold.stderr);
    assert_eq!(
        cold.stderr.matches("without telemetry").count(),
        0,
        "the retired warning must not reappear: {}",
        cold.stderr
    );
    assert!(
        cold.stdout.contains("telemetry"),
        "traced cells carry telemetry: {}",
        cold.stdout
    );
    let warm = sweep(&base);
    assert_eq!(warm.code, 0, "warm run: {}", warm.stderr);
    assert!(
        warm.stderr.contains(" hits, 0 recomputed"),
        "warm rerun serves every cell from the store: {}",
        warm.stderr
    );
    assert_eq!(
        warm.stdout, cold.stdout,
        "cached traced cells reproduce the cold run byte-for-byte, telemetry included"
    );

    // An *untraced* resume against the same (traced) store still hits —
    // it just strips the telemetry it didn't ask for, matching a plain
    // no-store untraced run byte-for-byte.
    let untraced = sweep(&[
        "tab3_all_channels",
        "--quick",
        "--format",
        "json",
        "--store",
        store.path(),
        "--resume",
    ]);
    assert_eq!(untraced.code, 0, "untraced resume: {}", untraced.stderr);
    assert!(
        untraced.stderr.contains(" hits, 0 recomputed"),
        "traced entries serve untraced sweeps: {}",
        untraced.stderr
    );
    let plain = sweep(&["tab3_all_channels", "--quick", "--format", "json"]);
    assert_eq!(untraced.stdout, plain.stdout);

    // The other direction recomputes: entries written without telemetry
    // cannot serve a traced sweep.
    let untraced_store = Scratch::new("trace-upgrade");
    let seeded = sweep(&[
        "tab3_all_channels",
        "--quick",
        "--store",
        untraced_store.path(),
        "--resume",
    ]);
    assert_eq!(seeded.code, 0);
    let upgraded = sweep(&[
        "tab3_all_channels",
        "--quick",
        "--trace",
        "--format",
        "json",
        "--store",
        untraced_store.path(),
        "--resume",
    ]);
    assert_eq!(upgraded.code, 0, "upgrade run: {}", upgraded.stderr);
    // Measured cells recompute (only the telemetry-free *unsupported*
    // rows, which have nothing to trace, may still hit).
    assert!(
        !upgraded.stderr.contains(" 0 recomputed"),
        "untraced measured entries cannot serve a traced sweep: {}",
        upgraded.stderr
    );
    assert!(
        upgraded.stdout.contains("telemetry"),
        "recomputed cells carry telemetry: {}",
        upgraded.stdout
    );
}

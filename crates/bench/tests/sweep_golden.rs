//! Wrapper-vs-migrated golden tests: the four thin wrapper binaries must
//! produce byte-identical stdout to their pre-migration versions (the
//! committed `tests/golden/*.txt` captures, taken at the commit before
//! the sweeps moved onto `leaky_exp`).
//!
//! `LEAKY_SWEEP_JOBS=3` forces the parallel pool path, so these tests
//! also pin full-grid determinism, not just rendering.

use std::process::Command;

fn golden_matches_args(bin_path: &str, args: &[&str], golden_name: &str) {
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(golden_name),
    )
    .expect("committed golden output");
    let out = Command::new(bin_path)
        .args(args)
        .env("LEAKY_SWEEP_JOBS", "3")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{bin_path} must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert_eq!(
        stdout, golden,
        "{golden_name}: binary diverged from committed output"
    );
}

fn golden_matches(bin_path: &str, golden_name: &str) {
    golden_matches_args(bin_path, &[], golden_name);
}

#[test]
fn fig8_d_sweep_matches_pre_migration_output() {
    golden_matches(env!("CARGO_BIN_EXE_fig8_d_sweep"), "fig8_d_sweep.txt");
}

#[test]
fn tab5_power_channels_matches_pre_migration_output() {
    golden_matches(
        env!("CARGO_BIN_EXE_tab5_power_channels"),
        "tab5_power_channels.txt",
    );
}

#[test]
fn tab3_all_channels_matches_pre_migration_output() {
    golden_matches(
        env!("CARGO_BIN_EXE_tab3_all_channels"),
        "tab3_all_channels.txt",
    );
}

#[test]
fn tab2_mt_patterns_matches_pre_migration_output() {
    golden_matches(
        env!("CARGO_BIN_EXE_tab2_mt_patterns"),
        "tab2_mt_patterns.txt",
    );
}

#[test]
fn tab7_spectre_miss_rates_matches_pre_migration_output() {
    golden_matches(
        env!("CARGO_BIN_EXE_tab7_spectre_miss_rates"),
        "tab7_spectre_miss_rates.txt",
    );
}

#[test]
fn rng_stream_grid_matches_committed_output() {
    // Pins the derived per-cell seed streams themselves: if content-key
    // hashing or the seed derivation ever changes, every value in this
    // table moves and the diff points straight at the cause.
    golden_matches_args(
        env!("CARGO_BIN_EXE_leaky_sweep"),
        &["rng_stream_grid", "--format", "table"],
        "rng_stream_grid.txt",
    );
}

#[test]
fn tab3_uarch_matches_committed_output() {
    // The cross-microarchitecture sweep has no legacy binary; its golden
    // pins the full grid through the unified CLI — the skylake rows are
    // the Table III operating point, and any change to profile geometry,
    // cost models, plan keying or per-cell seed derivation shows up here.
    golden_matches_args(
        env!("CARGO_BIN_EXE_leaky_sweep"),
        &["tab3_uarch", "--format", "table"],
        "tab3_uarch.txt",
    );
}

#[test]
fn traced_sweep_emits_the_committed_golden_trace() {
    // One tab3 cell's full event stream, byte-for-byte: pins the event
    // vocabulary, the CSV rendering, the per-cell trace filenames AND
    // (at LEAKY_SWEEP_JOBS=3) that the event stream is independent of
    // worker scheduling. Regenerate with:
    //   leaky_sweep --quick tab3_all_channels --trace=events --trace-dir DIR
    let name =
        "tab3_all_channels_profile=quick_channel=non-mt-fast-eviction_machine=Xeon_E-2288G.csv";
    let dir = std::env::temp_dir().join(format!("leaky_trace_golden_{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_leaky_sweep"))
        .args([
            "--quick",
            "tab3_all_channels",
            "--trace=events",
            "--trace-dir",
        ])
        .arg(&dir)
        .env("LEAKY_SWEEP_JOBS", "3")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "leaky_sweep must exit 0");
    let produced = std::fs::read_to_string(dir.join(name)).expect("trace file written");
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name),
    )
    .expect("committed golden trace");
    assert_eq!(
        produced, golden,
        "{name}: trace diverged from committed golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Scenario-file integration tests: the committed `scenarios/` library
//! must load, validate, and — for the bundle restating the compiled-in
//! `tab3_uarch` spec — reproduce its committed golden *byte-identically*
//! from file-loaded profiles. That identity is the tentpole claim of the
//! scenario subsystem: a sweep expressed as data is the same sweep.
//!
//! `LEAKY_SWEEP_JOBS=3` forces the parallel pool path for the golden
//! runs; `tab3_riscv` is additionally pinned jobs 1 vs jobs 4.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn scenarios_dir() -> PathBuf {
    repo_root().join("scenarios")
}

fn sweep(args: &[&str], jobs_env: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_leaky_sweep"))
        .args(args)
        .env("LEAKY_SWEEP_JOBS", jobs_env)
        .current_dir(repo_root())
        .output()
        .expect("leaky_sweep runs")
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name),
    )
    .expect("committed golden output")
}

#[test]
fn scenario_bundle_reproduces_the_tab3_uarch_golden() {
    // The file bundle restates the compiled-in spec; with the profile
    // directory loaded, every profile it sweeps is the *file* copy
    // (identical restatement replaces the built-in in the registry), so
    // byte-identity here proves faithful lowering end to end.
    let out = sweep(
        &[
            "--scenario",
            "scenarios/tab3_uarch.toml",
            "--profile-dir",
            "scenarios",
            "--format",
            "table",
        ],
        "3",
    );
    assert!(out.status.success(), "scenario sweep must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert_eq!(
        stdout,
        golden("tab3_uarch.txt"),
        "file-loaded tab3_uarch diverged from the compiled-in spec's golden"
    );
}

#[test]
fn riscv_bundle_matches_golden_and_is_parallel_deterministic() {
    let args = [
        "--scenario",
        "scenarios/tab3_riscv.toml",
        "--profile-dir",
        "scenarios",
        "--format",
        "table",
    ];
    let mut with_jobs = args.to_vec();
    with_jobs.extend(["--jobs", "1"]);
    let j1 = sweep(&with_jobs, "1");
    assert!(j1.status.success(), "tab3_riscv must exit 0");
    let j1 = String::from_utf8(j1.stdout).expect("utf-8 stdout");
    assert_eq!(
        j1,
        golden("tab3_riscv.txt"),
        "tab3_riscv diverged from committed output"
    );

    let mut with_jobs = args.to_vec();
    with_jobs.extend(["--jobs", "4"]);
    let j4 = sweep(&with_jobs, "4");
    assert!(j4.status.success());
    assert_eq!(
        j1,
        String::from_utf8(j4.stdout).expect("utf-8 stdout"),
        "tab3_riscv diverged between --jobs 1 and --jobs 4"
    );
}

#[test]
fn every_committed_scenario_file_validates() {
    // The CI scenario-validation step runs this same loop from the
    // shell; the test keeps it honest locally.
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    entries.sort();
    for path in entries {
        let out = sweep(
            &[
                "--scenario",
                path.to_str().expect("utf-8 path"),
                "--profile-dir",
                "scenarios",
                "--validate",
            ],
            "1",
        );
        assert!(
            out.status.success(),
            "{}: --validate failed:\n{}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
        assert!(
            stdout.contains(": ok"),
            "{}: unexpected --validate report: {stdout}",
            path.display()
        );
        seen += 1;
    }
    assert_eq!(seen, 8, "the committed scenario library has 8 files");
}

#[test]
fn committed_profile_files_are_byte_identical_to_the_builtins() {
    // The three legacy profiles re-expressed as files are exactly
    // `encode_profile` of the compiled-in constants — regenerate, don't
    // hand-edit.
    for builtin in leaky_uarch::UarchProfile::all() {
        let path = scenarios_dir().join(format!("{}.toml", builtin.key));
        let text = std::fs::read_to_string(&path).expect("committed profile file");
        assert_eq!(
            text,
            leaky_scenario::encode_profile(&builtin),
            "{}: file drifted from the built-in profile",
            path.display()
        );
    }
}

#[test]
fn scenario_errors_exit_2_with_stable_messages() {
    let dir = std::env::temp_dir().join("leaky_scenario_cli_errors");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.toml");
    std::fs::write(
        &bad,
        "schema = \"leaky-frontends/scenario/v2\"\nkind = \"scenario\"\n",
    )
    .expect("write temp scenario");
    let out = sweep(&["--scenario", bad.to_str().expect("utf-8 path")], "1");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains(
            "line 1: schema must be \"leaky-frontends/scenario/v1\", got \"leaky-frontends/scenario/v2\""
        ),
        "unexpected stderr: {stderr}"
    );

    // A profile file is not runnable on its own.
    let out = sweep(&["--scenario", "scenarios/skylake.toml"], "1");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("is a profile, not a scenario"),
        "unexpected stderr: {stderr}"
    );

    // Flag dependencies are usage errors.
    let out = sweep(&["--validate"], "1");
    assert_eq!(out.status.code(), Some(2));
    let out = sweep(&["--profile-dir", "scenarios"], "1");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn scenario_sweeps_resume_from_the_store() {
    // A loaded bundle runs through the same store/resume machinery as
    // the compiled-in sweeps: second run serves every cell from cache.
    let dir = std::env::temp_dir().join(format!("leaky_scenario_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().expect("utf-8 path");
    let args = [
        "--scenario",
        "scenarios/tab3_uarch.toml",
        "--profile-dir",
        "scenarios",
        "--quick",
        "--store",
        store,
        "--resume",
    ];
    let first = sweep(&args, "2");
    assert!(first.status.success());
    let second = sweep(&args, "2");
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "cached run must render identically"
    );
    let stderr = String::from_utf8(second.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("18 cells, 18 hits, 0 recomputed"),
        "second run must be all cache hits: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Ablation benches for the design choices DESIGN.md calls out: SMT DSB
//! sharing policy, LSD warm-up length, and switch-penalty magnitude.
//!
//! Each variant benchmarks the same receiver iteration under a different
//! model configuration; Criterion's comparison across the group quantifies
//! how much each mechanism contributes to simulation cost (its *behavioural*
//! effect is reported by the `ablation_report` binary-style println at the
//! end of each setup, visible with `--nocapture`-style bench output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leaky_frontend::{Frontend, FrontendConfig, SmtDsbPolicy, ThreadId};
use leaky_isa::{same_set_chain, Alignment, DsbSet};
use std::hint::black_box;

fn bench_dsb_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dsb_policy");
    let recv = same_set_chain(0x0041_8000, DsbSet::new(0), 6, Alignment::Aligned);
    let send = same_set_chain(0x0082_0000, DsbSet::new(0), 3, Alignment::Aligned);
    for policy in [
        SmtDsbPolicy::Competitive,
        SmtDsbPolicy::SetPartitioned,
        SmtDsbPolicy::Shared,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut fe = Frontend::new(FrontendConfig {
                    dsb_policy: policy,
                    ..FrontendConfig::default()
                });
                fe.set_active(ThreadId::T0, true);
                fe.set_active(ThreadId::T1, true);
                b.iter(|| {
                    let r = fe.run_iteration(ThreadId::T0, &recv);
                    let s = fe.run_iteration(ThreadId::T1, &send);
                    black_box((r, s))
                });
            },
        );
    }
    group.finish();
}

fn bench_lsd_warmup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lsd_warmup");
    let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
    for warmup in [1u32, 3, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(warmup),
            &warmup,
            |b, &warmup| {
                let mut fe = Frontend::new(FrontendConfig {
                    lsd_warmup_iterations: warmup,
                    ..FrontendConfig::default()
                });
                b.iter(|| black_box(fe.run_iteration(ThreadId::T0, &chain)));
            },
        );
    }
    group.finish();
}

fn bench_crossing_penalty(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_crossing_penalty");
    let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 4, Alignment::Misaligned);
    for penalty in [0.0f64, 1.5, 4.5, 9.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{penalty}")),
            &penalty,
            |b, &penalty| {
                let mut config = FrontendConfig::default();
                config.costs.window_crossing_penalty = penalty;
                let mut fe = Frontend::new(config);
                for _ in 0..4 {
                    fe.run_iteration(ThreadId::T0, &chain);
                }
                b.iter(|| black_box(fe.run_iteration(ThreadId::T0, &chain)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dsb_policies,
    bench_lsd_warmup,
    bench_crossing_penalty
);
criterion_main!(benches);

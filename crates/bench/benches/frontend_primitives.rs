//! Criterion micro-benchmarks of the frontend simulator's primitives: one
//! loop iteration per delivery path, DSB operations, and LCP decode.
//!
//! These measure *simulator* performance (how fast the model runs), which
//! bounds how long the paper's big experiments (e.g. 240 000-iteration
//! power bits) take to regenerate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use leaky_frontend::{Dsb, Frontend, FrontendConfig, LineId, SmtDsbPolicy, ThreadId};
use leaky_isa::{
    same_set_chain, Alignment, Block, BlockChain, DsbSet, FrontendGeometry, LcpPattern,
};
use std::hint::black_box;

fn bench_delivery_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend_iteration");
    // LSD-streaming iteration (8 aligned blocks, warm).
    group.bench_function("lsd_path", |b| {
        let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
        let mut fe = Frontend::new(FrontendConfig::default());
        for _ in 0..8 {
            fe.run_iteration(ThreadId::T0, &chain);
        }
        b.iter(|| black_box(fe.run_iteration(ThreadId::T0, &chain)));
    });
    // DSB-resident iteration (LSD disabled).
    group.bench_function("dsb_path", |b| {
        let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
        let mut fe = Frontend::new(FrontendConfig {
            lsd_enabled: false,
            ..FrontendConfig::default()
        });
        for _ in 0..8 {
            fe.run_iteration(ThreadId::T0, &chain);
        }
        b.iter(|| black_box(fe.run_iteration(ThreadId::T0, &chain)));
    });
    // MITE-thrashing iteration (9 same-set blocks).
    group.bench_function("mite_path", |b| {
        let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 9, Alignment::Aligned);
        let mut fe = Frontend::new(FrontendConfig::default());
        for _ in 0..8 {
            fe.run_iteration(ThreadId::T0, &chain);
        }
        b.iter(|| black_box(fe.run_iteration(ThreadId::T0, &chain)));
    });
    // LCP block (instruction-granular decode model).
    group.bench_function("lcp_block", |b| {
        let chain = BlockChain::new(vec![Block::lcp_adds(
            leaky_isa::Addr::new(0x10_0000),
            LcpPattern::Mixed,
            16,
        )]);
        let mut fe = Frontend::new(FrontendConfig::default());
        for _ in 0..4 {
            fe.run_iteration(ThreadId::T0, &chain);
        }
        b.iter(|| black_box(fe.run_iteration(ThreadId::T0, &chain)));
    });
    group.finish();
}

fn bench_dsb_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsb");
    group.bench_function("lookup_hit", |b| {
        let mut dsb = Dsb::new(FrontendGeometry::skylake(), SmtDsbPolicy::Competitive);
        let line = LineId {
            thread: 0,
            window: 64,
            chunk: 0,
        };
        dsb.insert(line);
        b.iter(|| black_box(dsb.lookup(line)));
    });
    group.bench_function("insert_evict", |b| {
        b.iter_batched(
            || {
                let mut dsb = Dsb::new(FrontendGeometry::skylake(), SmtDsbPolicy::Competitive);
                for i in 0..8 {
                    dsb.insert(LineId {
                        thread: 0,
                        window: i * 32,
                        chunk: 0,
                    });
                }
                dsb
            },
            |mut dsb| {
                black_box(dsb.insert(LineId {
                    thread: 0,
                    window: 9 * 32,
                    chunk: 0,
                }))
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_steady_state_scaling(c: &mut Criterion) {
    // The steady-state fast path must make huge runs cheap.
    c.bench_function("run_iterations_1e6", |b| {
        let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 8, Alignment::Aligned);
        b.iter_batched(
            || Frontend::new(FrontendConfig::default()),
            |mut fe| black_box(fe.run_iterations(ThreadId::T0, &chain, 1_000_000)),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_delivery_paths,
    bench_dsb_operations,
    bench_steady_state_scaling
);
criterion_main!(benches);

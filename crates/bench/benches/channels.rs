//! Criterion benchmarks of covert-channel bit transmission: how much
//! simulation work one transmitted bit costs per channel family.

use criterion::{criterion_group, criterion_main, Criterion};
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::mt::{MtChannel, MtKind};
use leaky_frontends::channels::non_mt::{NonMtChannel, NonMtKind};
use leaky_frontends::channels::slow_switch::SlowSwitchChannel;
use leaky_frontends::params::{ChannelParams, EncodeMode};
use std::hint::black_box;

fn bench_non_mt_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_measurement");
    group.bench_function("non_mt_eviction", |b| {
        let mut ch = NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Eviction,
            EncodeMode::Fast,
            ChannelParams::eviction_defaults(),
            1,
        );
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            black_box(ch.debug_measure(bit))
        });
    });
    group.bench_function("non_mt_misalignment", |b| {
        let mut ch = NonMtChannel::new(
            ProcessorModel::xeon_e2288g(),
            NonMtKind::Misalignment,
            EncodeMode::Fast,
            ChannelParams::misalignment_defaults(),
            1,
        );
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            black_box(ch.debug_measure(bit))
        });
    });
    group.bench_function("slow_switch", |b| {
        let mut ch = SlowSwitchChannel::new(
            ProcessorModel::xeon_e2288g(),
            ChannelParams::slow_switch_defaults(),
            1,
        );
        let msg = [false, true];
        b.iter(|| black_box(ch.transmit(&msg)));
    });
    group.finish();
}

fn bench_mt_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_measurement_mt");
    group.sample_size(20);
    group.bench_function("mt_eviction", |b| {
        let mut ch = MtChannel::new(
            ProcessorModel::gold_6226(),
            MtKind::Eviction,
            ChannelParams::mt_defaults(),
            1,
        )
        .expect("SMT");
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            black_box(ch.debug_measure(bit))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_non_mt_bits, bench_mt_bits);
criterion_main!(benches);

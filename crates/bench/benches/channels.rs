//! Criterion benchmarks of covert-channel bit transmission: how much
//! simulation work one transmitted bit costs per channel family. The
//! channels are built from the registry and driven through the
//! `CovertChannel` debug hooks.

use criterion::{criterion_group, criterion_main, Criterion};
use leaky_cpu::ProcessorModel;
use leaky_frontends::channels::ChannelSpec;
use std::hint::black_box;

fn bench_non_mt_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_measurement");
    for (name, channel) in [
        ("non_mt_eviction", "non-mt-fast-eviction"),
        ("non_mt_misalignment", "non-mt-fast-misalignment"),
    ] {
        group.bench_function(name, |b| {
            let mut ch = ChannelSpec::new(channel)
                .model(ProcessorModel::xeon_e2288g())
                .seed(1)
                .build()
                .expect("registered non-MT channel");
            let mut bit = false;
            b.iter(|| {
                bit = !bit;
                black_box(ch.debug_measure(bit))
            });
        });
    }
    group.bench_function("slow_switch", |b| {
        let mut ch = ChannelSpec::new("slow-switch")
            .model(ProcessorModel::xeon_e2288g())
            .seed(1)
            .build()
            .expect("registered channel");
        let msg = [false, true];
        b.iter(|| black_box(ch.transmit(&msg)));
    });
    group.finish();
}

fn bench_mt_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_measurement_mt");
    group.sample_size(20);
    group.bench_function("mt_eviction", |b| {
        let mut ch = ChannelSpec::new("mt-eviction")
            .model(ProcessorModel::gold_6226())
            .seed(1)
            .build()
            .expect("SMT");
        let mut bit = false;
        b.iter(|| {
            bit = !bit;
            black_box(ch.debug_measure(bit))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_non_mt_bits, bench_mt_bits);
criterion_main!(benches);

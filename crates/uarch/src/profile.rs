//! The microarchitecture profile registry.

use leaky_isa::FrontendGeometry;

use crate::costs::CostModel;

/// A named microarchitecture: frontend geometry, fitted cycle costs, and
/// the feature switches they imply, bundled under a stable key.
///
/// Profiles are plain values (`Copy`), so experiments can perturb a copy
/// for ablations; the [`UarchProfile::fingerprint`] content hash is what
/// caches key on, so a perturbed profile can never alias the canonical
/// one's memoized state (delivery plans, backend throughput).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UarchProfile {
    /// Stable registry key (CLI axis value, cache namespaces).
    pub key: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Frontend structure geometry (Table I or an ablation of it).
    pub geometry: FrontendGeometry,
    /// Cycle-cost calibration.
    pub costs: CostModel,
    /// Whether the microarchitecture ships with the LSD operational. A
    /// processor model / microcode patch can only further *disable* loop
    /// streaming, never enable it on a profile that lacks it.
    pub lsd_enabled: bool,
}

impl UarchProfile {
    /// The Skylake-family profile shared by every Table I machine —
    /// bit-identical to the historical hardcoded
    /// `FrontendGeometry::skylake()` + `CostModel::skylake()` defaults.
    pub const fn skylake() -> Self {
        UarchProfile {
            key: "skylake",
            description: "Skylake-family Table I machine (default)",
            geometry: FrontendGeometry::skylake(),
            costs: CostModel::skylake(),
            lsd_enabled: true,
        }
    }

    /// An Ice-Lake-class ablation profile: larger DSB lines (8 µops, for a
    /// 2 K-µop-class DSB), a wider decode cluster, a deeper instruction
    /// queue, a 48 KB L1I — and the LSD fused off, as the post-Skylake
    /// erratum mitigations ship it.
    pub const fn icelake() -> Self {
        UarchProfile {
            key: "icelake",
            description: "Ice-Lake-class: 8-uop DSB lines, wider decode, 48 KB L1I, LSD fused off",
            geometry: FrontendGeometry {
                dsb_line_uops: 8,
                decode_width: 6,
                iq_entries: 70,
                l1i_ways: 12,
                ..FrontendGeometry::skylake()
            },
            costs: CostModel::icelake(),
            lsd_enabled: false,
        }
    }

    /// The §XII defense profile: Skylake geometry with every delivery path
    /// equalized ([`CostModel::constant_time`]) so no timing signature
    /// distinguishes DSB, LSD and MITE delivery.
    pub const fn constant_time() -> Self {
        UarchProfile {
            key: "constant_time",
            description: "Skylake geometry with all delivery paths cost-equalized (defense, §XII)",
            geometry: FrontendGeometry::skylake(),
            costs: CostModel::constant_time(),
            lsd_enabled: true,
        }
    }

    /// Every registered profile, in sweep-axis order.
    pub const fn all() -> [UarchProfile; 3] {
        [Self::skylake(), Self::icelake(), Self::constant_time()]
    }

    /// Looks a profile up by its stable key.
    pub fn by_key(key: &str) -> Option<UarchProfile> {
        Self::all().into_iter().find(|p| p.key == key)
    }

    /// The registered keys, in sweep-axis order.
    pub fn keys() -> [&'static str; 3] {
        Self::all().map(|p| p.key)
    }

    /// Content fingerprint over the geometry, cost model and feature
    /// switches. Two profiles agree on their fingerprint iff they describe
    /// the same microarchitecture, regardless of `key`/`description` — this
    /// is what memoization layers (delivery-plan caches, backend-throughput
    /// memos) key on, so perturbing a profile for an ablation invalidates
    /// every cached artifact derived from the original.
    pub fn fingerprint(&self) -> u64 {
        config_fingerprint(&self.geometry, &self.costs, &[self.lsd_enabled as u64])
    }
}

/// Content hash over a (geometry, cost-model) pair plus arbitrary extra
/// configuration words — the primitive behind
/// [`UarchProfile::fingerprint`] and the frontend's per-configuration
/// profile key. FNV-1a over the field values (f64s by bit pattern), so
/// the result is stable across platforms and runs.
pub fn config_fingerprint(geometry: &FrontendGeometry, costs: &CostModel, extra: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    hash_geometry(&mut h, geometry);
    hash_costs(&mut h, costs);
    for &v in extra {
        h.write_u64(v);
    }
    h.finish()
}

impl Default for UarchProfile {
    fn default() -> Self {
        Self::skylake()
    }
}

/// Minimal FNV-1a accumulator — stable across platforms and Rust
/// versions, unlike `DefaultHasher` (cache keys never cross process
/// boundaries, but a stable hash keeps fingerprints printable/diffable in
/// debugging sessions). Public because it is the workspace's single
/// FNV-1a home: `leaky_exp`'s content-key seed derivation folds its key
/// bytes through the same accumulator, so the constants can never
/// drift apart.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts an accumulator at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one little-endian `u64` into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The accumulated hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Folds every geometry field into `h`, in declaration order.
pub(crate) fn hash_geometry(h: &mut Fnv1a, g: &FrontendGeometry) {
    for v in [
        g.dsb_sets,
        g.dsb_ways,
        g.dsb_window_bytes,
        g.dsb_line_uops,
        g.lsd_uops,
        g.lsd_windows,
        g.l1i_sets,
        g.l1i_ways,
        g.l1i_line_bytes,
        g.iq_entries,
        g.decode_width,
        g.idq_delivery_width,
    ] {
        h.write_u64(v as u64);
    }
}

/// Folds every cost-model field (bit pattern) into `h`.
pub(crate) fn hash_costs(h: &mut Fnv1a, c: &CostModel) {
    for v in [
        c.dsb_per_uop,
        c.lsd_per_uop,
        c.mite_line_base,
        c.mite_per_uop,
        c.dsb_to_mite_switch,
        c.mite_to_dsb_switch,
        c.lsd_flush,
        c.lcp_stall,
        c.lcp_sequential_extra,
        c.mite_per_instr,
        c.lcp_dsb_to_mite_switch,
        c.lcp_mite_to_dsb_switch,
        c.window_crossing_penalty,
        c.l1i_miss,
        c.loop_overhead,
        c.smt_mite_factor,
        c.timer_overhead,
    ] {
        h.write_u64(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_profile_matches_historical_defaults() {
        let p = UarchProfile::skylake();
        assert_eq!(p.geometry, FrontendGeometry::skylake());
        assert_eq!(p.costs, CostModel::skylake());
        assert!(p.lsd_enabled);
        assert_eq!(UarchProfile::default(), p);
    }

    #[test]
    fn registry_keys_are_unique_and_resolvable() {
        let keys = UarchProfile::keys();
        assert_eq!(keys, ["skylake", "icelake", "constant_time"]);
        for key in keys {
            assert_eq!(UarchProfile::by_key(key).unwrap().key, key);
        }
        assert!(UarchProfile::by_key("pentium4").is_none());
    }

    #[test]
    fn icelake_diverges_where_documented() {
        let icl = UarchProfile::icelake();
        let sky = UarchProfile::skylake();
        assert_eq!(icl.geometry.dsb_line_uops, 8);
        assert!(icl.geometry.dsb_capacity_uops() > sky.geometry.dsb_capacity_uops());
        assert_eq!(icl.geometry.l1i_capacity_bytes(), 48 * 1024);
        assert!(icl.geometry.decode_width > sky.geometry.decode_width);
        assert!(!icl.lsd_enabled);
        // Layout-relevant fields stay Skylake so Fig. 3 placements remain
        // valid on every profile.
        assert_eq!(icl.geometry.dsb_sets, sky.geometry.dsb_sets);
        assert_eq!(icl.geometry.dsb_window_bytes, sky.geometry.dsb_window_bytes);
    }

    #[test]
    fn fingerprints_distinguish_profiles_and_perturbations() {
        let prints: Vec<u64> = UarchProfile::all()
            .iter()
            .map(|p| p.fingerprint())
            .collect();
        let mut sorted = prints.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), prints.len(), "profile fingerprints collided");

        // Same contents, different label: same fingerprint (content hash).
        let mut relabeled = UarchProfile::skylake();
        relabeled.key = "skylake-prime";
        assert_eq!(
            relabeled.fingerprint(),
            UarchProfile::skylake().fingerprint()
        );

        // Any geometry or cost perturbation moves the fingerprint.
        let mut geom = UarchProfile::skylake();
        geom.geometry.dsb_line_uops = 5;
        assert_ne!(geom.fingerprint(), UarchProfile::skylake().fingerprint());
        let mut cost = UarchProfile::skylake();
        cost.costs.dsb_per_uop = 0.19;
        assert_ne!(cost.fingerprint(), UarchProfile::skylake().fingerprint());
        let mut lsd = UarchProfile::skylake();
        lsd.lsd_enabled = false;
        assert_ne!(lsd.fingerprint(), UarchProfile::skylake().fingerprint());
    }
}

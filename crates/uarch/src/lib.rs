//! Microarchitecture profiles for the `leaky-frontends` reproduction.
//!
//! The paper's frontend channels are parameterized by two things: the
//! Table I structure geometry ([`leaky_isa::FrontendGeometry`]) and the
//! fitted cycle-cost calibration ([`CostModel`]). This crate bundles the
//! pair — plus the derived frontend feature switches — into a
//! [`UarchProfile`] under a stable string key, so every layer (frontend
//! engine, channels, cores, experiment sweeps) can be pointed at a
//! microarchitecture by name instead of hardcoding `skylake()`.
//!
//! Three profiles are registered:
//!
//! * [`UarchProfile::skylake`] — the Skylake-family machine shared by all
//!   four Table I CPUs; bit-identical to the historical hardcoded
//!   defaults.
//! * [`UarchProfile::icelake`] — an Ice-Lake-class ablation: larger DSB
//!   lines (8 µops), wider decode, bigger L1I, and the LSD fused off (the
//!   post-Skylake erratum mitigations ship with loop streaming disabled).
//! * [`UarchProfile::constant_time`] — the §XII defense: Skylake geometry
//!   with every delivery path equalized ([`CostModel::constant_time`]).
//!
//! # Examples
//!
//! ```
//! use leaky_uarch::UarchProfile;
//!
//! let sky = UarchProfile::skylake();
//! assert_eq!(sky.key, "skylake");
//! assert!(UarchProfile::by_key("icelake").is_some());
//! // Fingerprints are content hashes: a perturbed geometry cannot alias
//! // the canonical profile's cached state.
//! let mut perturbed = sky;
//! perturbed.geometry.dsb_line_uops = 4;
//! assert_ne!(perturbed.fingerprint(), sky.fingerprint());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod costs;
pub mod profile;

pub use costs::CostModel;
pub use profile::{config_fingerprint, Fnv1a, UarchProfile};

//! Calibrated cycle-cost model for the frontend paths.
//!
//! The absolute constants are fitted so the simulator reproduces the *shape*
//! of the paper's measurements (Fig. 2 timing separation, Fig. 4 IPC
//! ordering, Table III rate magnitudes); see DESIGN.md §4 for the fitting
//! rationale. All values are in cycles.

/// Cycle costs of frontend events.
///
/// The three delivery paths obey the paper's ordering (§IV, §V-B, Fig. 2):
/// DSB delivery is fastest per µop, LSD delivery is slightly *slower* per µop
/// than DSB (the paper exploits this in the misalignment channels), and MITE
/// decode is far slower — plus it pays switch penalties when the frontend
/// transitions between paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per µop streamed from the DSB.
    pub dsb_per_uop: f64,
    /// Cycles per µop streamed from the LSD. Slightly larger than
    /// [`CostModel::dsb_per_uop`] per the paper's observation that "LSD is
    /// indeed slower in delivery" (§V-B, Fig. 2).
    pub lsd_per_uop: f64,
    /// Fixed cycles to decode one 32-byte window through the MITE
    /// (fetch + pre-decode + decode slot allocation).
    pub mite_line_base: f64,
    /// Additional MITE cycles per µop in the window.
    pub mite_per_uop: f64,
    /// Penalty when delivery switches from DSB to MITE (§IV-H).
    pub dsb_to_mite_switch: f64,
    /// Penalty when delivery switches back from MITE to DSB.
    pub mite_to_dsb_switch: f64,
    /// Penalty when an LSD-locked loop is flushed and delivery falls back to
    /// DSB/MITE (inclusive-eviction transition, §IV-F).
    pub lsd_flush: f64,
    /// Pre-decode stall for one Length-Changing-Prefix instruction (§IV-H:
    /// "up to 3 cycles"; effective fitted value).
    pub lcp_stall: f64,
    /// Extra serialization when an LCP instruction directly follows another
    /// LCP instruction (LCPs decode strictly sequentially, §IV-H).
    pub lcp_sequential_extra: f64,
    /// Per-instruction MITE decode cost used inside LCP blocks (instruction
    /// granularity).
    pub mite_per_instr: f64,
    /// Effective DSB→MITE switch cost at *instruction* granularity inside
    /// LCP blocks: back-to-back switches overlap in the pipeline, so the
    /// exposed penalty is far below the cold-switch cost.
    pub lcp_dsb_to_mite_switch: f64,
    /// Effective MITE→DSB switch cost at instruction granularity.
    pub lcp_mite_to_dsb_switch: f64,
    /// Extra fetch cost for a block that straddles two 32-byte windows
    /// (split fetch; basis of the non-MT misalignment timing signal,
    /// §V-D).
    pub window_crossing_penalty: f64,
    /// L1I miss penalty (line fill from L2).
    pub l1i_miss: f64,
    /// Loop-closing overhead per iteration (taken-branch redirect).
    pub loop_overhead: f64,
    /// Multiplier on MITE costs when both hyper-threads are active — the
    /// MITE (fetch, IQ, decoders) is competitively shared (§IV-C).
    pub smt_mite_factor: f64,
    /// Cycles of fixed overhead per `rdtscp` measurement.
    pub timer_overhead: f64,
}

impl CostModel {
    /// The calibrated Skylake-family model used throughout the
    /// reproduction.
    pub const fn skylake() -> Self {
        CostModel {
            dsb_per_uop: 0.18,
            lsd_per_uop: 0.48,
            mite_line_base: 4.0,
            mite_per_uop: 0.6,
            dsb_to_mite_switch: 8.0,
            mite_to_dsb_switch: 2.0,
            lsd_flush: 6.0,
            lcp_stall: 1.5,
            lcp_sequential_extra: 1.0,
            mite_per_instr: 0.8,
            // Fig. 4 reports ~9.0e8 switch-penalty cycles over 800 M
            // mixed-issue iterations (~31 switches each): ~1 cycle per
            // iteration, so the exposed per-switch cost is a small
            // fraction of a cycle. Keeping these near that measurement
            // also preserves the Table IV slow-switch margin: the
            // mixed/ordered gap is the serialized-stall signal minus the
            // mixed pattern's switch overhead.
            lcp_dsb_to_mite_switch: 0.15,
            lcp_mite_to_dsb_switch: 0.1,
            window_crossing_penalty: 4.5,
            l1i_miss: 12.0,
            loop_overhead: 1.0,
            smt_mite_factor: 2.0,
            timer_overhead: 30.0,
        }
    }

    /// An Ice-Lake-class calibration for the
    /// [`UarchProfile::icelake`](crate::UarchProfile::icelake) ablation.
    /// Scaled from the Skylake fit: the wider decode cluster lowers the
    /// per-window and per-µop MITE costs (more decode slots per cycle), and
    /// a deeper µop queue softens the exposed DSB→MITE switch. Everything
    /// the profile does not change keeps the Skylake value so cross-profile
    /// deltas isolate the decode/DSB differences.
    pub const fn icelake() -> Self {
        CostModel {
            mite_line_base: 3.2,
            mite_per_uop: 0.5,
            mite_per_instr: 0.66,
            dsb_to_mite_switch: 6.5,
            ..Self::skylake()
        }
    }

    /// Cost of delivering one DSB line holding `uops` µops.
    #[inline]
    pub fn dsb_line(&self, uops: u32) -> f64 {
        self.dsb_per_uop * uops as f64
    }

    /// Cost of streaming `uops` µops from the LSD.
    #[inline]
    pub fn lsd_stream(&self, uops: u32) -> f64 {
        self.lsd_per_uop * uops as f64
    }

    /// Cost of decoding one window of `uops` µops through the MITE,
    /// optionally inflated by SMT contention.
    #[inline]
    pub fn mite_line(&self, uops: u32, smt_contended: bool) -> f64 {
        let base = self.mite_line_base + self.mite_per_uop * uops as f64;
        if smt_contended {
            base * self.smt_mite_factor
        } else {
            base
        }
    }
}

impl CostModel {
    /// A hypothetical *constant-time frontend* (paper §XII): every path
    /// delivers at the same per-µop cost and no switch, flush, stall or
    /// crossing penalties exist. This forgoes the performance/power benefit
    /// of the multi-path design — the paper's point is precisely that
    /// removing the signatures removes the benefit — but eliminates the
    /// timing side channel, as the defense tests demonstrate.
    pub const fn constant_time() -> Self {
        CostModel {
            dsb_per_uop: 0.48,
            lsd_per_uop: 0.48,
            mite_line_base: 0.0,
            mite_per_uop: 0.48,
            dsb_to_mite_switch: 0.0,
            mite_to_dsb_switch: 0.0,
            lsd_flush: 0.0,
            lcp_stall: 0.0,
            lcp_sequential_extra: 0.0,
            mite_per_instr: 0.48,
            lcp_dsb_to_mite_switch: 0.0,
            lcp_mite_to_dsb_switch: 0.0,
            window_crossing_penalty: 0.0,
            l1i_miss: 12.0,
            loop_overhead: 1.0,
            smt_mite_factor: 1.0,
            timer_overhead: 30.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_ordering_matches_paper() {
        let c = CostModel::skylake();
        // Per 5-µop mix block: DSB < LSD << MITE (Fig. 2).
        let dsb = c.dsb_line(5);
        let lsd = c.lsd_stream(5);
        let mite = c.mite_line(5, false);
        assert!(dsb < lsd, "DSB must deliver faster than LSD");
        assert!(lsd < mite / 2.0, "MITE must be much slower than LSD");
    }

    #[test]
    fn smt_contention_inflates_mite_only() {
        let c = CostModel::skylake();
        assert_eq!(
            c.mite_line(5, true),
            c.mite_line(5, false) * c.smt_mite_factor
        );
    }

    #[test]
    fn switch_penalties_are_asymmetric() {
        let c = CostModel::skylake();
        assert!(c.dsb_to_mite_switch > c.mite_to_dsb_switch);
    }

    #[test]
    fn constant_time_model_has_uniform_paths() {
        let c = CostModel::constant_time();
        assert_eq!(c.dsb_line(5), c.lsd_stream(5));
        assert_eq!(c.dsb_line(5), c.mite_line(5, true));
        assert_eq!(c.dsb_to_mite_switch, 0.0);
        assert_eq!(c.lcp_stall, 0.0);
        assert_eq!(c.window_crossing_penalty, 0.0);
    }

    #[test]
    fn icelake_keeps_path_ordering_with_cheaper_decode() {
        let icl = CostModel::icelake();
        let sky = CostModel::skylake();
        // The wider decoder lowers MITE costs but never below the DSB/LSD
        // paths — path ordering is what the attacks exploit.
        assert!(icl.mite_line(5, false) < sky.mite_line(5, false));
        assert!(icl.dsb_line(5) < icl.lsd_stream(5));
        assert!(icl.lsd_stream(5) < icl.mite_line(5, false));
        assert!(icl.dsb_to_mite_switch < sky.dsb_to_mite_switch);
        assert_eq!(icl.dsb_per_uop, sky.dsb_per_uop);
    }
}

//! `leaky_trace` — zero-cost-when-off structured trace & telemetry.
//!
//! The observability layer of the Leaky Frontends workspace (DESIGN.md
//! §12). A [`TraceHook`] handle is carried by `Frontend`, `Core` and the
//! covert channels; emission sites call [`TraceHook::emit`] with a
//! closure, so a disabled hook costs one discriminant branch and builds
//! nothing — `perf_report`'s `trace_off_*` metrics pin the overhead at
//! ≤1.02× the untraced medians.
//!
//! Three layers:
//!
//! - **Events** ([`TraceEvent`]): per-iteration delivery-path verdicts
//!   ([`Source`] transitions, LSD lock/unlock with [`UnlockReason`],
//!   LCP pre-decode stalls with cycle costs) and per-cell channel
//!   events (calibration thresholds, per-bit decode outcomes, session
//!   framing).
//! - **Summary** ([`StallSummary`]): per-source cycle/µop totals plus
//!   [`Welford`]-folded stall histograms that merge bit-identically in
//!   any deterministic fold order, like `leaky_stats` summaries.
//! - **Sinks & telemetry**: pluggable [`TraceSink`]s ([`CsvSink`],
//!   [`TextSink`], [`TimedTextSink`]) for per-cell trace files, and a
//!   [`Telemetry`] record (schema [`TRACE_SCHEMA`]) that rides along
//!   `leaky_exp::CellMeasurement` into sweep JSON.
//!
//! The crate is deliberately dependency-free (std only): every
//! simulation crate links it, so it must not widen their build graphs.
//!
//! # Examples
//!
//! ```
//! use leaky_trace::{Source, TraceEvent, TraceHook, TraceMode};
//!
//! let mut hook = TraceHook::new(TraceMode::Summary);
//! hook.emit(|| TraceEvent::LcpStall { thread: 0, stall_cycles: 6.0 });
//! let summary = hook.summary().expect("hook is on");
//! assert_eq!(summary.lcp_stall.count(), 1);
//!
//! let mut off = TraceHook::Off;
//! off.emit(|| unreachable!("never built when off"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod codec;
pub mod event;
pub mod hook;
pub mod sink;
pub mod summary;
pub mod telemetry;

pub use codec::CodecError;
pub use event::{Source, TraceEvent, UnlockReason, CSV_HEADER};
pub use hook::{EventBuffer, TraceHook, TraceMode};
pub use sink::{drain, CsvSink, TextSink, TimedTextSink, TraceSink};
pub use summary::{SourceTotals, StallSummary, Welford};
pub use telemetry::{Telemetry, TRACE_SCHEMA};

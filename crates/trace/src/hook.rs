//! The zero-cost-when-off trace hook.
//!
//! [`TraceHook`] is the handle every instrumented component carries.
//! Emission sites call [`TraceHook::emit`] with a *closure* that builds
//! the event, so when the hook is [`TraceHook::Off`] the whole call
//! reduces to one discriminant branch — no event is constructed, no
//! fields are read, and the optimizer is free to delete the dead loads.
//! `perf_report`'s `trace_off_*` metrics pin this (≤1.02× the untraced
//! seed medians).

use crate::event::TraceEvent;
use crate::summary::StallSummary;
use crate::telemetry::Telemetry;

/// Which trace level a run wants, as selected by
/// `leaky_sweep --trace[=summary|events]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TraceMode {
    /// No tracing: the hot path pays one branch per emission site.
    #[default]
    Off,
    /// Fold events into a [`StallSummary`] as they are emitted.
    Summary,
    /// Buffer every event (implies the summary, derivable on demand).
    Events,
}

impl TraceMode {
    /// Stable lowercase token (CLI / JSON).
    pub const fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Summary => "summary",
            TraceMode::Events => "events",
        }
    }
}

impl std::str::FromStr for TraceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TraceMode::Off),
            "summary" => Ok(TraceMode::Summary),
            "events" => Ok(TraceMode::Events),
            other => Err(format!(
                "unknown trace mode '{other}' (expected off, summary or events)"
            )),
        }
    }
}

/// An in-order buffer of every emitted event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventBuffer {
    /// The events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl EventBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// Folds the whole buffer into a fresh [`StallSummary`].
    ///
    /// Because [`TraceHook::Summary`] folds the identical event stream
    /// in the identical order, `to_summary()` of an events-mode run is
    /// bit-identical to the summary-mode run of the same cell — the
    /// differential tests rely on this.
    pub fn to_summary(&self) -> StallSummary {
        let mut s = StallSummary::new();
        for e in &self.events {
            s.fold(e);
        }
        s
    }
}

/// The trace handle carried by `Frontend`, `Core` and the channels.
///
/// The active variants box their state so the handle stays one word of
/// discriminant plus one pointer — cheap to embed in the (cloneable)
/// simulation structs and free to match on.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum TraceHook {
    /// Tracing disabled; [`TraceHook::emit`] is a no-op branch.
    #[default]
    Off,
    /// Fold each event into the boxed summary immediately.
    Summary(Box<StallSummary>),
    /// Buffer each event verbatim.
    Events(Box<EventBuffer>),
}

impl TraceHook {
    /// Creates a hook for the given mode.
    pub fn new(mode: TraceMode) -> Self {
        match mode {
            TraceMode::Off => TraceHook::Off,
            TraceMode::Summary => TraceHook::Summary(Box::default()),
            TraceMode::Events => TraceHook::Events(Box::default()),
        }
    }

    /// The mode this hook implements.
    pub fn mode(&self) -> TraceMode {
        match self {
            TraceHook::Off => TraceMode::Off,
            TraceHook::Summary(_) => TraceMode::Summary,
            TraceHook::Events(_) => TraceMode::Events,
        }
    }

    /// True when tracing is disabled.
    #[inline]
    pub fn is_off(&self) -> bool {
        matches!(self, TraceHook::Off)
    }

    /// Emits one event. `build` runs only when the hook is on; keep all
    /// event-field computation inside the closure so the off path stays
    /// a single branch.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> TraceEvent) {
        match self {
            TraceHook::Off => {}
            TraceHook::Summary(summary) => summary.fold(&build()),
            TraceHook::Events(buffer) => buffer.events.push(build()),
        }
    }

    /// The accumulated summary: direct for [`TraceHook::Summary`],
    /// derived by folding for [`TraceHook::Events`], `None` when off.
    pub fn summary(&self) -> Option<StallSummary> {
        match self {
            TraceHook::Off => None,
            TraceHook::Summary(s) => Some(s.as_ref().clone()),
            TraceHook::Events(b) => Some(b.to_summary()),
        }
    }

    /// The buffered events, when the hook is in events mode.
    pub fn events(&self) -> Option<&[TraceEvent]> {
        match self {
            TraceHook::Events(b) => Some(&b.events),
            _ => None,
        }
    }

    /// Consumes the hook into a [`Telemetry`] record for attachment to a
    /// `CellMeasurement`, or `None` when off.
    pub fn into_telemetry(self) -> Option<Telemetry> {
        match self {
            TraceHook::Off => None,
            TraceHook::Summary(summary) => Some(Telemetry {
                mode: TraceMode::Summary,
                summary: *summary,
                events: Vec::new(),
            }),
            TraceHook::Events(buffer) => {
                let summary = buffer.to_summary();
                Some(Telemetry {
                    mode: TraceMode::Events,
                    summary,
                    events: buffer.events,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock(uops: u32) -> TraceEvent {
        TraceEvent::LsdLock {
            thread: 0,
            uops,
            lines: 2,
        }
    }

    #[test]
    fn off_hook_never_builds() {
        let mut hook = TraceHook::Off;
        hook.emit(|| unreachable!("closure must not run when off"));
        assert!(hook.is_off());
        assert_eq!(hook.mode(), TraceMode::Off);
        assert!(hook.summary().is_none());
        assert!(hook.into_telemetry().is_none());
    }

    #[test]
    fn summary_and_events_fold_identically() {
        let mut sum = TraceHook::new(TraceMode::Summary);
        let mut evt = TraceHook::new(TraceMode::Events);
        for hook in [&mut sum, &mut evt] {
            hook.emit(|| lock(40));
            hook.emit(|| TraceEvent::LcpStall {
                thread: 1,
                stall_cycles: 6.0,
            });
        }
        assert_eq!(sum.summary(), evt.summary());
        assert_eq!(evt.events().map(<[TraceEvent]>::len), Some(2));
        assert_eq!(sum.events(), None);
        let t = evt.into_telemetry();
        assert_eq!(t.as_ref().map(|t| t.events.len()), Some(2));
        assert_eq!(
            t.map(|t| t.summary),
            sum.into_telemetry().map(|t| t.summary)
        );
    }

    #[test]
    fn mode_round_trips_through_fromstr() {
        for mode in [TraceMode::Off, TraceMode::Summary, TraceMode::Events] {
            assert_eq!(mode.label().parse::<TraceMode>(), Ok(mode));
        }
        assert!("verbose".parse::<TraceMode>().is_err());
        assert_eq!(
            TraceHook::new("events".parse().unwrap()).mode(),
            TraceMode::Events
        );
    }
}

//! Pluggable trace sinks.
//!
//! A [`TraceSink`] consumes a finished event stream — the hook itself
//! stays sink-free so the hot path never carries I/O. Ship the events
//! to a sink after the run with [`drain`].

use std::io;
use std::io::Write;

use crate::event::{TraceEvent, CSV_HEADER};

/// A consumer of trace events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: &TraceEvent) -> io::Result<()>;

    /// Flushes any buffered state. Called once, after the last event.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Feeds every event to `sink` in order, then finishes it.
pub fn drain(events: &[TraceEvent], sink: &mut dyn TraceSink) -> io::Result<()> {
    for e in events {
        sink.record(e)?;
    }
    sink.finish()
}

/// Writes the cyclotron-style CSV rendering ([`CSV_HEADER`] plus one
/// [`TraceEvent::csv_row`] per event) — the per-cell trace-file format
/// of `leaky_sweep --trace=events --trace-dir`.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    writer: W,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer; the header is emitted before the first event.
    pub fn new(writer: W) -> Self {
        CsvSink {
            writer,
            wrote_header: false,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for CsvSink<W> {
    fn record(&mut self, event: &TraceEvent) -> io::Result<()> {
        if !self.wrote_header {
            writeln!(self.writer, "{CSV_HEADER}")?;
            self.wrote_header = true;
        }
        writeln!(self.writer, "{}", event.csv_row())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

fn describe(event: &TraceEvent) -> String {
    // One human-readable line per event: the CSV columns, labelled.
    let row = event.csv_row();
    let mut cols = row.splitn(4, ',');
    let kind = cols.next().unwrap_or_default();
    let thread = cols.next().unwrap_or_default();
    let cycles = cols.next().unwrap_or_default();
    let detail = cols.next().unwrap_or_default();
    let mut line = format!("{kind:<18}");
    if !thread.is_empty() {
        line.push_str(&format!(" t{thread}"));
    }
    if !cycles.is_empty() {
        line.push_str(&format!(" cycles={cycles}"));
    }
    if !detail.is_empty() {
        line.push(' ');
        line.push_str(&detail.replace(';', " "));
    }
    line
}

/// Writes one human-readable line per event — the sink behind the
/// `debug_*` binaries' `--trace` output.
#[derive(Debug)]
pub struct TextSink<W: Write> {
    writer: W,
}

impl<W: Write> TextSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        TextSink { writer }
    }
}

impl<W: Write> TraceSink for TextSink<W> {
    fn record(&mut self, event: &TraceEvent) -> io::Result<()> {
        writeln!(self.writer, "{}", describe(event))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A [`TextSink`] that prefixes each line with wall-clock milliseconds
/// since the sink was created.
///
/// This is the **only** wall-clock consumer in the workspace: its output
/// is explicitly non-deterministic and must never feed goldens, sweep
/// documents or anything else the determinism contract covers. It exists
/// for interactive debugging, where "when did the simulator reach this
/// event" is the question being asked.
#[derive(Debug)]
pub struct TimedTextSink<W: Write> {
    writer: W,
    start: std::time::Instant,
}

impl<W: Write> TimedTextSink<W> {
    /// Wraps a writer, starting the clock now.
    pub fn new(writer: W) -> Self {
        TimedTextSink {
            writer,
            start: std::time::Instant::now(), // lint: allow(wall-clock)
        }
    }
}

impl<W: Write> TraceSink for TimedTextSink<W> {
    fn record(&mut self, event: &TraceEvent) -> io::Result<()> {
        let ms = self.start.elapsed().as_secs_f64() * 1e3;
        writeln!(self.writer, "[{ms:9.3}ms] {}", describe(event))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SourceSwitch {
                thread: 0,
                from: Source::Dsb,
                to: Source::Mite,
                penalty_cycles: 46.0,
            },
            TraceEvent::SessionStart { bits: 8 },
        ]
    }

    #[test]
    fn csv_sink_writes_header_then_rows() {
        let mut sink = CsvSink::new(Vec::new());
        drain(&events(), &mut sink).expect("in-memory write");
        let out = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines[1], "source_switch,0,46,from=dsb;to=mite");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn text_sink_labels_columns() {
        let mut buf = Vec::new();
        drain(&events(), &mut TextSink::new(&mut buf)).expect("in-memory write");
        let out = String::from_utf8(buf).expect("utf8");
        assert!(out.contains("source_switch"));
        assert!(out.contains("t0 cycles=46 from=dsb to=mite"));
        assert!(out.contains("bits=8"));
    }

    #[test]
    fn timed_sink_prefixes_milliseconds() {
        let mut buf = Vec::new();
        drain(&events(), &mut TimedTextSink::new(&mut buf)).expect("in-memory write");
        let out = String::from_utf8(buf).expect("utf8");
        assert!(out
            .lines()
            .all(|l| l.starts_with('[') && l.contains("ms] ")));
    }
}

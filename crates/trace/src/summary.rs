//! Welford-folded stall summaries.
//!
//! [`StallSummary`] is the in-memory aggregator sink: it folds the event
//! stream down to per-[`Source`] cycle/µop totals, stall histograms and
//! channel counters. The embedded [`Welford`] accumulator mirrors
//! `leaky_stats::OnlineStats` operation-for-operation (a dev-dependency
//! test pins the parity) so two summaries merge exactly like
//! `leaky_stats` summaries do: left-fold in a deterministic order and
//! the result is bit-identical at any worker count.

use crate::event::{Source, TraceEvent, UnlockReason};

/// Online mean / variance accumulator, a dependency-free mirror of
/// `leaky_stats::OnlineStats`.
///
/// Every operation replays the same floating-point sequence as the
/// original, so summaries folded here and statistics folded there stay
/// bit-comparable. Keep the two in lockstep; the `welford_parity` test
/// in this crate fails if they drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// Not derived: the empty accumulator needs `min = +inf` / `max = -inf`
// so the first real sample wins, and a derived all-zero default would
// silently clamp minima at 0.
impl Default for Welford {
    fn default() -> Self {
        Welford::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds `n` copies of one sample in O(1), as a merge with the
    /// degenerate accumulator `{count: n, mean: v, m2: 0}`.
    ///
    /// This is what lets the steady-state collapse in
    /// `Frontend::run_iterations` stand `weight` identical iterations
    /// behind a single event without replaying them.
    pub fn push_repeated(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let repeated = Welford {
            count: n,
            mean: v,
            m2: 0.0,
            min: v,
            max: v,
        };
        self.merge(&repeated);
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample seen, or `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen, or `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divides by `n`), or `0.0` if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// The accumulator's raw state `(count, mean, m2, min, max)`, for
    /// bit-exact serialization (the store telemetry codec). `mean`/`m2`
    /// are the internal Welford moments, not derived statistics; feeding
    /// them back through [`Welford::from_raw_parts`] reproduces the
    /// accumulator exactly, including the empty state's `±inf` extrema.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Welford::raw_parts`] output,
    /// bit-for-bit.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Welford {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge,
    /// same operation order as `OnlineStats::merge`).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-[`Source`] running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SourceTotals {
    /// Weighted iterations whose dominant path was this source.
    pub iterations: u64,
    /// Cycles of those iterations (weighted).
    pub cycles: f64,
    /// µops this source delivered, across *all* iterations (weighted).
    pub uops: u64,
}

/// The per-run stall summary: the answer to "why is this channel fast,
/// slow, or dead".
///
/// Iteration cycles are attributed to the iteration's *dominant* source,
/// while µop totals count every path's contribution, so a
/// `constant_time` run shows up as the DSB and MITE rows converging on
/// the same per-iteration cycle mean (see EXPERIMENTS.md, "reading a
/// trace").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StallSummary {
    /// Weighted frontend iterations folded in.
    pub iterations: u64,
    /// Per-source totals, indexed by [`Source::index`].
    pub per_source: [SourceTotals; 3],
    /// Per-iteration cycle histogram (weighted).
    pub iteration_cycles: Welford,
    /// LCP pre-decode stall histogram, one sample per stalled block.
    pub lcp_stall: Welford,
    /// Path-switch penalty histogram, one sample per switch.
    pub switch_stall: Welford,
    /// LSD locks established.
    pub lsd_locks: u64,
    /// LSD unlocks, indexed by [`UnlockReason::index`].
    pub lsd_unlocks: [u64; 4],
    /// Deferred LSD flush penalties charged.
    pub lsd_flushes: u64,
    /// Inclusive DSB evictions (weighted).
    pub dsb_evictions: u64,
    /// L1I misses (weighted).
    pub l1i_misses: u64,
    /// Raw channel measurements taken.
    pub channel_measures: u64,
    /// Successful threshold calibrations.
    pub calibrations: u64,
    /// Failed (dead-channel) calibrations.
    pub failed_calibrations: u64,
    /// Last successful calibration's `(zero_mean, one_mean, threshold,
    /// separation)`, if any.
    pub last_calibration: Option<[f64; 4]>,
    /// Bits decoded across sessions.
    pub bits: u64,
    /// Bits decoded wrongly.
    pub bit_errors: u64,
    /// Ambiguity-band re-measurements taken.
    pub resamples: u64,
}

impl StallSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        StallSummary::default()
    }

    /// Folds one event into the summary.
    pub fn fold(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Iteration {
                source,
                weight,
                cycles,
                lsd_uops,
                dsb_uops,
                mite_uops,
                dsb_evictions,
                l1i_misses,
                ..
            } => {
                let w = *weight;
                self.iterations += w;
                let dom = &mut self.per_source[source.index()];
                dom.iterations += w;
                dom.cycles += cycles * w as f64;
                self.per_source[Source::Lsd.index()].uops += lsd_uops * w;
                self.per_source[Source::Dsb.index()].uops += dsb_uops * w;
                self.per_source[Source::Mite.index()].uops += mite_uops * w;
                self.iteration_cycles.push_repeated(*cycles, w);
                self.dsb_evictions += dsb_evictions * w;
                self.l1i_misses += l1i_misses * w;
            }
            TraceEvent::SourceSwitch { penalty_cycles, .. } => {
                self.switch_stall.push(*penalty_cycles);
            }
            TraceEvent::LsdLock { .. } => self.lsd_locks += 1,
            TraceEvent::LsdUnlock { reason, .. } => {
                self.lsd_unlocks[reason.index()] += 1;
            }
            TraceEvent::LsdFlushPenalty { .. } => self.lsd_flushes += 1,
            TraceEvent::LcpStall { stall_cycles, .. } => {
                self.lcp_stall.push(*stall_cycles);
            }
            TraceEvent::Calibration {
                zero_mean,
                one_mean,
                threshold,
                separation,
            } => {
                self.calibrations += 1;
                self.last_calibration = Some([*zero_mean, *one_mean, *threshold, *separation]);
            }
            TraceEvent::CalibrationFailed => self.failed_calibrations += 1,
            TraceEvent::ChannelMeasure { .. } => self.channel_measures += 1,
            TraceEvent::BitDecoded {
                sent,
                received,
                resamples,
                ..
            } => {
                self.bits += 1;
                if sent != received {
                    self.bit_errors += 1;
                }
                self.resamples += u64::from(*resamples);
            }
            TraceEvent::SessionStart { .. } | TraceEvent::SessionEnd { .. } => {}
        }
    }

    /// Merges another summary into this one. Counters add; histograms
    /// merge via the parallel Welford merge, so a left-fold over
    /// per-shard summaries in a deterministic order is bit-identical at
    /// any worker count (the `leaky_stats::summary::merge_ordered`
    /// discipline).
    pub fn merge(&mut self, other: &StallSummary) {
        self.iterations += other.iterations;
        for (d, s) in self.per_source.iter_mut().zip(other.per_source.iter()) {
            d.iterations += s.iterations;
            d.cycles += s.cycles;
            d.uops += s.uops;
        }
        self.iteration_cycles.merge(&other.iteration_cycles);
        self.lcp_stall.merge(&other.lcp_stall);
        self.switch_stall.merge(&other.switch_stall);
        self.lsd_locks += other.lsd_locks;
        for (d, s) in self.lsd_unlocks.iter_mut().zip(other.lsd_unlocks.iter()) {
            *d += s;
        }
        self.lsd_flushes += other.lsd_flushes;
        self.dsb_evictions += other.dsb_evictions;
        self.l1i_misses += other.l1i_misses;
        self.channel_measures += other.channel_measures;
        self.calibrations += other.calibrations;
        self.failed_calibrations += other.failed_calibrations;
        if other.last_calibration.is_some() {
            self.last_calibration = other.last_calibration;
        }
        self.bits += other.bits;
        self.bit_errors += other.bit_errors;
        self.resamples += other.resamples;
    }

    /// Mean per-iteration cycle cost of iterations dominated by `source`,
    /// or `0.0` if none were.
    pub fn mean_cycles(&self, source: Source) -> f64 {
        let t = &self.per_source[source.index()];
        if t.iterations == 0 {
            0.0
        } else {
            t.cycles / t.iterations as f64
        }
    }

    /// The DSB-vs-MITE per-iteration stall gap in cycles — the quantity
    /// whose collapse to ~0 is the signature of a `constant_time`-killed
    /// channel.
    pub fn dsb_mite_gap(&self) -> f64 {
        let dsb = self.mean_cycles(Source::Dsb);
        let mite = self.mean_cycles(Source::Mite);
        if dsb == 0.0 || mite == 0.0 {
            0.0
        } else {
            mite - dsb
        }
    }

    /// Observed bit error rate, or `0.0` before any bit was decoded.
    pub fn error_rate(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Renders the summary as deterministic `stat,value` CSV rows — the
    /// per-cell trace-file format of `--trace=summary`.
    pub fn csv_rows(&self) -> String {
        let mut out = String::new();
        out.push_str("stat,value\n");
        let mut row = |k: &str, v: String| {
            out.push_str(k);
            out.push(',');
            out.push_str(&v);
            out.push('\n');
        };
        row("iterations", self.iterations.to_string());
        for s in Source::ALL {
            let t = &self.per_source[s.index()];
            row(
                &format!("{}_iterations", s.label()),
                t.iterations.to_string(),
            );
            row(&format!("{}_cycles", s.label()), t.cycles.to_string());
            row(&format!("{}_uops", s.label()), t.uops.to_string());
            row(
                &format!("{}_mean_cycles", s.label()),
                self.mean_cycles(s).to_string(),
            );
        }
        row("dsb_mite_gap", self.dsb_mite_gap().to_string());
        row(
            "iteration_cycles_mean",
            self.iteration_cycles.mean().to_string(),
        );
        row(
            "iteration_cycles_stddev",
            self.iteration_cycles.std_dev().to_string(),
        );
        row("lcp_stalls", self.lcp_stall.count().to_string());
        row("lcp_stall_mean", self.lcp_stall.mean().to_string());
        row("switch_stalls", self.switch_stall.count().to_string());
        row("switch_stall_mean", self.switch_stall.mean().to_string());
        row("lsd_locks", self.lsd_locks.to_string());
        for r in UnlockReason::ALL {
            row(
                &format!("lsd_unlocks_{}", r.label()),
                self.lsd_unlocks[r.index()].to_string(),
            );
        }
        row("lsd_flushes", self.lsd_flushes.to_string());
        row("dsb_evictions", self.dsb_evictions.to_string());
        row("l1i_misses", self.l1i_misses.to_string());
        row("channel_measures", self.channel_measures.to_string());
        row("calibrations", self.calibrations.to_string());
        row("failed_calibrations", self.failed_calibrations.to_string());
        if let Some([zero, one, thr, sep]) = self.last_calibration {
            row("calibration_zero_mean", zero.to_string());
            row("calibration_one_mean", one.to_string());
            row("calibration_threshold", thr.to_string());
            row("calibration_separation", sep.to_string());
        }
        row("bits", self.bits.to_string());
        row("bit_errors", self.bit_errors.to_string());
        row("error_rate", self.error_rate().to_string());
        row("resamples", self.resamples.to_string());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iteration(source: Source, weight: u64, cycles: f64) -> TraceEvent {
        TraceEvent::Iteration {
            thread: 0,
            source,
            weight,
            cycles,
            lsd_uops: 0,
            dsb_uops: if source == Source::Dsb { 10 } else { 0 },
            mite_uops: if source == Source::Mite { 10 } else { 0 },
            lcp_stall_cycles: 0.0,
            switch_penalty_cycles: 0.0,
            dsb_to_mite_switches: 0,
            dsb_evictions: 1,
            lsd_flushes: 0,
            l1i_misses: 0,
        }
    }

    #[test]
    fn welford_parity_with_leaky_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, 1.5e9, -3.25];
        let mut ours = Welford::new();
        let mut theirs = leaky_stats::OnlineStats::new();
        for &x in &xs {
            ours.push(x);
            theirs.push(x);
        }
        assert_eq!(ours.count(), theirs.count());
        assert_eq!(ours.mean(), theirs.mean());
        assert_eq!(ours.population_variance(), theirs.population_variance());
        assert_eq!(ours.min(), theirs.min());
        assert_eq!(ours.max(), theirs.max());

        // Merge replays the same op order too.
        let (mut oa, mut ob) = (Welford::new(), Welford::new());
        let (mut ta, mut tb) = (
            leaky_stats::OnlineStats::new(),
            leaky_stats::OnlineStats::new(),
        );
        for &x in &xs[..4] {
            oa.push(x);
            ta.push(x);
        }
        for &x in &xs[4..] {
            ob.push(x);
            tb.push(x);
        }
        oa.merge(&ob);
        ta.merge(&tb);
        assert_eq!(oa.mean(), ta.mean());
        assert_eq!(oa.population_variance(), ta.population_variance());
    }

    #[test]
    fn push_repeated_matches_degenerate_merge() {
        let mut a = Welford::new();
        a.push(3.0);
        let mut b = a;
        a.push_repeated(7.5, 4);
        let mut reps = Welford::new();
        for _ in 0..4 {
            reps.push(7.5);
        }
        b.merge(&reps);
        // Same mean/count; m2 may differ in the low bits between the two
        // op orders, but the degenerate source has m2 == 0 so they agree.
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.m2, b.m2);
        a.push_repeated(1.0, 0);
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn fold_attributes_cycles_to_dominant_source() {
        let mut s = StallSummary::new();
        s.fold(&iteration(Source::Dsb, 2, 10.0));
        s.fold(&iteration(Source::Mite, 1, 40.0));
        assert_eq!(s.iterations, 3);
        assert_eq!(s.mean_cycles(Source::Dsb), 10.0);
        assert_eq!(s.mean_cycles(Source::Mite), 40.0);
        assert_eq!(s.dsb_mite_gap(), 30.0);
        assert_eq!(s.per_source[Source::Dsb.index()].uops, 20);
        assert_eq!(s.dsb_evictions, 3);
        assert_eq!(s.iteration_cycles.count(), 3);
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let events = [
            iteration(Source::Lsd, 1, 5.0),
            iteration(Source::Dsb, 3, 11.0),
            TraceEvent::LcpStall {
                thread: 0,
                stall_cycles: 3.0,
            },
            TraceEvent::LsdUnlock {
                thread: 1,
                reason: UnlockReason::Eviction,
            },
            TraceEvent::BitDecoded {
                index: 0,
                sent: true,
                received: false,
                value: 100.0,
                resamples: 1,
            },
        ];
        let mut whole = StallSummary::new();
        for e in &events {
            whole.fold(e);
        }
        let mut left = StallSummary::new();
        let mut right = StallSummary::new();
        for e in &events[..2] {
            left.fold(e);
        }
        for e in &events[2..] {
            right.fold(e);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(whole.error_rate(), 1.0);
        assert_eq!(whole.lsd_unlocks[UnlockReason::Eviction.index()], 1);
    }

    #[test]
    fn csv_rows_are_deterministic_and_labelled() {
        let mut s = StallSummary::new();
        s.fold(&iteration(Source::Dsb, 2, 10.0));
        s.fold(&TraceEvent::Calibration {
            zero_mean: 1.0,
            one_mean: 3.0,
            threshold: 2.0,
            separation: 2.0,
        });
        let rows = s.csv_rows();
        assert!(rows.starts_with("stat,value\n"));
        assert!(rows.contains("dsb_iterations,2\n"));
        assert!(rows.contains("calibration_threshold,2\n"));
        assert_eq!(rows, s.clone().csv_rows());
    }
}

//! The structured event taxonomy (DESIGN.md §12).
//!
//! Events are plain scalar records: this crate sits *below*
//! `leaky_frontend` in the dependency graph, so it mirrors the delivery
//! paths in its own [`Source`] enum instead of referencing `UopSource`.
//! Emitters convert at the boundary; the two enums are kept in the same
//! order so the conversion is a trivial match.

/// µop delivery path, mirroring `leaky_frontend::UopSource`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Loop Stream Detector.
    Lsd,
    /// Decoded Stream Buffer (µop cache).
    Dsb,
    /// Legacy decode pipeline.
    Mite,
}

impl Source {
    /// All sources, in the fixed index order used by
    /// [`crate::StallSummary::per_source`].
    pub const ALL: [Source; 3] = [Source::Lsd, Source::Dsb, Source::Mite];

    /// Stable array index of this source.
    pub const fn index(self) -> usize {
        match self {
            Source::Lsd => 0,
            Source::Dsb => 1,
            Source::Mite => 2,
        }
    }

    /// Stable lowercase label (CSV / JSON token).
    pub const fn label(self) -> &'static str {
        match self {
            Source::Lsd => "lsd",
            Source::Dsb => "dsb",
            Source::Mite => "mite",
        }
    }
}

/// Why an LSD lock was torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnlockReason {
    /// An inclusive DSB eviction hit a member line.
    Eviction,
    /// Sibling window-crossing pressure collapsed the lock without any
    /// eviction (§IV-G, Fig. 6).
    SiblingCollapse,
    /// An SMT partition transition halved the LSD capacity below the
    /// locked loop's µop count.
    Partition,
    /// The thread moved on to a different loop.
    LoopExit,
}

impl UnlockReason {
    /// All reasons, in the fixed index order used by
    /// [`crate::StallSummary::lsd_unlocks`].
    pub const ALL: [UnlockReason; 4] = [
        UnlockReason::Eviction,
        UnlockReason::SiblingCollapse,
        UnlockReason::Partition,
        UnlockReason::LoopExit,
    ];

    /// Stable array index of this reason.
    pub const fn index(self) -> usize {
        match self {
            UnlockReason::Eviction => 0,
            UnlockReason::SiblingCollapse => 1,
            UnlockReason::Partition => 2,
            UnlockReason::LoopExit => 3,
        }
    }

    /// Stable lowercase label (CSV / JSON token).
    pub const fn label(self) -> &'static str {
        match self {
            UnlockReason::Eviction => "eviction",
            UnlockReason::SiblingCollapse => "sibling-collapse",
            UnlockReason::Partition => "partition",
            UnlockReason::LoopExit => "loop-exit",
        }
    }
}

/// One structured trace event.
///
/// Frontend events carry the hardware-thread index; channel events
/// (calibration, per-bit decode, session framing) are emitted above the
/// SMT layer and carry none. `Iteration` is the workhorse: one per
/// `Frontend::run_iteration`, carrying the whole delivery-path verdict,
/// with `weight > 1` standing for that many identical iterations when
/// the steady-state collapse extrapolates a report cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One frontend iteration (or `weight` identical extrapolated ones).
    Iteration {
        /// Hardware thread.
        thread: u8,
        /// Dominant delivery path of the iteration.
        source: Source,
        /// How many identical iterations this event stands for.
        weight: u64,
        /// Cycles of one such iteration.
        cycles: f64,
        /// µops streamed from the LSD.
        lsd_uops: u64,
        /// µops delivered from the DSB.
        dsb_uops: u64,
        /// µops decoded by the MITE.
        mite_uops: u64,
        /// LCP pre-decode stall cycles.
        lcp_stall_cycles: f64,
        /// Path-switch penalty cycles.
        switch_penalty_cycles: f64,
        /// DSB/LSD → MITE switches.
        dsb_to_mite_switches: u64,
        /// Inclusive DSB evictions caused.
        dsb_evictions: u64,
        /// LSD flush penalties charged.
        lsd_flushes: u64,
        /// L1I misses.
        l1i_misses: u64,
    },
    /// A delivery-path switch on the block-granular path, with its
    /// penalty (LCP blocks account switches inside their `Iteration`
    /// counters instead — see DESIGN.md §12).
    SourceSwitch {
        /// Hardware thread.
        thread: u8,
        /// Path delivering before the switch.
        from: Source,
        /// Path delivering after the switch.
        to: Source,
        /// Cycles charged for the switch.
        penalty_cycles: f64,
    },
    /// The LSD locked a qualifying loop.
    LsdLock {
        /// Hardware thread.
        thread: u8,
        /// µops of the locked loop.
        uops: u32,
        /// DSB lines backing the lock.
        lines: u8,
    },
    /// An LSD lock was torn down.
    LsdUnlock {
        /// Hardware thread.
        thread: u8,
        /// Why the lock died.
        reason: UnlockReason,
    },
    /// The deferred LSD-flush penalty was charged.
    LsdFlushPenalty {
        /// Hardware thread.
        thread: u8,
        /// Cycles charged.
        cycles: f64,
    },
    /// Total LCP pre-decode stall of one block's delivery.
    LcpStall {
        /// Hardware thread.
        thread: u8,
        /// Stall cycles (SMT-scaled, as accounted in the report).
        stall_cycles: f64,
    },
    /// Threshold calibration succeeded.
    Calibration {
        /// Mean measurement of the 0-class.
        zero_mean: f64,
        /// Mean measurement of the 1-class.
        one_mean: f64,
        /// Decision threshold.
        threshold: f64,
        /// Class separation.
        separation: f64,
    },
    /// Threshold calibration found indistinguishable classes (a dead
    /// channel — the §XII defense success signal).
    CalibrationFailed,
    /// One raw channel measurement (warm-up, calibration or decode).
    ChannelMeasure {
        /// Bit the sender encoded.
        sent: bool,
        /// The receiver's raw observation (cycles or watts).
        value: f64,
    },
    /// One transmitted bit's decode outcome.
    BitDecoded {
        /// Bit index in the message.
        index: u64,
        /// Bit the sender encoded.
        sent: bool,
        /// Bit the decoder produced.
        received: bool,
        /// The raw measurement the final decode used.
        value: f64,
        /// Ambiguity-band re-measurements taken.
        resamples: u32,
    },
    /// A transmission session began.
    SessionStart {
        /// Message length in bits.
        bits: u64,
    },
    /// A transmission session ended.
    SessionEnd {
        /// Message length in bits.
        bits: u64,
        /// Bits received wrongly.
        errors: u64,
    },
}

/// Header line of the event CSV rendering (see [`TraceEvent::csv_row`]).
pub const CSV_HEADER: &str = "event,thread,cycles,detail";

fn opt_thread(thread: Option<u8>) -> String {
    match thread {
        Some(t) => t.to_string(),
        None => String::new(),
    }
}

impl TraceEvent {
    /// Stable lowercase event-kind token.
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Iteration { .. } => "iteration",
            TraceEvent::SourceSwitch { .. } => "source_switch",
            TraceEvent::LsdLock { .. } => "lsd_lock",
            TraceEvent::LsdUnlock { .. } => "lsd_unlock",
            TraceEvent::LsdFlushPenalty { .. } => "lsd_flush_penalty",
            TraceEvent::LcpStall { .. } => "lcp_stall",
            TraceEvent::Calibration { .. } => "calibration",
            TraceEvent::CalibrationFailed => "calibration_failed",
            TraceEvent::ChannelMeasure { .. } => "channel_measure",
            TraceEvent::BitDecoded { .. } => "bit_decoded",
            TraceEvent::SessionStart { .. } => "session_start",
            TraceEvent::SessionEnd { .. } => "session_end",
        }
    }

    /// The hardware thread the event belongs to, when it has one.
    pub const fn thread(&self) -> Option<u8> {
        match self {
            TraceEvent::Iteration { thread, .. }
            | TraceEvent::SourceSwitch { thread, .. }
            | TraceEvent::LsdLock { thread, .. }
            | TraceEvent::LsdUnlock { thread, .. }
            | TraceEvent::LsdFlushPenalty { thread, .. }
            | TraceEvent::LcpStall { thread, .. } => Some(*thread),
            _ => None,
        }
    }

    /// Renders the event as one CSV row under [`CSV_HEADER`]: the fixed
    /// `event,thread,cycles` columns plus a `;`-separated `key=value`
    /// detail field. All numbers use Rust's shortest-round-trip `f64`
    /// formatting, so the rendering is a pure function of the event.
    pub fn csv_row(&self) -> String {
        let thread = opt_thread(self.thread());
        match self {
            TraceEvent::Iteration {
                source,
                weight,
                cycles,
                lsd_uops,
                dsb_uops,
                mite_uops,
                lcp_stall_cycles,
                switch_penalty_cycles,
                dsb_to_mite_switches,
                dsb_evictions,
                lsd_flushes,
                l1i_misses,
                ..
            } => format!(
                "iteration,{thread},{cycles},source={};weight={weight};lsd_uops={lsd_uops};\
                 dsb_uops={dsb_uops};mite_uops={mite_uops};lcp_stall={lcp_stall_cycles};\
                 switch={switch_penalty_cycles};switches={dsb_to_mite_switches};\
                 evictions={dsb_evictions};flushes={lsd_flushes};l1i_misses={l1i_misses}",
                source.label()
            ),
            TraceEvent::SourceSwitch {
                from,
                to,
                penalty_cycles,
                ..
            } => format!(
                "source_switch,{thread},{penalty_cycles},from={};to={}",
                from.label(),
                to.label()
            ),
            TraceEvent::LsdLock { uops, lines, .. } => {
                format!("lsd_lock,{thread},,uops={uops};lines={lines}")
            }
            TraceEvent::LsdUnlock { reason, .. } => {
                format!("lsd_unlock,{thread},,reason={}", reason.label())
            }
            TraceEvent::LsdFlushPenalty { cycles, .. } => {
                format!("lsd_flush_penalty,{thread},{cycles},")
            }
            TraceEvent::LcpStall { stall_cycles, .. } => {
                format!("lcp_stall,{thread},{stall_cycles},")
            }
            TraceEvent::Calibration {
                zero_mean,
                one_mean,
                threshold,
                separation,
            } => format!(
                "calibration,,,zero_mean={zero_mean};one_mean={one_mean};\
                 threshold={threshold};separation={separation}"
            ),
            TraceEvent::CalibrationFailed => "calibration_failed,,,".to_string(),
            TraceEvent::ChannelMeasure { sent, value } => {
                format!("channel_measure,,{value},sent={}", u8::from(*sent))
            }
            TraceEvent::BitDecoded {
                index,
                sent,
                received,
                value,
                resamples,
            } => format!(
                "bit_decoded,,{value},index={index};sent={};received={};resamples={resamples}",
                u8::from(*sent),
                u8::from(*received)
            ),
            TraceEvent::SessionStart { bits } => format!("session_start,,,bits={bits}"),
            TraceEvent::SessionEnd { bits, errors } => {
                format!("session_end,,,bits={bits};errors={errors}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_indices_are_stable() {
        for (i, s) in Source::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, r) in UnlockReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(Source::Mite.label(), "mite");
        assert_eq!(UnlockReason::SiblingCollapse.label(), "sibling-collapse");
    }

    #[test]
    fn csv_rows_are_stable() {
        let e = TraceEvent::SourceSwitch {
            thread: 1,
            from: Source::Dsb,
            to: Source::Mite,
            penalty_cycles: 46.0,
        };
        assert_eq!(e.csv_row(), "source_switch,1,46,from=dsb;to=mite");
        let b = TraceEvent::BitDecoded {
            index: 3,
            sent: true,
            received: false,
            value: 2897.25,
            resamples: 2,
        };
        assert_eq!(
            b.csv_row(),
            "bit_decoded,,2897.25,index=3;sent=1;received=0;resamples=2"
        );
        assert_eq!(b.thread(), None);
        assert_eq!(b.kind(), "bit_decoded");
    }
}

//! The JSON telemetry record that rides along `CellMeasurement` into
//! sweep JSON, and the per-cell trace-file renderings.

use crate::event::{Source, TraceEvent, UnlockReason, CSV_HEADER};
use crate::hook::TraceMode;
use crate::summary::{StallSummary, Welford};

/// Schema tag embedded in every telemetry object, versioned like the
/// sweep document's `leaky-frontends/sweep/v1`.
pub const TRACE_SCHEMA: &str = "leaky-frontends/trace/v1";

/// A finished trace, detached from its hook: the stall summary plus (in
/// events mode) the raw event stream.
///
/// The JSON rendering deliberately carries only the summary and the
/// event *count* — full event streams go to per-cell trace files via
/// [`Telemetry::trace_file_contents`], keeping sweep documents compact.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// The mode the producing hook ran in (never `Off`).
    pub mode: TraceMode,
    /// The folded stall summary.
    pub summary: StallSummary,
    /// The raw events (empty unless `mode == Events`).
    pub events: Vec<TraceEvent>,
}

// Mirror of the sweep renderer's number formatting: non-finite values
// have no JSON literal, and integral floats keep a trailing `.1` digit
// so they read back as floats.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn json_hist(w: &Welford) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {}, \"stddev\": {}, \"min\": {}, \"max\": {}}}",
        w.count(),
        json_num(w.mean()),
        json_num(w.std_dev()),
        json_num(w.min()),
        json_num(w.max()),
    )
}

impl Telemetry {
    /// Renders the telemetry as one inline JSON object (no trailing
    /// newline), a pure function of the trace contents — byte-identical
    /// at any sweep worker count.
    pub fn to_json_inline(&self) -> String {
        let s = &self.summary;
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"schema\": \"{TRACE_SCHEMA}\", \"mode\": \"{}\", ",
            self.mode.label()
        ));
        out.push_str(&format!("\"events\": {}, ", self.events.len()));
        out.push_str(&format!("\"iterations\": {}, ", s.iterations));
        out.push_str("\"sources\": {");
        for (i, src) in Source::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let t = &s.per_source[src.index()];
            out.push_str(&format!(
                "\"{}\": {{\"iterations\": {}, \"cycles\": {}, \"uops\": {}, \
                 \"mean_cycles\": {}}}",
                src.label(),
                t.iterations,
                json_num(t.cycles),
                t.uops,
                json_num(s.mean_cycles(*src)),
            ));
        }
        out.push_str("}, ");
        out.push_str(&format!(
            "\"dsb_mite_gap\": {}, ",
            json_num(s.dsb_mite_gap())
        ));
        out.push_str(&format!(
            "\"iteration_cycles\": {}, \"lcp_stall\": {}, \"switch_stall\": {}, ",
            json_hist(&s.iteration_cycles),
            json_hist(&s.lcp_stall),
            json_hist(&s.switch_stall),
        ));
        out.push_str(&format!("\"lsd_locks\": {}, ", s.lsd_locks));
        out.push_str("\"lsd_unlocks\": {");
        for (i, r) in UnlockReason::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", r.label(), s.lsd_unlocks[r.index()]));
        }
        out.push_str("}, ");
        out.push_str(&format!(
            "\"lsd_flushes\": {}, \"dsb_evictions\": {}, \"l1i_misses\": {}, ",
            s.lsd_flushes, s.dsb_evictions, s.l1i_misses
        ));
        out.push_str("\"channel\": {");
        out.push_str(&format!(
            "\"measures\": {}, \"calibrations\": {}, \"failed_calibrations\": {}, ",
            s.channel_measures, s.calibrations, s.failed_calibrations
        ));
        if let Some([zero, one, thr, sep]) = s.last_calibration {
            out.push_str(&format!(
                "\"calibration\": {{\"zero_mean\": {}, \"one_mean\": {}, \
                 \"threshold\": {}, \"separation\": {}}}, ",
                json_num(zero),
                json_num(one),
                json_num(thr),
                json_num(sep),
            ));
        }
        out.push_str(&format!(
            "\"bits\": {}, \"bit_errors\": {}, \"error_rate\": {}, \"resamples\": {}",
            s.bits,
            s.bit_errors,
            json_num(s.error_rate()),
            s.resamples
        ));
        out.push_str("}}");
        out
    }

    /// Renders the per-cell trace file: in events mode the full CSV
    /// event stream under [`CSV_HEADER`], in summary mode the
    /// `stat,value` rows of [`StallSummary::csv_rows`].
    pub fn trace_file_contents(&self) -> String {
        match self.mode {
            TraceMode::Events => {
                let mut out = String::with_capacity(64 + self.events.len() * 48);
                out.push_str(CSV_HEADER);
                out.push('\n');
                for e in &self.events {
                    out.push_str(&e.csv_row());
                    out.push('\n');
                }
                out
            }
            _ => self.summary.csv_rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::TraceHook;

    fn sample_telemetry(mode: TraceMode) -> Telemetry {
        let mut hook = TraceHook::new(mode);
        hook.emit(|| TraceEvent::Iteration {
            thread: 0,
            source: Source::Dsb,
            weight: 2,
            cycles: 12.5,
            lsd_uops: 0,
            dsb_uops: 10,
            mite_uops: 2,
            lcp_stall_cycles: 0.0,
            switch_penalty_cycles: 4.0,
            dsb_to_mite_switches: 1,
            dsb_evictions: 0,
            lsd_flushes: 0,
            l1i_misses: 1,
        });
        hook.emit(|| TraceEvent::Calibration {
            zero_mean: 2295.0,
            one_mean: 2897.25,
            threshold: 2596.125,
            separation: 602.25,
        });
        hook.into_telemetry().expect("hook was on")
    }

    #[test]
    fn json_is_schema_tagged_and_stable() {
        let t = sample_telemetry(TraceMode::Summary);
        let json = t.to_json_inline();
        assert!(
            json.starts_with("{\"schema\": \"leaky-frontends/trace/v1\", \"mode\": \"summary\"")
        );
        assert!(json.contains("\"dsb\": {\"iterations\": 2, \"cycles\": 25.0"));
        assert!(json.contains("\"threshold\": 2596.125"));
        assert!(json.ends_with("}}"));
        assert_eq!(json, t.to_json_inline());
        // Empty-histogram min/max (±inf) must render as null, not Inf.
        assert!(json.contains("\"lcp_stall\": {\"count\": 0, \"mean\": 0.0, \"stddev\": 0.0, \"min\": null, \"max\": null}"));
    }

    #[test]
    fn trace_file_matches_mode() {
        let events = sample_telemetry(TraceMode::Events);
        let file = events.trace_file_contents();
        assert!(file.starts_with("event,thread,cycles,detail\n"));
        assert_eq!(file.lines().count(), 3);
        let summary = sample_telemetry(TraceMode::Summary);
        assert!(summary.trace_file_contents().starts_with("stat,value\n"));
        // Events-mode summary and summary-mode summary agree.
        assert_eq!(events.summary, summary.summary);
    }
}

//! Bit-exact line encoding of [`Telemetry`] for `leaky_store` entries.
//!
//! The store persists every cell's measurement as a line-oriented,
//! checksummed text entry; this module extends that grammar with a
//! telemetry block so `--resume` can serve cached cells *with* their
//! traces. Floats are encoded as `0x`-prefixed IEEE-754 bit patterns
//! (the CSV renderings in [`crate::event`] / [`crate::summary`] are
//! decimal and lossy, so they cannot round-trip), which makes
//! `decode(encode(t)) == t` exact for every value including NaN, ±inf
//! and -0.0.
//!
//! Block grammar (one telemetry per entry, all lines `\n`-terminated):
//!
//! ```text
//! telemetry <mode-label>
//! tsum iterations <u64>
//! tsum source <label> <iterations> <cycles:hex> <uops>      (x3, Source::ALL order)
//! tsum hist <name> <count> <mean:hex> <m2:hex> <min:hex> <max:hex>   (x3)
//! tsum unlocks <u64> <u64> <u64> <u64>
//! tsum counters <lsd_locks> <lsd_flushes> <dsb_evictions> <l1i_misses>
//!               <channel_measures> <calibrations> <failed_calibrations>
//!               <bits> <bit_errors> <resamples>
//! tsum calibration <hex> <hex> <hex> <hex>                  (only if Some)
//! tev <kind> <fields...>                                    (events mode only)
//! ```
//!
//! Decoding is strict: unknown tags, wrong field counts, out-of-order
//! summary lines and unparseable tokens are all [`CodecError`]s, never
//! silent defaults — the same discipline as the store's own entry
//! parser, which quarantines what it cannot prove intact.

use crate::event::{Source, TraceEvent, UnlockReason};
use crate::hook::TraceMode;
use crate::summary::{StallSummary, Welford};
use crate::telemetry::Telemetry;

/// Why a telemetry block failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A line did not match the grammar; carries a human-readable
    /// reason naming the offending construct.
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Malformed(reason) => write!(f, "malformed telemetry: {reason}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn hex(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

fn push_hist(out: &mut String, name: &str, w: &Welford) {
    let (count, mean, m2, min, max) = w.raw_parts();
    out.push_str(&format!(
        "tsum hist {name} {count} {} {} {} {}\n",
        hex(mean),
        hex(m2),
        hex(min),
        hex(max)
    ));
}

/// Encodes a telemetry record as its line block (every line
/// `\n`-terminated). The output is a pure function of the record, so
/// store entries stay byte-identical at any worker count.
pub fn encode(t: &Telemetry) -> String {
    let s = &t.summary;
    let mut out = String::with_capacity(512 + t.events.len() * 64);
    out.push_str(&format!("telemetry {}\n", t.mode.label()));
    out.push_str(&format!("tsum iterations {}\n", s.iterations));
    for src in Source::ALL {
        let tot = &s.per_source[src.index()];
        out.push_str(&format!(
            "tsum source {} {} {} {}\n",
            src.label(),
            tot.iterations,
            hex(tot.cycles),
            tot.uops
        ));
    }
    push_hist(&mut out, "iteration_cycles", &s.iteration_cycles);
    push_hist(&mut out, "lcp_stall", &s.lcp_stall);
    push_hist(&mut out, "switch_stall", &s.switch_stall);
    out.push_str(&format!(
        "tsum unlocks {} {} {} {}\n",
        s.lsd_unlocks[0], s.lsd_unlocks[1], s.lsd_unlocks[2], s.lsd_unlocks[3]
    ));
    out.push_str(&format!(
        "tsum counters {} {} {} {} {} {} {} {} {} {}\n",
        s.lsd_locks,
        s.lsd_flushes,
        s.dsb_evictions,
        s.l1i_misses,
        s.channel_measures,
        s.calibrations,
        s.failed_calibrations,
        s.bits,
        s.bit_errors,
        s.resamples
    ));
    if let Some([zero, one, thr, sep]) = s.last_calibration {
        out.push_str(&format!(
            "tsum calibration {} {} {} {}\n",
            hex(zero),
            hex(one),
            hex(thr),
            hex(sep)
        ));
    }
    for e in &t.events {
        out.push_str(&encode_event(e));
        out.push('\n');
    }
    out
}

fn encode_event(e: &TraceEvent) -> String {
    match e {
        TraceEvent::Iteration {
            thread,
            source,
            weight,
            cycles,
            lsd_uops,
            dsb_uops,
            mite_uops,
            lcp_stall_cycles,
            switch_penalty_cycles,
            dsb_to_mite_switches,
            dsb_evictions,
            lsd_flushes,
            l1i_misses,
        } => format!(
            "tev iteration {thread} {} {weight} {} {lsd_uops} {dsb_uops} {mite_uops} {} {} \
             {dsb_to_mite_switches} {dsb_evictions} {lsd_flushes} {l1i_misses}",
            source.label(),
            hex(*cycles),
            hex(*lcp_stall_cycles),
            hex(*switch_penalty_cycles)
        ),
        TraceEvent::SourceSwitch {
            thread,
            from,
            to,
            penalty_cycles,
        } => format!(
            "tev source_switch {thread} {} {} {}",
            from.label(),
            to.label(),
            hex(*penalty_cycles)
        ),
        TraceEvent::LsdLock {
            thread,
            uops,
            lines,
        } => format!("tev lsd_lock {thread} {uops} {lines}"),
        TraceEvent::LsdUnlock { thread, reason } => {
            format!("tev lsd_unlock {thread} {}", reason.label())
        }
        TraceEvent::LsdFlushPenalty { thread, cycles } => {
            format!("tev lsd_flush_penalty {thread} {}", hex(*cycles))
        }
        TraceEvent::LcpStall {
            thread,
            stall_cycles,
        } => format!("tev lcp_stall {thread} {}", hex(*stall_cycles)),
        TraceEvent::Calibration {
            zero_mean,
            one_mean,
            threshold,
            separation,
        } => format!(
            "tev calibration {} {} {} {}",
            hex(*zero_mean),
            hex(*one_mean),
            hex(*threshold),
            hex(*separation)
        ),
        TraceEvent::CalibrationFailed => "tev calibration_failed".to_string(),
        TraceEvent::ChannelMeasure { sent, value } => {
            format!("tev channel_measure {} {}", u8::from(*sent), hex(*value))
        }
        TraceEvent::BitDecoded {
            index,
            sent,
            received,
            value,
            resamples,
        } => format!(
            "tev bit_decoded {index} {} {} {} {resamples}",
            u8::from(*sent),
            u8::from(*received),
            hex(*value)
        ),
        TraceEvent::SessionStart { bits } => format!("tev session_start {bits}"),
        TraceEvent::SessionEnd { bits, errors } => {
            format!("tev session_end {bits} {errors}")
        }
    }
}

fn malformed(reason: impl Into<String>) -> CodecError {
    CodecError::Malformed(reason.into())
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, CodecError> {
    tok.parse::<u64>()
        .map_err(|_| malformed(format!("bad {what} {tok:?}")))
}

fn parse_u32(tok: &str, what: &str) -> Result<u32, CodecError> {
    tok.parse::<u32>()
        .map_err(|_| malformed(format!("bad {what} {tok:?}")))
}

fn parse_u8(tok: &str, what: &str) -> Result<u8, CodecError> {
    tok.parse::<u8>()
        .map_err(|_| malformed(format!("bad {what} {tok:?}")))
}

fn parse_f64(tok: &str, what: &str) -> Result<f64, CodecError> {
    let digits = tok
        .strip_prefix("0x")
        .ok_or_else(|| malformed(format!("bad {what} {tok:?}: missing 0x")))?;
    let bits =
        u64::from_str_radix(digits, 16).map_err(|_| malformed(format!("bad {what} {tok:?}")))?;
    Ok(f64::from_bits(bits))
}

fn parse_bool(tok: &str, what: &str) -> Result<bool, CodecError> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(malformed(format!("bad {what} {tok:?}"))),
    }
}

fn parse_source(tok: &str) -> Result<Source, CodecError> {
    Source::ALL
        .into_iter()
        .find(|s| s.label() == tok)
        .ok_or_else(|| malformed(format!("unknown source {tok:?}")))
}

fn parse_reason(tok: &str) -> Result<UnlockReason, CodecError> {
    UnlockReason::ALL
        .into_iter()
        .find(|r| r.label() == tok)
        .ok_or_else(|| malformed(format!("unknown unlock reason {tok:?}")))
}

fn parse_hist(fields: &[&str]) -> Result<Welford, CodecError> {
    if fields.len() != 5 {
        return Err(malformed("hist line needs 5 fields"));
    }
    Ok(Welford::from_raw_parts(
        parse_u64(fields[0], "hist count")?,
        parse_f64(fields[1], "hist mean")?,
        parse_f64(fields[2], "hist m2")?,
        parse_f64(fields[3], "hist min")?,
        parse_f64(fields[4], "hist max")?,
    ))
}

/// Decodes a telemetry block from its lines (no trailing-newline
/// tokens; split the block on `\n` first). The slice must start with
/// the `telemetry <mode>` header and contain the complete block in
/// [`encode`]'s order.
///
/// # Errors
///
/// [`CodecError::Malformed`] on any deviation from the grammar.
pub fn decode(lines: &[&str]) -> Result<Telemetry, CodecError> {
    let mut it = lines.iter();
    let header = it.next().ok_or_else(|| malformed("empty block"))?;
    let mode_label = header
        .strip_prefix("telemetry ")
        .ok_or_else(|| malformed(format!("bad header {header:?}")))?;
    let mode = match mode_label {
        "summary" => TraceMode::Summary,
        "events" => TraceMode::Events,
        other => return Err(malformed(format!("unknown trace mode {other:?}"))),
    };

    let mut summary = StallSummary::new();
    let mut next_summary_line = |want: &str| -> Result<Vec<&str>, CodecError> {
        let line = it
            .next()
            .ok_or_else(|| malformed(format!("missing {want} line")))?;
        let rest = line
            .strip_prefix("tsum ")
            .ok_or_else(|| malformed(format!("expected tsum {want}, got {line:?}")))?;
        let toks: Vec<&str> = rest.split(' ').collect();
        if toks.first() != Some(&want) {
            return Err(malformed(format!("expected tsum {want}, got {line:?}")));
        }
        Ok(toks[1..].to_vec())
    };

    let toks = next_summary_line("iterations")?;
    if toks.len() != 1 {
        return Err(malformed("iterations line needs 1 field"));
    }
    summary.iterations = parse_u64(toks[0], "iterations")?;

    for src in Source::ALL {
        let toks = next_summary_line("source")?;
        if toks.len() != 4 {
            return Err(malformed("source line needs 4 fields"));
        }
        if toks[0] != src.label() {
            return Err(malformed(format!(
                "source lines out of order: expected {}, got {}",
                src.label(),
                toks[0]
            )));
        }
        let tot = &mut summary.per_source[src.index()];
        tot.iterations = parse_u64(toks[1], "source iterations")?;
        tot.cycles = parse_f64(toks[2], "source cycles")?;
        tot.uops = parse_u64(toks[3], "source uops")?;
    }

    for name in ["iteration_cycles", "lcp_stall", "switch_stall"] {
        let toks = next_summary_line("hist")?;
        if toks.first() != Some(&name) {
            return Err(malformed(format!(
                "hist lines out of order: expected {name}"
            )));
        }
        let hist = parse_hist(&toks[1..])?;
        match name {
            "iteration_cycles" => summary.iteration_cycles = hist,
            "lcp_stall" => summary.lcp_stall = hist,
            _ => summary.switch_stall = hist,
        }
    }

    let toks = next_summary_line("unlocks")?;
    if toks.len() != 4 {
        return Err(malformed("unlocks line needs 4 fields"));
    }
    for (slot, tok) in summary.lsd_unlocks.iter_mut().zip(&toks) {
        *slot = parse_u64(tok, "unlock count")?;
    }

    let toks = next_summary_line("counters")?;
    if toks.len() != 10 {
        return Err(malformed("counters line needs 10 fields"));
    }
    summary.lsd_locks = parse_u64(toks[0], "lsd_locks")?;
    summary.lsd_flushes = parse_u64(toks[1], "lsd_flushes")?;
    summary.dsb_evictions = parse_u64(toks[2], "dsb_evictions")?;
    summary.l1i_misses = parse_u64(toks[3], "l1i_misses")?;
    summary.channel_measures = parse_u64(toks[4], "channel_measures")?;
    summary.calibrations = parse_u64(toks[5], "calibrations")?;
    summary.failed_calibrations = parse_u64(toks[6], "failed_calibrations")?;
    summary.bits = parse_u64(toks[7], "bits")?;
    summary.bit_errors = parse_u64(toks[8], "bit_errors")?;
    summary.resamples = parse_u64(toks[9], "resamples")?;

    let mut events = Vec::new();
    let rest: Vec<&str> = it.copied().collect();
    let mut rest_it = rest.iter().peekable();
    if let Some(line) = rest_it.peek() {
        if let Some(cal) = line.strip_prefix("tsum calibration ") {
            let toks: Vec<&str> = cal.split(' ').collect();
            if toks.len() != 4 {
                return Err(malformed("calibration line needs 4 fields"));
            }
            summary.last_calibration = Some([
                parse_f64(toks[0], "calibration zero_mean")?,
                parse_f64(toks[1], "calibration one_mean")?,
                parse_f64(toks[2], "calibration threshold")?,
                parse_f64(toks[3], "calibration separation")?,
            ]);
            rest_it.next();
        }
    }
    for line in rest_it {
        let rest = line
            .strip_prefix("tev ")
            .or_else(|| (*line == "tev").then_some(""))
            .ok_or_else(|| malformed(format!("expected tev line, got {line:?}")))?;
        if mode != TraceMode::Events {
            return Err(malformed("event lines in a summary-mode block"));
        }
        events.push(decode_event(rest)?);
    }
    Ok(Telemetry {
        mode,
        summary,
        events,
    })
}

fn decode_event(rest: &str) -> Result<TraceEvent, CodecError> {
    let toks: Vec<&str> = rest.split(' ').collect();
    let (kind, f) = toks
        .split_first()
        .ok_or_else(|| malformed("empty event line"))?;
    let arity = |n: usize| -> Result<(), CodecError> {
        if f.len() == n {
            Ok(())
        } else {
            Err(malformed(format!(
                "event {kind} needs {n} fields, got {}",
                f.len()
            )))
        }
    };
    Ok(match *kind {
        "iteration" => {
            arity(13)?;
            TraceEvent::Iteration {
                thread: parse_u8(f[0], "thread")?,
                source: parse_source(f[1])?,
                weight: parse_u64(f[2], "weight")?,
                cycles: parse_f64(f[3], "cycles")?,
                lsd_uops: parse_u64(f[4], "lsd_uops")?,
                dsb_uops: parse_u64(f[5], "dsb_uops")?,
                mite_uops: parse_u64(f[6], "mite_uops")?,
                lcp_stall_cycles: parse_f64(f[7], "lcp_stall_cycles")?,
                switch_penalty_cycles: parse_f64(f[8], "switch_penalty_cycles")?,
                dsb_to_mite_switches: parse_u64(f[9], "dsb_to_mite_switches")?,
                dsb_evictions: parse_u64(f[10], "dsb_evictions")?,
                lsd_flushes: parse_u64(f[11], "lsd_flushes")?,
                l1i_misses: parse_u64(f[12], "l1i_misses")?,
            }
        }
        "source_switch" => {
            arity(4)?;
            TraceEvent::SourceSwitch {
                thread: parse_u8(f[0], "thread")?,
                from: parse_source(f[1])?,
                to: parse_source(f[2])?,
                penalty_cycles: parse_f64(f[3], "penalty_cycles")?,
            }
        }
        "lsd_lock" => {
            arity(3)?;
            TraceEvent::LsdLock {
                thread: parse_u8(f[0], "thread")?,
                uops: parse_u32(f[1], "uops")?,
                lines: parse_u8(f[2], "lines")?,
            }
        }
        "lsd_unlock" => {
            arity(2)?;
            TraceEvent::LsdUnlock {
                thread: parse_u8(f[0], "thread")?,
                reason: parse_reason(f[1])?,
            }
        }
        "lsd_flush_penalty" => {
            arity(2)?;
            TraceEvent::LsdFlushPenalty {
                thread: parse_u8(f[0], "thread")?,
                cycles: parse_f64(f[1], "cycles")?,
            }
        }
        "lcp_stall" => {
            arity(2)?;
            TraceEvent::LcpStall {
                thread: parse_u8(f[0], "thread")?,
                stall_cycles: parse_f64(f[1], "stall_cycles")?,
            }
        }
        "calibration" => {
            arity(4)?;
            TraceEvent::Calibration {
                zero_mean: parse_f64(f[0], "zero_mean")?,
                one_mean: parse_f64(f[1], "one_mean")?,
                threshold: parse_f64(f[2], "threshold")?,
                separation: parse_f64(f[3], "separation")?,
            }
        }
        "calibration_failed" => {
            arity(0)?;
            TraceEvent::CalibrationFailed
        }
        "channel_measure" => {
            arity(2)?;
            TraceEvent::ChannelMeasure {
                sent: parse_bool(f[0], "sent")?,
                value: parse_f64(f[1], "value")?,
            }
        }
        "bit_decoded" => {
            arity(5)?;
            TraceEvent::BitDecoded {
                index: parse_u64(f[0], "index")?,
                sent: parse_bool(f[1], "sent")?,
                received: parse_bool(f[2], "received")?,
                value: parse_f64(f[3], "value")?,
                resamples: parse_u32(f[4], "resamples")?,
            }
        }
        "session_start" => {
            arity(1)?;
            TraceEvent::SessionStart {
                bits: parse_u64(f[0], "bits")?,
            }
        }
        "session_end" => {
            arity(2)?;
            TraceEvent::SessionEnd {
                bits: parse_u64(f[0], "bits")?,
                errors: parse_u64(f[1], "errors")?,
            }
        }
        other => return Err(malformed(format!("unknown event kind {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::TraceHook;

    fn full_summary() -> StallSummary {
        let mut s = StallSummary::new();
        for e in &all_events() {
            s.fold(e);
        }
        s
    }

    fn all_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::SessionStart { bits: 2 },
            TraceEvent::Iteration {
                thread: 1,
                source: Source::Dsb,
                weight: 3,
                cycles: 12.75,
                lsd_uops: 4,
                dsb_uops: 10,
                mite_uops: 2,
                lcp_stall_cycles: 1.5,
                switch_penalty_cycles: 8.0,
                dsb_to_mite_switches: 1,
                dsb_evictions: 2,
                lsd_flushes: 1,
                l1i_misses: 1,
            },
            TraceEvent::SourceSwitch {
                thread: 0,
                from: Source::Dsb,
                to: Source::Mite,
                penalty_cycles: 8.0,
            },
            TraceEvent::LsdLock {
                thread: 0,
                uops: 48,
                lines: 6,
            },
            TraceEvent::LsdUnlock {
                thread: 0,
                reason: UnlockReason::SiblingCollapse,
            },
            TraceEvent::LsdFlushPenalty {
                thread: 0,
                cycles: 6.0,
            },
            TraceEvent::LcpStall {
                thread: 1,
                stall_cycles: 1.5,
            },
            TraceEvent::Calibration {
                zero_mean: 2295.0,
                one_mean: 2897.25,
                threshold: 2596.125,
                separation: 602.25,
            },
            TraceEvent::CalibrationFailed,
            TraceEvent::ChannelMeasure {
                sent: true,
                value: 2900.5,
            },
            TraceEvent::BitDecoded {
                index: 0,
                sent: true,
                received: false,
                value: 2300.0,
                resamples: 2,
            },
            TraceEvent::SessionEnd { bits: 2, errors: 1 },
        ]
    }

    #[test]
    fn summary_mode_round_trips_exactly() {
        let t = Telemetry {
            mode: TraceMode::Summary,
            summary: full_summary(),
            events: Vec::new(),
        };
        let block = encode(&t);
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(decode(&lines).unwrap(), t);
        // And the encoding itself is deterministic.
        assert_eq!(block, encode(&t));
    }

    #[test]
    fn events_mode_round_trips_every_variant() {
        let t = Telemetry {
            mode: TraceMode::Events,
            summary: full_summary(),
            events: all_events(),
        };
        let lines_owned = encode(&t);
        let lines: Vec<&str> = lines_owned.lines().collect();
        assert_eq!(decode(&lines).unwrap(), t);
    }

    #[test]
    fn exotic_floats_survive() {
        let mut s = StallSummary::new();
        s.fold(&TraceEvent::LcpStall {
            thread: 0,
            stall_cycles: -0.0,
        });
        s.fold(&TraceEvent::Calibration {
            zero_mean: f64::NAN,
            one_mean: f64::INFINITY,
            threshold: f64::NEG_INFINITY,
            separation: 1e-310, // subnormal
        });
        let t = Telemetry {
            mode: TraceMode::Summary,
            summary: s,
            events: Vec::new(),
        };
        let block = encode(&t);
        let lines: Vec<&str> = block.lines().collect();
        let back = decode(&lines).unwrap();
        let [zero, one, thr, sep] = back.summary.last_calibration.unwrap();
        assert!(zero.is_nan());
        assert_eq!(one, f64::INFINITY);
        assert_eq!(thr, f64::NEG_INFINITY);
        assert_eq!(sep.to_bits(), 1e-310f64.to_bits());
        // The empty-histogram ±inf extrema survive too.
        assert_eq!(back.summary.iteration_cycles.min(), f64::INFINITY);
        assert_eq!(back.summary.iteration_cycles.max(), f64::NEG_INFINITY);
        // -0.0 is distinguishable from 0.0 only through the bits.
        assert_eq!(back.summary.lcp_stall.min().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn welford_raw_parts_round_trip() {
        let mut w = Welford::new();
        for x in [2.0, 4.5, -1.25, 1e9] {
            w.push(x);
        }
        let (c, mean, m2, min, max) = w.raw_parts();
        assert_eq!(Welford::from_raw_parts(c, mean, m2, min, max), w);
    }

    #[test]
    fn strict_errors_not_defaults() {
        let t = Telemetry {
            mode: TraceMode::Summary,
            summary: full_summary(),
            events: Vec::new(),
        };
        let block = encode(&t);
        let lines: Vec<&str> = block.lines().collect();

        // Unknown mode.
        let mut bad = lines.clone();
        bad[0] = "telemetry verbose";
        assert!(decode(&bad).is_err());
        // Missing (required) line — cut inside the fixed summary block.
        assert!(decode(&lines[..4]).is_err());
        // Reordered summary lines.
        let mut bad = lines.clone();
        bad.swap(2, 3);
        assert!(decode(&bad).is_err());
        // Event lines in a summary block.
        let mut bad = lines.clone();
        bad.push("tev calibration_failed");
        assert!(decode(&bad).is_err());
        // Unknown event kind.
        let t_ev = Telemetry {
            mode: TraceMode::Events,
            summary: StallSummary::new(),
            events: vec![TraceEvent::CalibrationFailed],
        };
        let block = encode(&t_ev);
        let mut lines: Vec<&str> = block.lines().collect();
        let n = lines.len();
        lines[n - 1] = "tev warp_drive_engaged";
        let err = decode(&lines).unwrap_err();
        assert!(err.to_string().contains("unknown event kind"));
    }

    #[test]
    fn hook_telemetry_round_trips_through_codec() {
        let mut hook = TraceHook::new(TraceMode::Events);
        for e in all_events() {
            hook.emit(|| e.clone());
        }
        let t = hook.into_telemetry().expect("hook was on");
        let block = encode(&t);
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(decode(&lines).unwrap(), t);
    }
}

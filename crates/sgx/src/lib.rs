//! SGX enclave execution contexts for the frontend attacks (paper §VIII).
//!
//! The paper's SGX attacks need only two properties of SGX, both modeled
//! here:
//!
//! * **Expensive, measurable transitions.** `EENTER`/`EEXIT` cost thousands
//!   of cycles and flush the instruction TLB; the non-MT SGX attack performs
//!   exactly *one* entry and exit per transmitted bit and times the whole
//!   call from outside (§VIII-2).
//! * **No frontend isolation.** The enclave shares the MITE/DSB/LSD with
//!   non-enclave code on the same core, so a sender inside the enclave can
//!   modulate frontend paths that a receiver outside (same thread, non-MT)
//!   or on the sibling thread (MT) observes.
//!
//! # Examples
//!
//! ```
//! use leaky_cpu::{Core, ProcessorModel};
//! use leaky_frontend::ThreadId;
//! use leaky_isa::{same_set_chain, Alignment, DsbSet};
//! use leaky_sgx::Enclave;
//!
//! let mut core = Core::new(ProcessorModel::xeon_e2174g(), 7);
//! let enclave = Enclave::default();
//! let chain = same_set_chain(0x0041_8000, DsbSet::new(0), 6, Alignment::Aligned);
//!
//! let t0 = core.rdtscp(ThreadId::T0);
//! enclave.call(&mut core, ThreadId::T0, |core, tid| {
//!     core.run_loop(tid, &chain, 100);
//! });
//! let t1 = core.rdtscp(ThreadId::T0);
//! assert!(t1 - t0 > Enclave::default().round_trip_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use leaky_cpu::Core;
use leaky_frontend::ThreadId;

/// Transition-cost configuration for a simulated enclave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnclaveConfig {
    /// Cycles consumed by `EENTER` (ring transition, TLB work, checks).
    pub eenter_cycles: f64,
    /// Cycles consumed by `EEXIT`.
    pub eexit_cycles: f64,
    /// Whether transitions flush the calling thread's frontend state
    /// (iTLB flush forces instruction refetch; we conservatively flush the
    /// thread's DSB lines and LSD lock).
    pub flush_frontend_on_transition: bool,
}

impl EnclaveConfig {
    /// Costs in line with measured SGX1 transition overheads
    /// (~7 k + ~4 k cycles).
    pub const fn sgx1() -> Self {
        EnclaveConfig {
            eenter_cycles: 7_000.0,
            eexit_cycles: 4_000.0,
            flush_frontend_on_transition: true,
        }
    }
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        Self::sgx1()
    }
}

/// A simulated SGX enclave: a context whose body runs with transition costs
/// and frontend flushes applied around it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Enclave {
    config: EnclaveConfig,
}

impl Enclave {
    /// Creates an enclave with explicit transition costs.
    pub fn new(config: EnclaveConfig) -> Self {
        Enclave { config }
    }

    /// The transition-cost configuration.
    pub fn config(&self) -> EnclaveConfig {
        self.config
    }

    /// Total EENTER + EEXIT cycles for one call.
    pub fn round_trip_cycles(&self) -> f64 {
        self.config.eenter_cycles + self.config.eexit_cycles
    }

    /// Executes `body` inside the enclave on `tid`: pays `EENTER`, flushes
    /// frontend state if configured, runs the body, flushes again and pays
    /// `EEXIT`. Returns the body's result.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::NotSupported`] if the core's processor model has
    /// no SGX support (the Gold 6226 in Table I).
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn try_call<R>(
        &self,
        core: &mut Core,
        tid: ThreadId,
        body: impl FnOnce(&mut Core, ThreadId) -> R,
    ) -> Result<R, SgxError> {
        if !core.model().sgx {
            return Err(SgxError::NotSupported {
                model: core.model().name,
            });
        }
        core.idle(tid, self.config.eenter_cycles);
        if self.config.flush_frontend_on_transition {
            core.frontend_mut().flush_thread_state(tid);
        }
        let result = body(core, tid);
        if self.config.flush_frontend_on_transition {
            core.frontend_mut().flush_thread_state(tid);
        }
        core.idle(tid, self.config.eexit_cycles);
        Ok(result)
    }

    /// Like [`Enclave::try_call`] but panics on unsupported hardware —
    /// convenient for experiment drivers that already checked
    /// [`leaky_cpu::ProcessorModel::sgx`].
    ///
    /// # Panics
    ///
    /// Panics if the processor model does not support SGX.
    pub fn call<R>(
        &self,
        core: &mut Core,
        tid: ThreadId,
        body: impl FnOnce(&mut Core, ThreadId) -> R,
    ) -> R {
        self.try_call(core, tid, body)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Errors from enclave operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgxError {
    /// The processor model has no SGX support.
    NotSupported {
        /// The offending model name.
        model: &'static str,
    },
}

impl std::fmt::Display for SgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxError::NotSupported { model } => {
                write!(f, "processor {model} does not support SGX")
            }
        }
    }
}

impl std::error::Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_cpu::ProcessorModel;
    use leaky_isa::{same_set_chain, Alignment, BlockChain, DsbSet};

    fn chain() -> BlockChain {
        same_set_chain(0x0041_8000, DsbSet::new(0), 6, Alignment::Aligned)
    }

    #[test]
    fn call_charges_transition_overhead() {
        let mut core = Core::new(ProcessorModel::xeon_e2288g(), 1);
        let enclave = Enclave::default();
        let before = core.clock(ThreadId::T0);
        enclave.call(&mut core, ThreadId::T0, |_, _| {});
        let elapsed = core.clock(ThreadId::T0) - before;
        assert!((elapsed - enclave.round_trip_cycles()).abs() < 1e-9);
    }

    #[test]
    fn transition_flushes_frontend_state() {
        let mut core = Core::new(ProcessorModel::xeon_e2288g(), 1);
        let c = chain();
        core.run_loop(ThreadId::T0, &c, 3); // warm outside
        Enclave::default().call(&mut core, ThreadId::T0, |core, tid| {
            // Inside: the outside-warmed lines are gone; first iteration
            // must re-decode through the MITE.
            let run = core.run_once(tid, &c);
            assert!(run.report.mite_uops > 0);
        });
    }

    #[test]
    fn body_result_is_returned() {
        let mut core = Core::new(ProcessorModel::xeon_e2174g(), 1);
        let out = Enclave::default().call(&mut core, ThreadId::T0, |_, _| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn non_sgx_machine_is_rejected() {
        let mut core = Core::new(ProcessorModel::gold_6226(), 1);
        let err = Enclave::default()
            .try_call(&mut core, ThreadId::T0, |_, _| ())
            .unwrap_err();
        assert_eq!(err, SgxError::NotSupported { model: "Gold 6226" });
        assert!(err.to_string().contains("Gold 6226"));
    }

    #[test]
    fn no_flush_config_preserves_state() {
        let mut core = Core::new(ProcessorModel::xeon_e2288g(), 1);
        let c = chain();
        core.run_loop(ThreadId::T0, &c, 3);
        let enclave = Enclave::new(EnclaveConfig {
            flush_frontend_on_transition: false,
            ..EnclaveConfig::sgx1()
        });
        enclave.call(&mut core, ThreadId::T0, |core, tid| {
            let run = core.run_once(tid, &c);
            assert_eq!(run.report.mite_uops, 0, "state must survive entry");
        });
    }
}

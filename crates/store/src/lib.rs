//! `leaky_store` — on-disk content-addressed result store for sweeps.
//!
//! Every `leaky_exp` cell carries a deterministic content key
//! (`exp/axis=value/...`) and a scheduling-independent seed, so a cell's
//! measurement is a pure function of `(content key, code fingerprint)`.
//! This crate persists those measurements (DESIGN.md §11), which is what
//! makes sweeps crash-safe:
//!
//! * interrupted sweeps **resume**: a rerun recomputes only the cells the
//!   store does not hold;
//! * code changes **invalidate** selectively: entries written under a
//!   different fingerprint are stale and recomputed, never served;
//! * on-disk damage **quarantines**: an entry that fails structural or
//!   checksum validation is moved to `quarantine/` (never deleted, never
//!   trusted) and its cell is recomputed.
//!
//! Writes are atomic (temp file + rename on the same filesystem), entries
//! are versioned self-describing text ([`entry`]), and metric values are
//! stored as exact IEEE-754 bit patterns so a warm-store rerun renders
//! byte-identical output to a cold run. Nothing in an entry depends on
//! wall-clock time — the store is itself deterministic, and the crate is
//! covered by the workspace determinism lints.
//!
//! The layout follows probe-rs's data-driven store discipline: flat,
//! human-inspectable files under a versioned root, no database.
//!
//! ```text
//! <root>/
//!   format          the store format version marker
//!   entries/        one .entry file per cell, named by FNV-1a(key)
//!   quarantine/     corrupt entries, moved aside for post-mortems
//!   tmp/            staging area for atomic writes
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod entry;
pub mod store;

pub use entry::{
    Entry, EntryError, StoredMetric, StoredOutcome, StoredProvenance, FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
};
pub use store::{Lookup, ResultStore, StoreError, StoreStats};

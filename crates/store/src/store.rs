//! The on-disk store: layout, atomic writes, lookup, and quarantine.

use crate::entry::{Entry, StoredOutcome, FORMAT_VERSION, LEGACY_FORMAT_VERSION};
use leaky_uarch::Fnv1a;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What a [`ResultStore::get`] found.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A valid entry under the requested fingerprint.
    Hit(StoredOutcome),
    /// No entry for this key.
    Miss,
    /// An entry exists but was computed under a different code
    /// fingerprint — stale, recompute (the next put overwrites it).
    Stale,
    /// The entry failed validation and was moved to `quarantine/`;
    /// recompute.
    Quarantined,
}

/// Counters one sweep accumulates against a store. `hits` come from
/// resume lookups; everything else is a recompute reason or a write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Cells served from the store without recomputation.
    pub hits: usize,
    /// Cells with no stored entry.
    pub misses: usize,
    /// Cells whose entry carried a different code fingerprint.
    pub stale: usize,
    /// Cells whose entry was corrupt and got quarantined.
    pub quarantined: usize,
    /// Entries written (or overwritten) by this sweep.
    pub writes: usize,
}

/// Why a store operation failed. Corrupt *entries* are not errors — they
/// quarantine and report [`Lookup::Quarantined`]; this type is for real
/// I/O failures and an incompatible store root.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed at the given path.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The store root was written by an incompatible format version.
    FormatMismatch {
        /// Version string found in the root marker file.
        found: String,
    },
    /// A value could not be encoded into the entry format (see
    /// [`crate::entry::EntryError::Unencodable`]).
    Unencodable {
        /// Which field refused to encode.
        what: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            StoreError::FormatMismatch { found } => write!(
                f,
                "store format {found:?} is not the supported {FORMAT_VERSION:?}"
            ),
            StoreError::Unencodable { what } => write!(f, "unencodable entry: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, source: io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// A content-addressed result store rooted at one directory.
///
/// Entries are keyed by the cell content key; the file name is the
/// FNV-1a hash of the key (keys contain `/` and `=`, so they are not
/// usable as file names directly), and the key is stored *inside* the
/// entry. In the astronomically unlikely event of a hash collision the
/// stored key disagrees with the requested one; the lookup reports a
/// miss and the next write overwrites — correctness degrades to a
/// recompute, never to serving the wrong cell's result.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if absent) a store rooted at `root`.
    ///
    /// Creates the `entries/`, `quarantine/` and `tmp/` subdirectories
    /// and the `format` version marker; refuses a root whose marker
    /// names a different format version.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultStore, StoreError> {
        let root = root.into();
        for dir in [
            root.clone(),
            root.join("entries"),
            root.join("quarantine"),
            root.join("tmp"),
        ] {
            fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        let marker = root.join("format");
        match fs::read_to_string(&marker) {
            Ok(found) => {
                if found.trim_end() == LEGACY_FORMAT_VERSION {
                    // v1 stores migrate in place: entries decode (the
                    // telemetry block is the only v2 addition) and are
                    // stale by fingerprint anyway, so advancing the
                    // marker is the whole migration.
                    fs::write(&marker, format!("{FORMAT_VERSION}\n"))
                        .map_err(|e| io_err(&marker, e))?;
                } else if found.trim_end() != FORMAT_VERSION {
                    return Err(StoreError::FormatMismatch {
                        found: found.trim_end().to_string(),
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::write(&marker, format!("{FORMAT_VERSION}\n"))
                    .map_err(|e| io_err(&marker, e))?;
            }
            Err(e) => return Err(io_err(&marker, e)),
        }
        Ok(ResultStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file name an entry for `key` lives under.
    fn entry_name(key: &str) -> String {
        let mut h = Fnv1a::new();
        h.write_bytes(key.as_bytes());
        format!("{:016x}.entry", h.finish())
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join("entries").join(Self::entry_name(key))
    }

    /// Looks up `key` under `fingerprint`.
    ///
    /// A corrupt entry is moved to `quarantine/` (suffixed `.1`, `.2`, …
    /// if earlier quarantines of the same file exist) and reported as
    /// [`Lookup::Quarantined`]; the caller recomputes and overwrites.
    pub fn get(&self, key: &str, fingerprint: u64) -> Result<Lookup, StoreError> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Lookup::Miss),
            // Unreadable bytes (not-found aside) are corruption too:
            // quarantine the file rather than abort the sweep.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                self.quarantine(&path)?;
                return Ok(Lookup::Quarantined);
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        match Entry::decode(&text) {
            Ok(entry) => {
                if entry.key != key {
                    // Hash collision or a hand-moved file: structurally
                    // valid, just not this cell's entry. Treat as a miss;
                    // the next put overwrites.
                    Ok(Lookup::Miss)
                } else if entry.fingerprint != fingerprint {
                    Ok(Lookup::Stale)
                } else {
                    Ok(Lookup::Hit(entry.outcome))
                }
            }
            Err(_) => {
                self.quarantine(&path)?;
                Ok(Lookup::Quarantined)
            }
        }
    }

    /// Persists `outcome` for `key` under `fingerprint`, atomically:
    /// the entry is staged in `tmp/` and renamed into place, so readers
    /// never observe a half-written entry (a crash mid-write leaves only
    /// debris in `tmp/`).
    pub fn put(
        &self,
        key: &str,
        fingerprint: u64,
        outcome: &StoredOutcome,
    ) -> Result<(), StoreError> {
        let entry = Entry {
            key: key.to_string(),
            fingerprint,
            outcome: outcome.clone(),
        };
        let text = entry.encode().map_err(|e| StoreError::Unencodable {
            what: e.to_string(),
        })?;
        let name = Self::entry_name(key);
        let staged = self.root.join("tmp").join(&name);
        fs::write(&staged, text).map_err(|e| io_err(&staged, e))?;
        let target = self.root.join("entries").join(&name);
        fs::rename(&staged, &target).map_err(|e| io_err(&target, e))?;
        Ok(())
    }

    /// Moves a bad entry file into `quarantine/`, never overwriting an
    /// earlier quarantined generation of the same file.
    fn quarantine(&self, path: &Path) -> Result<(), StoreError> {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed.entry".to_string());
        let dir = self.root.join("quarantine");
        let mut target = dir.join(&name);
        let mut generation = 0u32;
        while target.exists() && generation < 1000 {
            generation += 1;
            target = dir.join(format!("{name}.{generation}"));
        }
        fs::rename(path, &target).map_err(|e| io_err(&target, e))?;
        Ok(())
    }

    /// Number of entries currently stored.
    pub fn entry_count(&self) -> Result<usize, StoreError> {
        self.count_dir("entries")
    }

    /// Number of quarantined files.
    pub fn quarantine_count(&self) -> Result<usize, StoreError> {
        self.count_dir("quarantine")
    }

    fn count_dir(&self, name: &str) -> Result<usize, StoreError> {
        let dir = self.root.join(name);
        let mut n = 0;
        for item in fs::read_dir(&dir).map_err(|e| io_err(&dir, e))? {
            item.map_err(|e| io_err(&dir, e))?;
            n += 1;
        }
        Ok(n)
    }

    /// Deterministically damages the stored entry for `key` (fault
    /// harness and CI corruption drills). Returns whether an entry
    /// existed to corrupt.
    pub fn corrupt_entry(&self, key: &str) -> Result<bool, StoreError> {
        let path = self.entry_path(key);
        if !path.exists() {
            return Ok(false);
        }
        fs::write(&path, "corrupted by fault injection\n").map_err(|e| io_err(&path, e))?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::StoredMetric;

    /// A unique, self-cleaning scratch directory per test.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir =
                std::env::temp_dir().join(format!("leaky_store_test_{}_{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn measured(v: f64) -> StoredOutcome {
        StoredOutcome::Measured {
            metrics: vec![StoredMetric {
                name: "m".to_string(),
                value: v,
            }],
            provenance: None,
            telemetry: None,
        }
    }

    #[test]
    fn put_get_round_trip() {
        let scratch = Scratch::new("round_trip");
        let store = ResultStore::open(&scratch.0).expect("opens");
        assert_eq!(store.get("a/b=1", 7).expect("get"), Lookup::Miss);
        store.put("a/b=1", 7, &measured(0.25)).expect("put");
        assert_eq!(
            store.get("a/b=1", 7).expect("get"),
            Lookup::Hit(measured(0.25))
        );
        assert_eq!(store.entry_count().expect("count"), 1);
        // Reopening sees the same data.
        let reopened = ResultStore::open(&scratch.0).expect("reopens");
        assert_eq!(
            reopened.get("a/b=1", 7).expect("get"),
            Lookup::Hit(measured(0.25))
        );
    }

    #[test]
    fn fingerprint_mismatch_is_stale_and_overwritable() {
        let scratch = Scratch::new("stale");
        let store = ResultStore::open(&scratch.0).expect("opens");
        store.put("k", 1, &measured(1.0)).expect("put");
        assert_eq!(store.get("k", 2).expect("get"), Lookup::Stale);
        store.put("k", 2, &measured(2.0)).expect("overwrite");
        assert_eq!(store.get("k", 2).expect("get"), Lookup::Hit(measured(2.0)));
        assert_eq!(store.get("k", 1).expect("get"), Lookup::Stale);
        assert_eq!(store.entry_count().expect("count"), 1, "overwrote in place");
    }

    #[test]
    fn corrupt_entry_quarantines_then_recovers() {
        let scratch = Scratch::new("quarantine");
        let store = ResultStore::open(&scratch.0).expect("opens");
        store.put("k", 1, &measured(1.0)).expect("put");
        assert!(store.corrupt_entry("k").expect("corrupts"));
        assert_eq!(store.get("k", 1).expect("get"), Lookup::Quarantined);
        assert_eq!(store.quarantine_count().expect("count"), 1);
        assert_eq!(store.entry_count().expect("count"), 0, "moved, not copied");
        // The slot is free again: recompute, rewrite, hit.
        assert_eq!(store.get("k", 1).expect("get"), Lookup::Miss);
        store.put("k", 1, &measured(1.0)).expect("rewrite");
        assert_eq!(store.get("k", 1).expect("get"), Lookup::Hit(measured(1.0)));
        // A second corruption quarantines under a generation suffix.
        assert!(store.corrupt_entry("k").expect("corrupts again"));
        assert_eq!(store.get("k", 1).expect("get"), Lookup::Quarantined);
        assert_eq!(store.quarantine_count().expect("count"), 2);
    }

    #[test]
    fn unsupported_outcome_caches() {
        let scratch = Scratch::new("unsupported");
        let store = ResultStore::open(&scratch.0).expect("opens");
        store
            .put("mt/machine=E-2288G", 3, &StoredOutcome::Unsupported)
            .expect("put");
        assert_eq!(
            store.get("mt/machine=E-2288G", 3).expect("get"),
            Lookup::Hit(StoredOutcome::Unsupported)
        );
    }

    #[test]
    fn format_marker_guards_the_root() {
        let scratch = Scratch::new("format");
        let _ = ResultStore::open(&scratch.0).expect("opens");
        fs::write(scratch.0.join("format"), "leaky-store/v0\n").expect("rewrite marker");
        match ResultStore::open(&scratch.0) {
            Err(StoreError::FormatMismatch { found }) => assert_eq!(found, "leaky-store/v0"),
            other => panic!("expected FormatMismatch, got {other:?}"),
        }
    }

    #[test]
    fn v1_marker_migrates_to_v2_on_open() {
        let scratch = Scratch::new("marker_migration");
        let _ = ResultStore::open(&scratch.0).expect("opens");
        fs::write(scratch.0.join("format"), "leaky-store/v1\n").expect("rewrite marker");
        let store = ResultStore::open(&scratch.0).expect("v1 roots open");
        assert_eq!(
            fs::read_to_string(scratch.0.join("format")).expect("marker"),
            format!("{FORMAT_VERSION}\n"),
            "marker advanced to v2"
        );
        // The migrated store works end-to-end.
        store.put("k", 1, &measured(1.0)).expect("put");
        assert_eq!(store.get("k", 1).expect("get"), Lookup::Hit(measured(1.0)));
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let scratch = Scratch::new("keys");
        let store = ResultStore::open(&scratch.0).expect("opens");
        for i in 0..32 {
            store
                .put(&format!("grid/i={i}"), 1, &measured(i as f64))
                .expect("put");
        }
        for i in 0..32 {
            assert_eq!(
                store.get(&format!("grid/i={i}"), 1).expect("get"),
                Lookup::Hit(measured(i as f64))
            );
        }
        assert_eq!(store.entry_count().expect("count"), 32);
    }
}

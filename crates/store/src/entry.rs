//! The versioned on-disk entry format (`leaky-store/v2`).
//!
//! An entry is line-oriented, self-describing text:
//!
//! ```text
//! leaky-store/v2
//! key rng_stream_grid/profile=quick/stream=3
//! fingerprint 0x8c19f8b0621cbdb0
//! outcome measured
//! provenance mt-eviction<TAB>skylake<TAB>d=6 q=1
//! metric rate_kbps<TAB>0x40639581062ae148<TAB>156.672
//! telemetry summary
//! tsum iterations 182476
//! ...
//! checksum 0x1f0e9c4b2a3d5e6f
//! ```
//!
//! * the `provenance` line is present only when the measurement carried
//!   channel provenance; `metric` lines repeat, in measurement order;
//! * metric values are the **exact** IEEE-754 bit pattern (the decimal
//!   third field is informational only), so a cached cell renders
//!   byte-identically to a recomputed one;
//! * the optional `telemetry` block (v2) persists the cell's trace via
//!   [`leaky_trace::codec`], floats again as exact bit patterns, so a
//!   resumed `--trace` sweep serves cached cells *with* telemetry;
//! * `checksum` is FNV-1a over every byte that precedes its line. Any
//!   structural deviation — wrong version, missing field, truncation,
//!   trailing bytes, checksum mismatch — decodes to an [`EntryError`],
//!   which the store treats as corruption and quarantines.
//!
//! Legacy `leaky-store/v1` entries (no telemetry block) still decode —
//! migration happens on read, not by rewriting stores — but since the
//! code fingerprint folds in [`FORMAT_VERSION`], every v1 entry is
//! stale by construction and gets recomputed and overwritten in v2 form
//! on the first resumed run.

use leaky_trace::Telemetry;
use leaky_uarch::Fnv1a;
use std::fmt;

/// The on-disk format version this build writes (and reads, alongside
/// the legacy v1).
pub const FORMAT_VERSION: &str = "leaky-store/v2";

/// The previous format version, still accepted by [`Entry::decode`]
/// (its entries simply carry no telemetry).
pub const LEGACY_FORMAT_VERSION: &str = "leaky-store/v1";

/// One persisted metric: name plus exact f64 value.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredMetric {
    /// Metric name (table column / JSON key).
    pub name: String,
    /// Measured value, round-tripped through its bit pattern.
    pub value: f64,
}

/// Persisted channel provenance (owned mirror of the sweep layer's
/// provenance strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredProvenance {
    /// Registry name of the channel that transmitted.
    pub channel: String,
    /// Microarchitecture profile key the channel was built under.
    pub profile: String,
    /// Rendered §V parameter string.
    pub params: String,
}

/// The persistable outcome of one cell. Failed cells are deliberately
/// *not* persistable: a failure must be retried on the next run, never
/// served from cache.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredOutcome {
    /// The cell measured successfully.
    Measured {
        /// Named metric values, in measurement order.
        metrics: Vec<StoredMetric>,
        /// Channel provenance, when the cell ran a covert channel.
        provenance: Option<StoredProvenance>,
        /// The cell's trace, when it was computed under `--trace`
        /// (absent in legacy v1 entries and untraced runs).
        telemetry: Option<Box<Telemetry>>,
    },
    /// The cell is structurally unsupported (e.g. an SMT channel on an
    /// SMT-less machine) — a stable fact worth caching.
    Unsupported,
}

/// A decoded store entry: the cell's identity plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The cell's content key.
    pub key: String,
    /// Code fingerprint the outcome was computed under.
    pub fingerprint: u64,
    /// The persisted outcome.
    pub outcome: StoredOutcome,
}

/// Why an entry failed to decode (all variants mean: quarantine it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// The first line is not the supported format version.
    WrongVersion(String),
    /// A required line is missing or appears out of order.
    MissingField(&'static str),
    /// A line exists but its payload does not parse.
    Malformed(&'static str),
    /// The checksum line disagrees with the bytes above it.
    ChecksumMismatch,
    /// Bytes follow the checksum line (truncation's mirror image).
    TrailingBytes,
    /// A field value contains a byte the line format cannot carry
    /// (newline, or a tab in a tab-delimited position). Raised on
    /// *encode*: such values never occur in real keys or metric names,
    /// and refusing loudly beats writing an entry that cannot decode.
    Unencodable(&'static str),
}

impl fmt::Display for EntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryError::WrongVersion(found) => {
                write!(
                    f,
                    "unsupported entry version {found:?} (want {FORMAT_VERSION})"
                )
            }
            EntryError::MissingField(name) => write!(f, "missing or misplaced field `{name}`"),
            EntryError::Malformed(what) => write!(f, "malformed {what}"),
            EntryError::ChecksumMismatch => write!(f, "checksum mismatch"),
            EntryError::TrailingBytes => write!(f, "bytes after the checksum line"),
            EntryError::Unencodable(what) => {
                write!(f, "{what} contains bytes the entry format cannot carry")
            }
        }
    }
}

impl std::error::Error for EntryError {}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Rejects values that would break the line structure: `\n` anywhere, or
/// `\t` in a tab-delimited (non-final) position.
fn check_field(value: &str, what: &'static str, tabs_forbidden: bool) -> Result<(), EntryError> {
    if value.contains('\n') || (tabs_forbidden && value.contains('\t')) {
        return Err(EntryError::Unencodable(what));
    }
    Ok(())
}

impl Entry {
    /// Encodes the entry into its on-disk text form.
    pub fn encode(&self) -> Result<String, EntryError> {
        check_field(&self.key, "key", true)?;
        let mut body = String::new();
        body.push_str(FORMAT_VERSION);
        body.push('\n');
        body.push_str("key ");
        body.push_str(&self.key);
        body.push('\n');
        body.push_str(&format!("fingerprint 0x{:016x}\n", self.fingerprint));
        match &self.outcome {
            StoredOutcome::Unsupported => body.push_str("outcome unsupported\n"),
            StoredOutcome::Measured {
                metrics,
                provenance,
                telemetry,
            } => {
                body.push_str("outcome measured\n");
                if let Some(p) = provenance {
                    check_field(&p.channel, "provenance channel", true)?;
                    check_field(&p.profile, "provenance profile", true)?;
                    check_field(&p.params, "provenance params", false)?;
                    body.push_str(&format!(
                        "provenance {}\t{}\t{}\n",
                        p.channel, p.profile, p.params
                    ));
                }
                for m in metrics {
                    check_field(&m.name, "metric name", true)?;
                    body.push_str(&format!(
                        "metric {}\t0x{:016x}\t{}\n",
                        m.name,
                        m.value.to_bits(),
                        m.value
                    ));
                }
                if let Some(t) = telemetry {
                    body.push_str(&leaky_trace::codec::encode(t));
                }
            }
        }
        let checksum = fnv64(body.as_bytes());
        body.push_str(&format!("checksum 0x{checksum:016x}\n"));
        Ok(body)
    }

    /// Decodes on-disk text back into an entry, validating structure and
    /// checksum. Every failure mode maps to an [`EntryError`]; the store
    /// quarantines on any of them.
    pub fn decode(text: &str) -> Result<Entry, EntryError> {
        // Locate the checksum line: it must be the final line, newline-
        // terminated, with nothing after it.
        let trimmed = text
            .strip_suffix('\n')
            .ok_or(EntryError::Malformed("final newline"))?;
        let (body_end, checksum_line) = match trimmed.rfind('\n') {
            Some(pos) => (pos + 1, &trimmed[pos + 1..]),
            None => return Err(EntryError::MissingField("checksum")),
        };
        let claimed = checksum_line
            .strip_prefix("checksum 0x")
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or(EntryError::MissingField("checksum"))?;
        let body = &text[..body_end];
        if fnv64(body.as_bytes()) != claimed {
            return Err(EntryError::ChecksumMismatch);
        }

        let mut lines = body.lines();
        let version = lines.next().ok_or(EntryError::MissingField("version"))?;
        if version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION {
            return Err(EntryError::WrongVersion(version.to_string()));
        }
        let key = lines
            .next()
            .and_then(|l| l.strip_prefix("key "))
            .ok_or(EntryError::MissingField("key"))?
            .to_string();
        let fingerprint = lines
            .next()
            .and_then(|l| l.strip_prefix("fingerprint 0x"))
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or(EntryError::MissingField("fingerprint"))?;
        let outcome_kind = lines
            .next()
            .and_then(|l| l.strip_prefix("outcome "))
            .ok_or(EntryError::MissingField("outcome"))?;

        let outcome = match outcome_kind {
            "unsupported" => {
                if lines.next().is_some() {
                    return Err(EntryError::TrailingBytes);
                }
                StoredOutcome::Unsupported
            }
            "measured" => {
                let mut provenance = None;
                let mut metrics = Vec::new();
                let mut telemetry_lines: Vec<&str> = Vec::new();
                for (i, line) in lines.enumerate() {
                    if !telemetry_lines.is_empty() {
                        // Once the telemetry block opens it runs to the
                        // checksum; its own codec validates the lines.
                        telemetry_lines.push(line);
                    } else if line.starts_with("telemetry ") {
                        if version != FORMAT_VERSION {
                            // v1 never carried telemetry; a block there
                            // is corruption, not an extension.
                            return Err(EntryError::Malformed("telemetry in a v1 entry"));
                        }
                        telemetry_lines.push(line);
                    } else if let Some(rest) = line.strip_prefix("provenance ") {
                        if i != 0 || provenance.is_some() {
                            return Err(EntryError::Malformed("provenance placement"));
                        }
                        let mut parts = rest.splitn(3, '\t');
                        let channel = parts.next().unwrap_or_default().to_string();
                        let profile = parts
                            .next()
                            .ok_or(EntryError::Malformed("provenance line"))?
                            .to_string();
                        let params = parts
                            .next()
                            .ok_or(EntryError::Malformed("provenance line"))?
                            .to_string();
                        provenance = Some(StoredProvenance {
                            channel,
                            profile,
                            params,
                        });
                    } else if let Some(rest) = line.strip_prefix("metric ") {
                        let mut parts = rest.splitn(3, '\t');
                        let name = parts.next().unwrap_or_default().to_string();
                        let bits = parts
                            .next()
                            .and_then(|v| v.strip_prefix("0x"))
                            .and_then(|v| u64::from_str_radix(v, 16).ok())
                            .ok_or(EntryError::Malformed("metric value"))?;
                        // The third (decimal) field is informational; its
                        // integrity is still covered by the checksum.
                        if parts.next().is_none() {
                            return Err(EntryError::Malformed("metric line"));
                        }
                        metrics.push(StoredMetric {
                            name,
                            value: f64::from_bits(bits),
                        });
                    } else {
                        return Err(EntryError::Malformed("entry line"));
                    }
                }
                let telemetry = if telemetry_lines.is_empty() {
                    None
                } else {
                    let t = leaky_trace::codec::decode(&telemetry_lines)
                        .map_err(|_| EntryError::Malformed("telemetry block"))?;
                    Some(Box::new(t))
                };
                StoredOutcome::Measured {
                    metrics,
                    provenance,
                    telemetry,
                }
            }
            _ => return Err(EntryError::Malformed("outcome kind")),
        };

        Ok(Entry {
            key,
            fingerprint,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_trace::{StallSummary, TraceEvent, TraceMode};

    fn sample() -> Entry {
        Entry {
            key: "demo/ch=a/d=3".to_string(),
            fingerprint: 0x1234_5678_9abc_def0,
            outcome: StoredOutcome::Measured {
                metrics: vec![
                    StoredMetric {
                        name: "rate_kbps".to_string(),
                        value: 156.672,
                    },
                    StoredMetric {
                        name: "error_rate".to_string(),
                        value: 0.0,
                    },
                ],
                provenance: Some(StoredProvenance {
                    channel: "mt-eviction".to_string(),
                    profile: "skylake".to_string(),
                    params: "d=6 q=1 with spaces".to_string(),
                }),
                telemetry: None,
            },
        }
    }

    fn sample_telemetry() -> Telemetry {
        let mut summary = StallSummary::new();
        let events = vec![
            TraceEvent::Calibration {
                zero_mean: 2295.0,
                one_mean: 2897.25,
                threshold: 2596.125,
                separation: 602.25,
            },
            TraceEvent::BitDecoded {
                index: 0,
                sent: true,
                received: true,
                value: 2900.5,
                resamples: 1,
            },
        ];
        for e in &events {
            summary.fold(e);
        }
        Telemetry {
            mode: TraceMode::Events,
            summary,
            events,
        }
    }

    fn traced_sample() -> Entry {
        let mut entry = sample();
        let StoredOutcome::Measured { telemetry, .. } = &mut entry.outcome else {
            unreachable!()
        };
        *telemetry = Some(Box::new(sample_telemetry()));
        entry
    }

    #[test]
    fn round_trips_exactly() {
        let entry = sample();
        let text = entry.encode().expect("encodable");
        assert_eq!(Entry::decode(&text).expect("decodes"), entry);
    }

    #[test]
    fn telemetry_round_trips_exactly() {
        let entry = traced_sample();
        let text = entry.encode().expect("encodable");
        assert!(text.contains("telemetry events\n"));
        assert_eq!(Entry::decode(&text).expect("decodes"), entry);
    }

    #[test]
    fn legacy_v1_entries_still_decode_without_telemetry() {
        // A v1 entry is a v2 entry minus the telemetry block, under the
        // old version line. Build one by relabeling and re-checksumming.
        let text = sample().encode().expect("encodable");
        let relabeled = text.replace(FORMAT_VERSION, LEGACY_FORMAT_VERSION);
        let body_end = relabeled.rfind("checksum ").expect("checksum line");
        let body = &relabeled[..body_end];
        let v1 = format!("{body}checksum 0x{:016x}\n", fnv64(body.as_bytes()));
        assert_eq!(Entry::decode(&v1).expect("v1 decodes"), sample());

        // ...but a telemetry block inside a v1 body is corruption.
        let traced = traced_sample().encode().expect("encodable");
        let relabeled = traced.replace(FORMAT_VERSION, LEGACY_FORMAT_VERSION);
        let body_end = relabeled.rfind("checksum ").expect("checksum line");
        let body = &relabeled[..body_end];
        let bad = format!("{body}checksum 0x{:016x}\n", fnv64(body.as_bytes()));
        assert_eq!(
            Entry::decode(&bad),
            Err(EntryError::Malformed("telemetry in a v1 entry"))
        );
    }

    #[test]
    fn unsupported_round_trips() {
        let entry = Entry {
            key: "demo/ch=mt/machine=E-2288G".to_string(),
            fingerprint: 7,
            outcome: StoredOutcome::Unsupported,
        };
        let text = entry.encode().expect("encodable");
        assert_eq!(Entry::decode(&text).expect("decodes"), entry);
    }

    #[test]
    fn value_bits_survive_exotic_floats() {
        for value in [f64::NAN, f64::INFINITY, -0.0, f64::MIN_POSITIVE, 1e-310] {
            let entry = Entry {
                key: "k".to_string(),
                fingerprint: 1,
                outcome: StoredOutcome::Measured {
                    metrics: vec![StoredMetric {
                        name: "m".to_string(),
                        value,
                    }],
                    provenance: None,
                    telemetry: None,
                },
            };
            let text = entry.encode().expect("encodable");
            let back = Entry::decode(&text).expect("decodes");
            let StoredOutcome::Measured { metrics, .. } = back.outcome else {
                panic!("measured outcome expected");
            };
            assert_eq!(metrics[0].value.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn any_byte_flip_is_detected() {
        // Telemetry lines sit inside the checksummed body, so the same
        // exhaustive flip sweep covers them too.
        for text in [entry_text(), traced_sample().encode().expect("encodable")] {
            for i in 0..text.len() {
                let mut bytes = text.clone().into_bytes();
                bytes[i] = bytes[i].wrapping_add(1);
                if let Ok(s) = String::from_utf8(bytes) {
                    assert!(
                        Entry::decode(&s).is_err(),
                        "flip at byte {i} went undetected"
                    );
                }
            }
        }
    }

    fn entry_text() -> String {
        sample().encode().expect("encodable")
    }

    #[test]
    fn truncation_and_trailing_garbage_are_detected() {
        let text = entry_text();
        for cut in [0, 1, text.len() / 2, text.len() - 1] {
            assert!(Entry::decode(&text[..cut]).is_err(), "cut at {cut}");
        }
        let mut appended = text.clone();
        appended.push_str("garbage");
        assert!(Entry::decode(&appended).is_err());
        let mut appended_line = text;
        appended_line.push_str("garbage\n");
        assert!(Entry::decode(&appended_line).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let entry = sample();
        let text = entry.encode().expect("encodable");
        let bumped = text.replace("leaky-store/v2", "leaky-store/v9");
        // Re-checksum so the version check itself is what fires.
        let body_end = bumped.rfind("checksum ").expect("checksum line");
        let body = &bumped[..body_end];
        let fixed = format!("{body}checksum 0x{:016x}\n", fnv64(body.as_bytes()));
        assert_eq!(
            Entry::decode(&fixed),
            Err(EntryError::WrongVersion("leaky-store/v9".to_string()))
        );
    }

    #[test]
    fn unencodable_values_are_refused_at_write_time() {
        let mut entry = sample();
        entry.key = "bad\nkey".to_string();
        assert_eq!(entry.encode(), Err(EntryError::Unencodable("key")));
        let mut entry = sample();
        entry.key = "bad\tkey".to_string();
        assert_eq!(entry.encode(), Err(EntryError::Unencodable("key")));
    }
}

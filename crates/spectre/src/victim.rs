//! The bounds-checked victim of the Spectre v1 attack (§IX).
//!
//! ```c
//! if (x < bounds) {            // conditional branch, predictor-trained
//!     transmit(secret[x]);     // disclosure gadget
//! }
//! ```
//!
//! The attacker is *in-domain* (same thread, e.g. sandboxed code): it can
//! call the victim with chosen `x` but cannot read `secret` architecturally.
//! On a mispredicted out-of-bounds call, the gadget runs transiently: its
//! architectural effects are squashed, but its frontend and cache side
//! effects persist — which is exactly what the disclosure channel observes.

use crate::predictor::BranchPredictor;

/// Program counter of the victim's bounds-check branch (arbitrary constant).
pub const VICTIM_BRANCH_PC: u64 = 0x0040_1230;

/// What happened on one victim invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimOutcome {
    /// In-bounds access, executed architecturally.
    Architectural,
    /// Out-of-bounds access rejected without speculation (predictor said
    /// not-taken).
    Rejected,
    /// Out-of-bounds access that ran the gadget *transiently*.
    Transient,
}

/// The victim program: secret array behind a bounds check.
#[derive(Debug, Clone)]
pub struct Victim {
    secret: Vec<u8>,
    bounds: usize,
    predictor: BranchPredictor,
}

impl Victim {
    /// Creates a victim holding `secret` (5-bit chunks, values `0..32`)
    /// guarded by a bounds check at index `bounds` (the public-array
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if any secret chunk is ≥ 32 (they index the 32 DSB sets).
    pub fn new(secret: Vec<u8>, bounds: usize) -> Self {
        assert!(
            secret.iter().all(|&c| c < 32),
            "secret chunks must be 5-bit values"
        );
        assert!(bounds > 0, "victim needs a non-empty public array");
        Victim {
            secret,
            bounds,
            predictor: BranchPredictor::new(1024),
        }
    }

    /// Number of secret chunks.
    pub fn secret_len(&self) -> usize {
        self.secret.len()
    }

    /// The public-array bound.
    pub fn bounds(&self) -> usize {
        self.bounds
    }

    /// Invokes the victim with index `x`. For out-of-bounds `x`, the
    /// `gadget` closure is called with the *secret byte at the out-of-bounds
    /// offset* only when the branch mispredicts (transient execution); it
    /// must only create microarchitectural side effects.
    ///
    /// `x >= bounds` indexes the secret: chunk `x - bounds`.
    pub fn call(&mut self, x: usize, mut gadget: impl FnMut(u8)) -> VictimOutcome {
        let in_bounds = x < self.bounds;
        let predicted_taken = self.predictor.predict(VICTIM_BRANCH_PC);
        self.predictor.update(VICTIM_BRANCH_PC, in_bounds);
        if in_bounds {
            // Architectural execution of the in-bounds path; the gadget runs
            // on public data (modeled as chunk value 0-free: callers train
            // with a known in-bounds element). We deliberately do not invoke
            // the disclosure gadget here: training calls use x inside the
            // public array whose "transmit" touches a fixed public element,
            // which callers model separately if desired.
            VictimOutcome::Architectural
        } else if predicted_taken {
            // Misprediction: the gadget runs transiently on secret data.
            let chunk = x - self.bounds;
            let value = self.secret.get(chunk).copied().unwrap_or(0);
            gadget(value);
            VictimOutcome::Transient
        } else {
            VictimOutcome::Rejected
        }
    }

    /// Trains the predictor with `n` in-bounds calls.
    pub fn train(&mut self, n: usize) {
        for _ in 0..n {
            self.call(0, |_| {});
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_victim_rejects_oob() {
        let mut v = Victim::new(vec![7], 16);
        let mut leaked = None;
        let out = v.call(16, |s| leaked = Some(s));
        assert_eq!(out, VictimOutcome::Rejected);
        assert_eq!(leaked, None);
    }

    #[test]
    fn trained_victim_leaks_transiently() {
        let mut v = Victim::new(vec![7, 19], 16);
        v.train(4);
        let mut leaked = None;
        let out = v.call(16, |s| leaked = Some(s));
        assert_eq!(out, VictimOutcome::Transient);
        assert_eq!(leaked, Some(7));
        // Second chunk, after re-training (the misprediction weakened the
        // counter).
        v.train(4);
        let mut leaked = None;
        assert_eq!(v.call(17, |s| leaked = Some(s)), VictimOutcome::Transient);
        assert_eq!(leaked, Some(19));
    }

    #[test]
    fn in_bounds_calls_never_run_gadget_on_secret() {
        let mut v = Victim::new(vec![1], 8);
        v.train(10);
        let mut ran = false;
        assert_eq!(v.call(3, |_| ran = true), VictimOutcome::Architectural);
        assert!(!ran);
    }

    #[test]
    #[should_panic(expected = "5-bit")]
    fn oversized_chunks_rejected() {
        let _ = Victim::new(vec![32], 4);
    }
}

//! The end-to-end Spectre v1 attack driver and Table VII evaluation.

use leaky_frontend::ThreadId;

use crate::channels::{AttackContext, ChannelKind, CHUNK_VALUES};
use crate::victim::{Victim, VictimOutcome};

/// Result of leaking a whole secret.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectreResult {
    /// The chunks the attacker recovered.
    pub recovered: Vec<u8>,
    /// The chunks actually stored in the victim (for accuracy scoring).
    pub actual: Vec<u8>,
    /// L1I accesses over the whole attack.
    pub l1i_accesses: u64,
    /// L1I misses over the whole attack.
    pub l1i_misses: u64,
    /// L1D accesses over the whole attack.
    pub l1d_accesses: u64,
    /// L1D misses over the whole attack.
    pub l1d_misses: u64,
}

impl SpectreResult {
    /// Fraction of chunks recovered correctly.
    pub fn accuracy(&self) -> f64 {
        if self.actual.is_empty() {
            return 1.0;
        }
        let correct = self
            .recovered
            .iter()
            .zip(&self.actual)
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / self.actual.len() as f64
    }

    /// Combined L1 (instruction + data) miss rate — the Table VII metric.
    pub fn l1_miss_rate(&self) -> f64 {
        let accesses = self.l1i_accesses + self.l1d_accesses;
        if accesses == 0 {
            0.0
        } else {
            (self.l1i_misses + self.l1d_misses) as f64 / accesses as f64
        }
    }

    /// L1I-only miss rate.
    pub fn l1i_miss_rate(&self) -> f64 {
        if self.l1i_accesses == 0 {
            0.0
        } else {
            self.l1i_misses as f64 / self.l1i_accesses as f64
        }
    }

    /// L1D-only miss rate.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64
        }
    }
}

/// An in-domain Spectre v1 attack using one disclosure channel.
#[derive(Debug, Clone)]
pub struct SpectreV1 {
    kind: ChannelKind,
    victim: Victim,
    ctx: AttackContext,
    trains_per_chunk: usize,
}

impl SpectreV1 {
    /// Builds the attack around a victim holding `secret` (5-bit chunks).
    ///
    /// # Panics
    ///
    /// Panics if any chunk is ≥ 32.
    pub fn new(kind: ChannelKind, secret: Vec<u8>, seed: u64) -> Self {
        SpectreV1 {
            kind,
            victim: Victim::new(secret, 16),
            ctx: AttackContext::new(seed),
            trains_per_chunk: 4,
        }
    }

    /// The disclosure channel in use.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// Leaks every chunk of the secret and returns the result with
    /// miss-rate accounting over the whole attack.
    ///
    /// # Panics
    ///
    /// Panics if a negative energy deposit reaches the RAPL model
    /// (`Rapl::deposit`); simulated costs are non-negative.
    pub fn leak(&mut self) -> SpectreResult {
        // Warm the attacker's own code and data so the reported miss rates
        // reflect steady-state attack behaviour, not one-time cold fills.
        self.ctx.background_work(self.kind);
        self.ctx.prepare(self.kind);
        let _ = self.ctx.decode(self.kind);
        // Reset counters so the result covers exactly this attack. L1I
        // traffic is taken from the frontend's cumulative reports (which
        // account steady-state-scaled iterations correctly).
        self.ctx.core.frontend_mut().reset_counters();
        self.ctx.l1d.l1_mut().reset_stats();

        let chunks = self.victim.secret_len();
        let mut recovered = Vec::with_capacity(chunks);
        let mut actual = Vec::with_capacity(chunks);
        for chunk in 0..chunks {
            self.ctx.background_work(self.kind);
            let rounds = self.kind.decode_rounds();
            let mut votes = [0u32; CHUNK_VALUES];
            for _ in 0..rounds {
                self.ctx.prepare(self.kind);
                self.victim.train(self.trains_per_chunk);
                // Transient trigger: out-of-bounds call. The gadget body is
                // the channel's transmit hook.
                let mut transmitted = None;
                let kind = self.kind;
                // Split-borrow: move the context out for the gadget call.
                let ctx = &mut self.ctx;
                let outcome = self.victim.call(16 + chunk, |secret| {
                    transmitted = Some(secret);
                    ctx.transmit(kind, secret);
                });
                debug_assert_eq!(outcome, VictimOutcome::Transient);
                if let Some(s) = transmitted {
                    if actual.len() == chunk {
                        actual.push(s);
                    }
                }
                let guess = self.ctx.decode(self.kind);
                votes[guess as usize] += 1;
            }
            let best = votes
                .iter()
                .enumerate()
                .max_by_key(|&(_, v)| v)
                .map(|(i, _)| i as u8)
                .expect("non-empty votes"); // lint: allow(panic-path) — votes has a fixed 256 entries
            recovered.push(best);
        }

        let l1i = *self.ctx.core.frontend().counters(ThreadId::T0);
        let l1d = self.ctx.l1d.l1().stats();
        SpectreResult {
            recovered,
            actual,
            l1i_accesses: l1i.l1i_accesses,
            l1i_misses: l1i.l1i_misses,
            l1d_accesses: l1d.accesses,
            l1d_misses: l1d.misses,
        }
    }

    /// The attacker thread's elapsed cycles (for bandwidth estimates).
    pub fn elapsed_cycles(&self) -> f64 {
        self.ctx.core.clock(ThreadId::T0)
    }
}

/// Runs Table VII: every channel against the same secret; returns
/// `(channel, result)` rows in the paper's column order.
///
/// # Panics
///
/// Panics if any secret chunk is ≥ 32 (`SpectreV1::new`).
pub fn table7(secret: &[u8], seed: u64) -> Vec<(ChannelKind, SpectreResult)> {
    ChannelKind::all()
        .into_iter()
        .map(|kind| {
            let mut attack = SpectreV1::new(kind, secret.to_vec(), seed);
            (kind, attack.leak())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret() -> Vec<u8> {
        vec![3, 31, 0, 17, 8, 25, 12, 1]
    }

    #[test]
    fn every_channel_recovers_the_secret() {
        for kind in ChannelKind::all() {
            let mut attack = SpectreV1::new(kind, secret(), 11);
            let result = attack.leak();
            assert_eq!(
                result.recovered,
                secret(),
                "{kind} failed to recover the secret"
            );
            assert_eq!(result.accuracy(), 1.0);
        }
    }

    #[test]
    fn frontend_channel_has_lowest_miss_rate() {
        let rows = table7(&secret(), 23);
        let get = |k: ChannelKind| {
            rows.iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, r)| r.l1_miss_rate())
                .expect("channel present")
        };
        let frontend = get(ChannelKind::Frontend);
        for kind in ChannelKind::all() {
            if kind != ChannelKind::Frontend {
                assert!(
                    frontend < get(kind),
                    "frontend ({:.4}) must beat {kind} ({:.4})",
                    frontend,
                    get(kind)
                );
            }
        }
    }

    #[test]
    fn miss_rate_ordering_matches_table7() {
        // Table VII: Frontend < L1I F+R ~ L1I P+P << MEM F+R < L1D LRU <
        // L1D F+R.
        let rows = table7(&secret(), 29);
        let get = |k: ChannelKind| {
            rows.iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, r)| r.l1_miss_rate())
                .unwrap()
        };
        assert!(get(ChannelKind::Frontend) < get(ChannelKind::L1iFlushReload));
        assert!(get(ChannelKind::L1iFlushReload) < get(ChannelKind::MemFlushReload));
        assert!(get(ChannelKind::L1iPrimeProbe) < get(ChannelKind::MemFlushReload));
        assert!(get(ChannelKind::MemFlushReload) < get(ChannelKind::L1dFlushReload));
        assert!(get(ChannelKind::L1dLru) < get(ChannelKind::L1dFlushReload));
        assert!(get(ChannelKind::MemFlushReload) < get(ChannelKind::L1dLru));
    }

    #[test]
    fn frontend_attack_displaces_no_data_cache_lines() {
        // §IX: "our frontend attack does not cause any cache misses at all"
        // beyond cold start — in particular zero L1D traffic.
        let mut attack = SpectreV1::new(ChannelKind::Frontend, secret(), 31);
        let result = attack.leak();
        // Background work is the only L1D traffic; it stays cache-resident.
        let work_misses = result.l1d_misses;
        assert!(
            work_misses <= 128,
            "only cold working-set fills allowed, got {work_misses}"
        );
    }

    #[test]
    fn longer_secrets_amortise_cold_misses() {
        let short = SpectreV1::new(ChannelKind::Frontend, vec![5; 2], 37).leak();
        let long = SpectreV1::new(ChannelKind::Frontend, vec![5; 16], 37).leak();
        assert!(long.l1_miss_rate() < short.l1_miss_rate());
    }
}

//! A pattern-history-table branch predictor with 2-bit saturating counters.
//!
//! Spectre v1 relies on nothing more exotic than this: train the conditional
//! branch toward "in bounds", then supply an out-of-bounds index so the
//! frontend speculatively fetches and executes the gadget.

/// Prediction state of one 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // canonical 2-bit-counter state names
enum Counter {
    StrongNotTaken,
    WeakNotTaken,
    WeakTaken,
    StrongTaken,
}

impl Counter {
    fn predict(self) -> bool {
        matches!(self, Counter::WeakTaken | Counter::StrongTaken)
    }

    fn update(self, taken: bool) -> Counter {
        use Counter::*;
        match (self, taken) {
            (StrongNotTaken, true) => WeakNotTaken,
            (WeakNotTaken, true) => WeakTaken,
            (WeakTaken, true) => StrongTaken,
            (StrongTaken, true) => StrongTaken,
            (StrongNotTaken, false) => StrongNotTaken,
            (WeakNotTaken, false) => StrongNotTaken,
            (WeakTaken, false) => WeakNotTaken,
            (StrongTaken, false) => WeakTaken,
        }
    }
}

/// A direct-mapped pattern history table of 2-bit counters.
///
/// # Examples
///
/// ```
/// use leaky_spectre::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(256);
/// let pc = 0x401000;
/// for _ in 0..3 {
///     bp.update(pc, true); // train taken
/// }
/// assert!(bp.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<Counter>,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters (rounded up to a power of
    /// two), initialised weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        BranchPredictor {
            table: vec![Counter::WeakNotTaken; entries.next_power_of_two()],
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Low PC bits above the 2-byte alignment select the entry.
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// Predicted direction for the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Records the resolved direction, returning whether the prediction was
    /// correct (i.e. `false` = misprediction = transient window opened).
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx].predict();
        self.table[idx] = self.table[idx].update(taken);
        predicted == taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_flips_prediction() {
        let mut bp = BranchPredictor::new(64);
        assert!(!bp.predict(0x1000));
        bp.update(0x1000, true);
        bp.update(0x1000, true);
        assert!(bp.predict(0x1000));
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut bp = BranchPredictor::new(64);
        for _ in 0..4 {
            bp.update(0x40, true);
        }
        // One not-taken outcome must not flip a strongly-taken counter.
        bp.update(0x40, false);
        assert!(bp.predict(0x40));
        bp.update(0x40, false);
        assert!(!bp.predict(0x40));
    }

    #[test]
    fn update_reports_misprediction() {
        let mut bp = BranchPredictor::new(64);
        for _ in 0..3 {
            bp.update(0x80, true);
        }
        // Trained taken; a not-taken resolution is a misprediction.
        assert!(!bp.update(0x80, false), "must report misprediction");
        assert!(bp.update(0x200, false), "cold counter predicts not-taken");
    }

    #[test]
    fn distinct_branches_do_not_alias_in_small_ranges() {
        let mut bp = BranchPredictor::new(256);
        bp.update(0x1000, true);
        bp.update(0x1000, true);
        assert!(bp.predict(0x1000));
        assert!(!bp.predict(0x1004), "neighbouring branch untrained");
    }
}

//! Spectre v1 variants over frontend and cache covert channels, with the
//! L1 miss-rate accounting of the paper's Table VII (§IX).
//!
//! The paper's in-domain Spectre variant encodes each 5-bit secret chunk by
//! *executing an instruction mix block that maps to one of the 32 DSB sets*
//! during the transient window, then recovers it by probing the DSB — no
//! data- or instruction-cache lines are displaced, so the attack's L1 miss
//! rate is the lowest of all known Spectre disclosure channels.
//!
//! This crate builds the full attack stack from scratch:
//!
//! * a 2-bit-counter **branch predictor** and a bounds-checked
//!   [`victim::Victim`] whose mispredicted path runs a disclosure gadget,
//! * six **disclosure channels** ([`channels`]): the frontend/DSB channel,
//!   L1I Flush+Reload, L1I Prime+Probe (this paper), and the MEM
//!   Flush+Reload, L1D Flush+Reload and L1D-LRU baselines it compares
//!   against,
//! * an [`attack::SpectreV1`] driver that leaks a secret end-to-end and
//!   reports per-cache miss statistics.
//!
//! # Examples
//!
//! ```
//! use leaky_spectre::attack::SpectreV1;
//! use leaky_spectre::channels::ChannelKind;
//!
//! let secret = vec![3, 31, 0, 17, 8, 25, 12, 1];
//! let mut attack = SpectreV1::new(ChannelKind::Frontend, secret.clone(), 7);
//! let result = attack.leak();
//! assert_eq!(result.recovered, secret);
//! // Beyond cold-start fills, the frontend channel leaves the caches quiet.
//! assert!(result.l1_miss_rate() < 0.03, "got {}", result.l1_miss_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod attack;
pub mod channels;
pub mod predictor;
pub mod victim;

pub use attack::{SpectreResult, SpectreV1};
pub use channels::ChannelKind;
pub use predictor::BranchPredictor;
pub use victim::Victim;

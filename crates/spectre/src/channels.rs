//! The six disclosure channels of Table VII.
//!
//! Three are this paper's (frontend/DSB, L1I Flush+Reload, L1I
//! Prime+Probe); three are the data-cache baselines it compares against
//! (MEM Flush+Reload, L1D Flush+Reload via eviction sets, and the L1D-LRU
//! channel of Xiong & Szefer). Each channel implements the same three
//! hooks — `prepare` (set state before the transient trigger), `transmit`
//! (the gadget body, run transiently by the victim) and `decode` (recover
//! the chunk afterwards) — over a shared [`AttackContext`].

use leaky_cache::{CacheConfig, CacheHierarchy};
use leaky_cpu::{Core, ProcessorModel};
use leaky_frontend::ThreadId;
use leaky_isa::{same_set_chain, Alignment, BlockChain, CodeRegion, DsbSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which disclosure channel carries the transient secret (Table VII
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// This paper's frontend channel: the gadget executes a mix block
    /// mapping to DSB set = secret; the attacker probes DSB sets by timing
    /// its own pre-primed chains. No cache lines are displaced.
    Frontend,
    /// L1I Flush+Reload: the gadget executes probe function `secret`; the
    /// attacker flushed all probe functions from L1I beforehand and times
    /// re-execution.
    L1iFlushReload,
    /// L1I Prime+Probe: the attacker fills L1I sets with its own code; the
    /// gadget's fetch evicts one line.
    L1iPrimeProbe,
    /// Flush+Reload on victim-shared memory (`clflush` + timed reload).
    MemFlushReload,
    /// Flush+Reload on the L1D using eviction sets instead of `clflush`.
    L1dFlushReload,
    /// The L1D LRU-state channel: the gadget *hits* a cached line, changing
    /// only replacement metadata.
    L1dLru,
}

impl ChannelKind {
    /// All six channels in Table VII order.
    pub fn all() -> [ChannelKind; 6] {
        [
            ChannelKind::MemFlushReload,
            ChannelKind::L1dFlushReload,
            ChannelKind::L1dLru,
            ChannelKind::L1iFlushReload,
            ChannelKind::L1iPrimeProbe,
            ChannelKind::Frontend,
        ]
    }

    /// Display label matching the paper's column headers.
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::Frontend => "Frontend",
            ChannelKind::L1iFlushReload => "L1I F+R",
            ChannelKind::L1iPrimeProbe => "L1I P+P",
            ChannelKind::MemFlushReload => "MEM F+R",
            ChannelKind::L1dFlushReload => "L1D F+R",
            ChannelKind::L1dLru => "L1D LRU",
        }
    }

    /// Data-cache channels repeat their decode to overcome measurement
    /// noise (as the published attacks do); frontend/L1I decodes are
    /// single-shot.
    pub(crate) fn decode_rounds(self) -> usize {
        match self {
            ChannelKind::Frontend | ChannelKind::L1iFlushReload | ChannelKind::L1iPrimeProbe => 1,
            ChannelKind::MemFlushReload => 3,
            ChannelKind::L1dFlushReload | ChannelKind::L1dLru => 3,
        }
    }

    /// Per-chunk attacker bookkeeping: `(data accesses, driver-loop
    /// iterations)`. Each published attack has a very different footprint
    /// (training harness, synchronisation, result handling); these values
    /// are calibrated so steady-state miss rates land in the regimes of
    /// Table VII.
    pub(crate) fn background_profile(self) -> (usize, u64) {
        match self {
            ChannelKind::Frontend => (0, 40),
            ChannelKind::L1iFlushReload => (0, 3400),
            ChannelKind::L1iPrimeProbe => (0, 2700),
            ChannelKind::MemFlushReload => (3300, 40),
            ChannelKind::L1dFlushReload => (18_500, 40),
            ChannelKind::L1dLru => (19_700, 40),
        }
    }
}

impl std::fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of values a chunk can take = number of DSB sets.
pub const CHUNK_VALUES: usize = 32;

/// Shared attacker state: a core (frontend + L1I) and an L1D hierarchy,
/// plus the code/data layouts every channel uses.
#[derive(Debug, Clone)]
pub struct AttackContext {
    /// The simulated core (frontend paths + L1I).
    pub core: Core,
    /// The data-cache hierarchy.
    pub l1d: CacheHierarchy,
    /// Attacker probe chains: 8 same-set mix blocks per DSB set.
    pub(crate) probe_chains: Vec<BlockChain>,
    /// Victim gadget blocks: one mix block per DSB set, in victim code
    /// space.
    pub(crate) victim_blocks: Vec<BlockChain>,
    /// L1I probe functions: one single-block chain per chunk value, each in
    /// its own L1I set.
    pub(crate) probe_fns: Vec<BlockChain>,
    /// L1I prime chains: 8 code lines per L1I set used by Prime+Probe.
    pub(crate) l1i_prime: Vec<Vec<BlockChain>>,
    /// Victim-shared data array: one 64-byte line per chunk value.
    pub(crate) array_lines: Vec<u64>,
    /// Attacker eviction lines per L1D set (for the no-`clflush` variant).
    pub(crate) evict_lines: Vec<Vec<u64>>,
    /// Attacker working-set lines for background work.
    pub(crate) work_lines: Vec<u64>,
    /// The attacker's main-loop code (background fetches).
    pub(crate) driver_chain: BlockChain,
    pub(crate) rng: StdRng,
}

impl AttackContext {
    /// Builds the shared layouts on a fresh core.
    ///
    /// # Panics
    ///
    /// Panics on a DSB set index ≥ 32 (`DsbSet::new`).
    pub fn new(seed: u64) -> Self {
        let core = Core::new(ProcessorModel::gold_6226(), seed);
        let l1d = CacheHierarchy::new(CacheConfig::l1d());

        // Frontend probe chains (attacker region) and victim gadget blocks.
        let mut attacker_region = CodeRegion::new(0x0100_0000);
        let probe_chains: Vec<BlockChain> = (0..CHUNK_VALUES)
            .map(|s| attacker_region.same_set_chain(DsbSet::new(s as u8), 8, Alignment::Aligned))
            .collect();
        let victim_blocks: Vec<BlockChain> = (0..CHUNK_VALUES)
            .map(|s| {
                same_set_chain(
                    0x0040_0000 + s as u64 * 0x400,
                    DsbSet::new(s as u8),
                    1,
                    Alignment::Aligned,
                )
            })
            .collect();

        // L1I probe functions: one per chunk value, 2048 B apart so each
        // lives in a distinct L1I set (64-byte lines, 64 sets).
        let probe_fns: Vec<BlockChain> = (0..CHUNK_VALUES)
            .map(|s| {
                let base = 0x0200_0000 + s as u64 * 64; // distinct lines/sets
                BlockChain::new(vec![leaky_isa::Block::mix(leaky_isa::Addr::new(base))])
            })
            .collect();

        // L1I prime chains: 8 attacker code lines mapping to each of the 32
        // probe-fn L1I sets (stride 4096 = 64 sets x 64 B).
        let l1i_prime: Vec<Vec<BlockChain>> = (0..CHUNK_VALUES)
            .map(|s| {
                (0..8u64)
                    .map(|w| {
                        let base = 0x0300_0000 + s as u64 * 64 + w * 4096;
                        BlockChain::new(vec![leaky_isa::Block::mix(leaky_isa::Addr::new(base))])
                    })
                    .collect()
            })
            .collect();

        // Victim-shared data array: 32 lines, one per chunk value.
        let array_base: u64 = 0x7f00_0000 / 64;
        let array_lines: Vec<u64> = (0..CHUNK_VALUES as u64).map(|s| array_base + s).collect();

        // Eviction lines: 8 lines per array line's L1D set.
        let cfg = CacheConfig::l1d();
        let evict_lines: Vec<Vec<u64>> = array_lines
            .iter()
            .map(|&line| (1..=8u64).map(|w| line + w * cfg.sets as u64).collect())
            .collect();

        // Background working set: 128 lines (8 KB), fits easily.
        let work_lines: Vec<u64> = (0..128u64).map(|i| 0x0500_0000 / 64 + i).collect();

        let mut driver_region = CodeRegion::new(0x0600_0000);
        let driver_chain = BlockChain::new(vec![driver_region.nop_block(60)]);

        AttackContext {
            core,
            l1d,
            probe_chains,
            victim_blocks,
            probe_fns,
            l1i_prime,
            array_lines,
            evict_lines,
            work_lines,
            driver_chain,
            rng: StdRng::seed_from_u64(seed ^ 0x5bec_7e11),
        }
    }

    /// The attacker's per-chunk background work (bookkeeping, training
    /// harness, synchronisation), sized per channel.
    pub(crate) fn background_work(&mut self, kind: ChannelKind) {
        let (data_accesses, driver_iterations) = kind.background_profile();
        for i in 0..data_accesses {
            let line = self.work_lines[i % self.work_lines.len()];
            self.l1d.access_line(line);
        }
        self.core
            .run_loop(ThreadId::T0, &self.driver_chain, driver_iterations);
    }

    /// Channel-specific preparation before the transient trigger.
    pub(crate) fn prepare(&mut self, kind: ChannelKind) {
        match kind {
            ChannelKind::Frontend => {
                // Prime every DSB set with the attacker's 8 ways.
                for s in 0..CHUNK_VALUES {
                    let chain = self.probe_chains[s].clone();
                    self.core.run_once(ThreadId::T0, &chain);
                }
            }
            ChannelKind::L1iFlushReload => {
                // Ensure present, then flush from L1I.
                for s in 0..CHUNK_VALUES {
                    let chain = self.probe_fns[s].clone();
                    self.core.run_once(ThreadId::T0, &chain);
                }
                for s in 0..CHUNK_VALUES {
                    let line = self.probe_fns[s].blocks()[0].cache_lines()[0];
                    self.core.frontend_mut().l1i_mut().flush_line(line);
                }
            }
            ChannelKind::L1iPrimeProbe => {
                for s in 0..CHUNK_VALUES {
                    for w in 0..8 {
                        let chain = self.l1i_prime[s][w].clone();
                        self.core.run_once(ThreadId::T0, &chain);
                    }
                }
            }
            ChannelKind::MemFlushReload => {
                for &line in &self.array_lines.clone() {
                    self.l1d.access_line(line);
                }
                for &line in &self.array_lines.clone() {
                    self.l1d.flush_line(line);
                }
            }
            ChannelKind::L1dFlushReload => {
                // Evict each array line from L1D via its eviction set
                // (no clflush available to this attacker).
                for s in 0..CHUNK_VALUES {
                    for &e in &self.evict_lines[s].clone() {
                        self.l1d.access_line(e);
                    }
                }
            }
            ChannelKind::L1dLru => {
                // Prime: bring every array line into cache, each as the
                // oldest (LRU) entry of its set by touching the eviction
                // lines afterwards (7 of them, leaving the set full).
                for s in 0..CHUNK_VALUES {
                    self.l1d.access_line(self.array_lines[s]);
                    for &e in self.evict_lines[s].clone().iter().take(7) {
                        self.l1d.access_line(e);
                    }
                }
            }
        }
    }

    /// The gadget body: runs *transiently* with the secret chunk value.
    /// Only microarchitectural effects persist.
    pub(crate) fn transmit(&mut self, kind: ChannelKind, secret: u8) {
        let s = secret as usize;
        match kind {
            ChannelKind::Frontend => {
                // Transient fetch+decode of a mix block mapping to DSB set
                // `secret`: inserts a victim line, evicting one attacker
                // way. No L1D traffic, no L1I displacement.
                let chain = self.victim_blocks[s].clone();
                self.core.run_once(ThreadId::T0, &chain);
            }
            ChannelKind::L1iFlushReload | ChannelKind::L1iPrimeProbe => {
                let chain = self.probe_fns[s].clone();
                self.core.run_once(ThreadId::T0, &chain);
            }
            ChannelKind::MemFlushReload | ChannelKind::L1dFlushReload => {
                self.l1d.access_line(self.array_lines[s]);
            }
            ChannelKind::L1dLru => {
                // A cache *hit* — only LRU metadata changes.
                self.l1d.access_line(self.array_lines[s]);
            }
        }
    }

    /// Recovers the chunk from microarchitectural state.
    pub(crate) fn decode(&mut self, kind: ChannelKind) -> u8 {
        match kind {
            ChannelKind::Frontend => {
                // Probe each set: the set holding the victim line shows a
                // MITE refetch (DSB miss) for the attacker's evicted way.
                let mut hot = 0u8;
                let mut hot_cycles = 0.0;
                for s in 0..CHUNK_VALUES {
                    let chain = self.probe_chains[s].clone();
                    let run = self.core.run_once(ThreadId::T0, &chain);
                    if run.report.mite_uops > 0 && run.cycles > hot_cycles {
                        hot_cycles = run.cycles;
                        hot = s as u8;
                    }
                }
                hot
            }
            ChannelKind::L1iFlushReload => {
                // Reload each probe fn; the resident one fetches without an
                // L1I miss.
                let mut found = 0u8;
                for s in 0..CHUNK_VALUES {
                    let chain = self.probe_fns[s].clone();
                    let run = self.core.run_once(ThreadId::T0, &chain);
                    if run.report.l1i_misses == 0 {
                        found = s as u8;
                    }
                }
                found
            }
            ChannelKind::L1iPrimeProbe => {
                // Probe each primed set: a miss means the victim's fetch
                // displaced one of our lines.
                let mut found = 0u8;
                for s in 0..CHUNK_VALUES {
                    let mut misses = 0u64;
                    for w in 0..8 {
                        let chain = self.l1i_prime[s][w].clone();
                        let run = self.core.run_once(ThreadId::T0, &chain);
                        misses += run.report.l1i_misses;
                    }
                    if misses > 0 {
                        found = s as u8;
                    }
                }
                found
            }
            ChannelKind::MemFlushReload => {
                // Reload in random order until the fast (resident) line is
                // found, as the real attack does to save probes.
                let mut order: Vec<usize> = (0..CHUNK_VALUES).collect();
                order.shuffle(&mut self.rng);
                let mut found = 0u8;
                for &s in &order {
                    let threshold = self.l1d.latency_model().l2_hit + 1;
                    let fast = self.l1d.would_reload_fast(self.array_lines[s], threshold);
                    self.l1d.access_line(self.array_lines[s]);
                    if fast {
                        found = s as u8;
                        break;
                    }
                }
                found
            }
            ChannelKind::L1dFlushReload => {
                let mut found = 0u8;
                for s in 0..CHUNK_VALUES {
                    let (outcome, _) = self.l1d.access_line(self.array_lines[s]);
                    if outcome.hit() {
                        found = s as u8;
                    }
                }
                found
            }
            ChannelKind::L1dLru => {
                // Insert one fresh line per set: the evicted victim line is
                // the LRU one. In the secret's set, the victim line was
                // promoted to MRU, so it survives; everywhere else it is the
                // eviction victim.
                let mut found = 0u8;
                for s in 0..CHUNK_VALUES {
                    let fresh = self.evict_lines[s][7];
                    self.l1d.access_line(fresh);
                    if self.l1d.l1().contains_line(self.array_lines[s]) {
                        found = s as u8;
                    }
                }
                found
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_are_disjoint_and_complete() {
        let ctx = AttackContext::new(1);
        assert_eq!(ctx.probe_chains.len(), 32);
        assert_eq!(ctx.victim_blocks.len(), 32);
        assert_eq!(ctx.probe_fns.len(), 32);
        // Victim gadget block s maps to DSB set s but a different window
        // than any attacker probe block.
        for s in 0..32usize {
            assert_eq!(ctx.victim_blocks[s].blocks()[0].dsb_set().index(), s as u8);
            let vw = ctx.victim_blocks[s].blocks()[0].base().window();
            for chain in &ctx.probe_chains {
                for b in chain.blocks() {
                    assert_ne!(b.base().window(), vw);
                }
            }
        }
        // L1I probe fns occupy 32 distinct L1I sets.
        let sets: std::collections::HashSet<u64> = ctx
            .probe_fns
            .iter()
            .map(|c| c.blocks()[0].base().l1i_set())
            .collect();
        assert_eq!(sets.len(), 32);
    }

    #[test]
    fn eviction_lines_share_sets_with_targets() {
        let ctx = AttackContext::new(2);
        let cfg = CacheConfig::l1d();
        for s in 0..32 {
            let target_set = cfg.set_of_line(ctx.array_lines[s]);
            for &e in &ctx.evict_lines[s] {
                assert_eq!(cfg.set_of_line(e), target_set);
                assert_ne!(e, ctx.array_lines[s]);
            }
        }
    }

    #[test]
    fn channel_labels_match_table7() {
        let labels: Vec<&str> = ChannelKind::all().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["MEM F+R", "L1D F+R", "L1D LRU", "L1I F+R", "L1I P+P", "Frontend"]
        );
    }
}

//! Generic set-associative cache with true-LRU replacement.

use std::fmt;

use leaky_isa::Addr;

/// Geometry and identity of a cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// L1 instruction cache per Table I: 32 KB, 8-way, 64 B lines, 64 sets.
    pub const fn l1i() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// L1 data cache per Table I: 32 KB, 8-way, 64 B lines, 64 sets.
    pub const fn l1d() -> Self {
        CacheConfig {
            sets: 64,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Line number for an address.
    pub const fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64
    }

    /// Set index for a line number.
    pub const fn set_of_line(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `evicted` is the line it displaced, if any.
    Miss {
        /// Line number evicted to make room, or `None` if a way was free.
        evicted: Option<u64>,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub fn hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// The evicted line, if this was a miss that displaced one.
    pub fn evicted(self) -> Option<u64> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => evicted,
        }
    }
}

/// Running access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that evicted a valid line.
    pub evictions: u64,
    /// Lines invalidated by explicit flushes.
    pub flushes: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`, or `0` with no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement and explicit flush
/// support (for `clflush`-style attacks).
///
/// Lines are tracked by *line number* (`addr / line_bytes`); the tag is the
/// full line number so distinct lines never alias.
///
/// Storage is one contiguous `sets × ways` buffer with per-set occupancy
/// counters: set `s` occupies `lines[s*ways .. s*ways + lens[s]]`, MRU
/// first. LRU maintenance is a `rotate_right` on the set's slice, so the
/// per-access hot path (this backs every simulated L1I fetch) allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Flat `sets × ways` slots; only each set's occupied prefix is valid.
    lines: Box<[u64]>,
    /// Per-set occupancy.
    lens: Box<[u16]>,
    /// `sets - 1` when the set count is a power of two, turning the
    /// per-access set index into an AND instead of a 64-bit division.
    index_mask: Option<u64>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero, `line_bytes` is not a
    /// power of two, or the associativity exceeds `u16`.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.sets > 0 && config.ways > 0,
            "degenerate cache geometry"
        );
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways <= u16::MAX as usize, "ways must fit a u16");
        SetAssocCache {
            config,
            lines: vec![0; config.sets * config.ways].into_boxed_slice(),
            lens: vec![0; config.sets].into_boxed_slice(),
            index_mask: config
                .sets
                .is_power_of_two()
                .then_some(config.sets as u64 - 1),
            stats: CacheStats::default(),
        }
    }

    /// Set index of a line under this cache's geometry (mask fast path).
    #[inline]
    fn set_of_line(&self, line: u64) -> usize {
        match self.index_mask {
            Some(mask) => (line & mask) as usize,
            None => self.config.set_of_line(line),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access by byte address.
    #[inline]
    pub fn access_addr(&mut self, addr: u64) -> AccessOutcome {
        self.access_line(self.config.line_of(addr))
    }

    /// Access by [`Addr`].
    pub fn access(&mut self, addr: Addr) -> AccessOutcome {
        self.access_addr(addr.value())
    }

    /// Access by line number, updating LRU state and statistics.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let ways = self.config.ways;
        let set = self.set_of_line(line);
        let base = set * ways;
        let len = self.lens[set] as usize;
        let occupied = &mut self.lines[base..base + len];
        if let Some(pos) = occupied.iter().position(|&l| l == line) {
            self.stats.hits += 1;
            // Promote to MRU: the hit slot rotates to the set's front.
            occupied[..=pos].rotate_right(1);
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        let evicted = if len == ways {
            self.stats.evictions += 1;
            Some(self.lines[base + ways - 1])
        } else {
            self.lens[set] = (len + 1) as u16;
            None
        };
        let new_len = self.lens[set] as usize;
        self.lines[base..base + new_len].rotate_right(1);
        self.lines[base] = line;
        AccessOutcome::Miss { evicted }
    }

    /// Whether a byte address' line is present (does not disturb LRU state).
    pub fn contains_addr(&self, addr: u64) -> bool {
        self.contains_line(self.config.line_of(addr))
    }

    /// Whether a line is present (does not disturb LRU state).
    #[inline]
    pub fn contains_line(&self, line: u64) -> bool {
        self.set_lines(self.set_of_line(line)).contains(&line)
    }

    /// LRU rank of a line within its set: `Some(0)` = most recently used,
    /// `Some(ways-1)` = next eviction victim, `None` = absent. This is the
    /// observable exploited by the L1D-LRU covert channel (Table VII's
    /// "L1D LRU" baseline, after Xiong & Szefer).
    pub fn lru_rank(&self, line: u64) -> Option<usize> {
        self.set_lines(self.set_of_line(line))
            .iter()
            .position(|&l| l == line)
    }

    /// Flushes one line (`clflush`): removes it without touching LRU order
    /// of other lines.
    pub fn flush_line(&mut self, line: u64) {
        let set = self.set_of_line(line);
        let base = set * self.config.ways;
        let len = self.lens[set] as usize;
        let occupied = &mut self.lines[base..base + len];
        if let Some(pos) = occupied.iter().position(|&l| l == line) {
            // Close the gap, preserving the LRU order of the survivors.
            occupied[pos..].rotate_left(1);
            self.lens[set] = (len - 1) as u16;
            self.stats.flushes += 1;
        }
    }

    /// Flushes a byte address' line.
    pub fn flush_addr(&mut self, addr: u64) {
        self.flush_line(self.config.line_of(addr));
    }

    /// Invalidates the entire cache (keeps statistics).
    pub fn flush_all(&mut self) {
        for len in &mut self.lens {
            self.stats.flushes += *len as u64;
            *len = 0;
        }
    }

    /// Number of valid lines in a set.
    ///
    /// # Panics
    ///
    /// Panics if `set >= config.sets`.
    pub fn set_occupancy(&self, set: usize) -> usize {
        self.lens[set] as usize
    }

    /// Lines currently resident in a set, MRU first.
    #[inline]
    pub fn set_lines(&self, set: usize) -> &[u64] {
        let base = set * self.config.ways;
        &self.lines[base..base + self.lens[set] as usize]
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl fmt::Display for SetAssocCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} cache ({} B lines): {} accesses, {:.2}% miss",
            self.config.sets,
            self.config.ways,
            self.config.line_bytes,
            self.stats.accesses,
            self.stats.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn l1_presets_match_table1() {
        assert_eq!(CacheConfig::l1i().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l1d().capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access_line(0).hit());
        assert!(c.access_line(0).hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = SetAssocCache::new(CacheConfig::l1i());
        c.access_addr(0x1000);
        assert!(c.access_addr(0x103f).hit());
        assert!(!c.access_addr(0x1040).hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line % 2).
        c.access_line(0);
        c.access_line(2);
        c.access_line(0); // 0 becomes MRU; 2 is LRU
        let out = c.access_line(4);
        assert_eq!(out.evicted(), Some(2));
        assert!(c.contains_line(0));
        assert!(!c.contains_line(2));
    }

    #[test]
    fn lru_rank_tracks_recency() {
        let mut c = tiny();
        c.access_line(0);
        c.access_line(2);
        assert_eq!(c.lru_rank(2), Some(0));
        assert_eq!(c.lru_rank(0), Some(1));
        assert_eq!(c.lru_rank(4), None);
        // Re-touching 0 promotes it without a miss — the LRU channel's core
        // observable: hits still change replacement state.
        assert!(c.access_line(0).hit());
        assert_eq!(c.lru_rank(0), Some(0));
        assert_eq!(c.lru_rank(2), Some(1));
    }

    #[test]
    fn flush_removes_without_reordering() {
        let mut c = tiny();
        c.access_line(0);
        c.access_line(2);
        c.flush_line(0);
        assert!(!c.contains_line(0));
        assert!(c.contains_line(2));
        assert_eq!(c.stats().flushes, 1);
        // Flushing an absent line is a no-op.
        c.flush_line(40);
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn flush_all_empties_every_set() {
        let mut c = tiny();
        for l in 0..4 {
            c.access_line(l);
        }
        c.flush_all();
        for l in 0..4 {
            assert!(!c.contains_line(l));
        }
        assert_eq!(c.set_occupancy(0), 0);
        assert_eq!(c.set_occupancy(1), 0);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        c.access_line(0);
        c.access_line(0);
        c.access_line(0);
        c.access_line(0);
        assert!((c.stats().miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn filling_a_set_beyond_ways_evicts_in_order() {
        let mut c = SetAssocCache::new(CacheConfig::l1i());
        // 9 lines mapping to set 0 on a 64-set cache: lines 0, 64, 128, ...
        for i in 0..9u64 {
            c.access_line(i * 64);
        }
        assert!(!c.contains_line(0), "oldest line evicted");
        for i in 1..9u64 {
            assert!(c.contains_line(i * 64));
        }
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_lines() {
        let _ = SetAssocCache::new(CacheConfig {
            sets: 1,
            ways: 1,
            line_bytes: 48,
        });
    }
}

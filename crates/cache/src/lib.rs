//! Set-associative cache models (L1I / L1D) for the `leaky-frontends`
//! reproduction.
//!
//! The paper's frontend attacks are explicitly designed to leave *no* traces
//! in the traditional instruction and data caches (§IV-F, Table VII). To
//! demonstrate that, and to implement the baseline Spectre covert channels
//! the paper compares against (MEM Flush+Reload, L1D Flush+Reload, L1D LRU,
//! L1I Flush+Reload, L1I Prime+Probe), this crate provides:
//!
//! * a generic true-LRU [`SetAssocCache`] with full statistics,
//! * [`L1I`]/[`L1D`] presets matching Table I (32 KB, 8-way, 64 B lines),
//! * LRU-state observation for the L1D-LRU covert channel
//!   ([`SetAssocCache::lru_rank`]),
//! * a small latency model ([`CacheHierarchy`]) for hit/miss timing.
//!
//! # Examples
//!
//! ```
//! use leaky_cache::{CacheConfig, SetAssocCache};
//!
//! let mut l1i = SetAssocCache::new(CacheConfig::l1i());
//! let miss = l1i.access_addr(0x0041_8000);
//! assert!(!miss.hit());
//! let hit = l1i.access_addr(0x0041_8004); // same 64-byte line
//! assert!(hit.hit());
//! assert_eq!(l1i.stats().misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod hierarchy;
pub mod lru;

pub use hierarchy::{CacheHierarchy, LatencyModel};
pub use lru::{AccessOutcome, CacheConfig, CacheStats, SetAssocCache};

/// Convenience alias: an L1 instruction cache per Table I.
pub type L1I = SetAssocCache;

/// Convenience alias: an L1 data cache per Table I.
pub type L1D = SetAssocCache;

//! A small two-level latency model over the L1 caches.
//!
//! The Spectre baselines (Table VII) need access *timing*, not just hit/miss
//! booleans: Flush+Reload decides secrets by comparing reload latency against
//! the L1/L2/memory thresholds. [`CacheHierarchy`] wraps an L1 cache with a
//! latency model so probes observe realistic cycle counts.

use crate::lru::{AccessOutcome, CacheConfig, SetAssocCache};

/// Access latencies in cycles for each level that can service a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// L1 hit latency (Skylake: ~4 cycles).
    pub l1_hit: u64,
    /// L2 hit latency, charged on L1 miss that stays on-chip (~12 cycles).
    pub l2_hit: u64,
    /// DRAM latency, charged when the line was flushed to memory
    /// (~200 cycles).
    pub memory: u64,
}

impl LatencyModel {
    /// Skylake-like default latencies.
    pub const fn skylake() -> Self {
        LatencyModel {
            l1_hit: 4,
            l2_hit: 12,
            memory: 200,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::skylake()
    }
}

/// An L1 cache plus a model of where misses are serviced.
///
/// Lines explicitly flushed with [`CacheHierarchy::flush_line`] are evicted
/// all the way to memory (as `clflush` does); lines merely displaced by
/// capacity stay in the (unmodeled) L2 and refill at `l2_hit` latency.
///
/// # Examples
///
/// ```
/// use leaky_cache::{CacheConfig, CacheHierarchy};
///
/// let mut h = CacheHierarchy::new(CacheConfig::l1d());
/// h.access_line(7);                    // cold: L2 fill
/// assert_eq!(h.access_line(7).1, 4);   // L1 hit
/// h.flush_line(7);                     // clflush: to memory
/// assert_eq!(h.access_line(7).1, 200); // memory reload
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    latency: LatencyModel,
    /// Lines known to have been flushed to memory (not merely L1-evicted).
    flushed: std::collections::HashSet<u64>,
}

impl CacheHierarchy {
    /// Creates a hierarchy with default Skylake latencies.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn new(config: CacheConfig) -> Self {
        Self::with_latency(config, LatencyModel::skylake())
    }

    /// Creates a hierarchy with an explicit latency model.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn with_latency(config: CacheConfig, latency: LatencyModel) -> Self {
        CacheHierarchy {
            l1: SetAssocCache::new(config),
            latency,
            flushed: std::collections::HashSet::new(),
        }
    }

    /// The underlying L1 cache.
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// Mutable access to the underlying L1 cache (for priming helpers).
    pub fn l1_mut(&mut self) -> &mut SetAssocCache {
        &mut self.l1
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// Accesses a line, returning the outcome and the cycles it took.
    pub fn access_line(&mut self, line: u64) -> (AccessOutcome, u64) {
        let outcome = self.l1.access_line(line);
        let cycles = match outcome {
            AccessOutcome::Hit => self.latency.l1_hit,
            AccessOutcome::Miss { .. } => {
                if self.flushed.remove(&line) {
                    self.latency.memory
                } else {
                    self.latency.l2_hit
                }
            }
        };
        (outcome, cycles)
    }

    /// Accesses a byte address.
    pub fn access_addr(&mut self, addr: u64) -> (AccessOutcome, u64) {
        self.access_line(self.l1.config().line_of(addr))
    }

    /// `clflush`: evicts the line from the whole hierarchy, so the next
    /// access pays full memory latency.
    pub fn flush_line(&mut self, line: u64) {
        self.l1.flush_line(line);
        self.flushed.insert(line);
    }

    /// Flushes a byte address' line.
    pub fn flush_addr(&mut self, addr: u64) {
        self.flush_line(self.l1.config().line_of(addr));
    }

    /// Whether a reload of `line` would be "fast" (below the Flush+Reload
    /// threshold), without disturbing state.
    pub fn would_reload_fast(&self, line: u64, threshold: u64) -> bool {
        let latency = if self.l1.contains_line(line) {
            self.latency.l1_hit
        } else if self.flushed.contains(&line) {
            self.latency.memory
        } else {
            self.latency.l2_hit
        };
        latency < threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_is_l2_fill_not_memory() {
        let mut h = CacheHierarchy::new(CacheConfig::l1d());
        let (out, cyc) = h.access_line(1);
        assert!(!out.hit());
        assert_eq!(cyc, LatencyModel::skylake().l2_hit);
    }

    #[test]
    fn flush_reload_cycle() {
        let mut h = CacheHierarchy::new(CacheConfig::l1d());
        h.access_line(9);
        h.flush_line(9);
        let (_, cyc) = h.access_line(9);
        assert_eq!(cyc, LatencyModel::skylake().memory);
        // Second reload is an L1 hit again.
        let (_, cyc2) = h.access_line(9);
        assert_eq!(cyc2, LatencyModel::skylake().l1_hit);
    }

    #[test]
    fn capacity_eviction_refills_from_l2() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 64,
        };
        let mut h = CacheHierarchy::new(cfg);
        h.access_line(0);
        h.access_line(1);
        h.access_line(2); // evicts 0 (capacity, not clflush)
        let (_, cyc) = h.access_line(0);
        assert_eq!(cyc, LatencyModel::skylake().l2_hit);
    }

    #[test]
    fn would_reload_fast_predicts_without_mutating() {
        let mut h = CacheHierarchy::new(CacheConfig::l1d());
        h.access_line(3);
        let before = h.l1().stats();
        assert!(h.would_reload_fast(3, 100));
        h.flush_line(3);
        assert!(!h.would_reload_fast(3, 100));
        assert_eq!(h.l1().stats().accesses, before.accesses);
    }
}

//! A retained naive reference implementation of the frontend engine.
//!
//! [`NaiveFrontend`] is the pre-optimization engine kept verbatim as the
//! *differential-testing oracle* for [`crate::Frontend`]: per-set
//! `Vec<Vec<LineId>>` DSB storage, `HashSet`-based LSD lock bookkeeping,
//! windows/chunks re-derived from the [`BlockChain`] every iteration, and
//! a `run_iterations` that simulates every iteration with no steady-state
//! collapse. It is deliberately allocation-heavy and slow; its sole job
//! is to produce bit-identical [`IterationReport`]s so property tests can
//! prove the optimized engine changed *speed* and nothing else.

use std::collections::HashSet;

use leaky_cache::SetAssocCache;
use leaky_isa::{Block, BlockChain};

use crate::counters::{IterationReport, UopSource};
use crate::dsb::{LineId, SmtDsbPolicy};
use crate::engine::{FrontendConfig, ThreadId};
use crate::lsd::lsd_qualifies;

/// The naive per-set MRU-list DSB (the optimized engine packs the same
/// state into one flat buffer).
#[derive(Debug, Clone)]
struct NaiveDsb {
    sets_count: usize,
    ways: usize,
    policy: SmtDsbPolicy,
    partitioned: bool,
    /// Per physical set: resident lines, MRU first.
    sets: Vec<Vec<LineId>>,
}

impl NaiveDsb {
    fn new(sets: usize, ways: usize, policy: SmtDsbPolicy) -> Self {
        // Mirror of the optimized Dsb's limit: lock set masks are one u64
        // bit per set.
        assert!(sets <= 64, "set masks support at most 64 DSB sets");
        NaiveDsb {
            sets_count: sets,
            ways,
            policy,
            partitioned: false,
            sets: vec![Vec::with_capacity(ways); sets],
        }
    }

    fn set_partitioned(&mut self, partitioned: bool) -> Vec<LineId> {
        if self.partitioned == partitioned {
            return Vec::new();
        }
        self.partitioned = partitioned;
        match self.policy {
            SmtDsbPolicy::SetPartitioned => self.flush_all(),
            SmtDsbPolicy::Competitive | SmtDsbPolicy::Shared => Vec::new(),
        }
    }

    fn set_index(&self, line: LineId) -> usize {
        let full = (line.window % self.sets_count as u64) as usize;
        match self.policy {
            SmtDsbPolicy::SetPartitioned if self.partitioned => {
                let half = self.sets_count / 2;
                (full % half) + line.thread as usize * half
            }
            _ => full,
        }
    }

    fn resident(&self, line: LineId) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    fn lookup(&mut self, line: LineId) -> bool {
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, line: LineId) -> Option<LineId> {
        let ways_limit = self.ways;
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        debug_assert!(!ways.contains(&line), "inserting an already-resident line");
        let evicted = if ways.len() >= ways_limit {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, line);
        evicted
    }

    fn flush_thread(&mut self, thread: u8) -> Vec<LineId> {
        let mut flushed = Vec::new();
        for set in &mut self.sets {
            set.retain(|l| {
                if l.thread == thread {
                    flushed.push(*l);
                    false
                } else {
                    true
                }
            });
        }
        flushed
    }

    fn flush_all(&mut self) -> Vec<LineId> {
        let mut flushed = Vec::new();
        for set in &mut self.sets {
            flushed.append(set);
        }
        flushed
    }

    fn occupancy(&self, thread: u8) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.thread == thread).count())
            .sum()
    }
}

/// A loop locked into the LSD, tracked with hash sets.
#[derive(Debug, Clone)]
struct NaiveLock {
    key: u64,
    lines: HashSet<(u64, u8)>,
    uops: u32,
    set_mask: u64,
    foreign_crossings: HashSet<u64>,
}

/// The naive reference frontend (see the module docs).
#[derive(Debug, Clone)]
pub struct NaiveFrontend {
    config: FrontendConfig,
    dsb: NaiveDsb,
    l1i: SetAssocCache,
    locks: [Option<NaiveLock>; 2],
    last_source: [UopSource; 2],
    active: [bool; 2],
    pending_lsd_flush: [bool; 2],
    external_mite_pressure: [f64; 2],
    lock_streak: [(u64, u32); 2],
    cumulative: [IterationReport; 2],
}

impl NaiveFrontend {
    /// Creates an idle naive frontend.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn new(config: FrontendConfig) -> Self {
        NaiveFrontend {
            dsb: NaiveDsb::new(
                config.geometry.dsb_sets,
                config.geometry.dsb_ways,
                config.dsb_policy,
            ),
            l1i: SetAssocCache::new(config.l1i_config()),
            locks: [None, None],
            last_source: [UopSource::Dsb, UopSource::Dsb],
            active: [false, false],
            pending_lsd_flush: [false, false],
            external_mite_pressure: [0.0, 0.0],
            lock_streak: [(0, 0), (0, 0)],
            cumulative: [IterationReport::default(), IterationReport::default()],
            config,
        }
    }

    /// Swaps in a new configuration (same semantics as
    /// [`crate::Frontend::reconfigure`]): DSB and L1I rebuilt empty for
    /// the new geometry, locks/streaks/pending penalties dropped,
    /// cumulative counters kept.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate cache geometry (`SetAssocCache::new`).
    pub fn reconfigure(&mut self, config: FrontendConfig) {
        self.dsb = NaiveDsb::new(
            config.geometry.dsb_sets,
            config.geometry.dsb_ways,
            config.dsb_policy,
        );
        self.l1i = SetAssocCache::new(config.l1i_config());
        self.locks = [None, None];
        self.last_source = [UopSource::Dsb, UopSource::Dsb];
        self.pending_lsd_flush = [false, false];
        self.lock_streak = [(0, 0), (0, 0)];
        self.config = config;
    }

    /// Whether both hardware threads are currently active.
    pub fn both_active(&self) -> bool {
        self.active[0] && self.active[1]
    }

    /// Resident DSB lines owned by a thread.
    pub fn dsb_occupancy(&self, thread: u8) -> usize {
        self.dsb.occupancy(thread)
    }

    /// Cumulative counters for one thread.
    pub fn counters(&self, tid: ThreadId) -> &IterationReport {
        &self.cumulative[tid.index()]
    }

    /// Marks a hardware thread active or idle (same semantics as
    /// [`crate::Frontend::set_active`]).
    pub fn set_active(&mut self, tid: ThreadId, active: bool) {
        let was_both = self.both_active();
        let previously_solo = if self.active[0] {
            Some(ThreadId::T0)
        } else if self.active[1] {
            Some(ThreadId::T1)
        } else {
            None
        };
        self.active[tid.index()] = active;
        let now_both = self.both_active();
        if was_both == now_both {
            return;
        }
        let flushed = self.dsb.set_partitioned(now_both);
        for line in &flushed {
            self.invalidate_lock_if_member(*line);
        }
        if now_both {
            if self.config.flush_on_partition && self.config.dsb_policy == SmtDsbPolicy::Competitive
            {
                if let Some(solo) = previously_solo {
                    if solo != tid {
                        let victims = self.dsb.flush_thread(solo.index() as u8);
                        for line in victims {
                            self.invalidate_lock_if_member(line);
                        }
                    }
                }
            }
            for t in 0..2 {
                let invalid = match &self.locks[t] {
                    Some(lock) => lock.uops as usize > self.config.geometry.lsd_uops / 2,
                    None => false,
                };
                if invalid {
                    self.locks[t] = None;
                    self.pending_lsd_flush[t] = true;
                    self.lock_streak[t].1 = 0;
                }
            }
        }
    }

    /// Sets the sibling-pressure factor on this thread's MITE decode costs.
    pub fn set_external_mite_pressure(&mut self, tid: ThreadId, pressure: f64) {
        assert!(pressure >= 0.0, "pressure must be non-negative");
        self.external_mite_pressure[tid.index()] = pressure;
    }

    /// Whether `tid`'s LSD currently streams the given chain.
    pub fn lsd_locked(&self, tid: ThreadId, chain: &BlockChain) -> bool {
        self.locks[tid.index()]
            .as_ref()
            .is_some_and(|l| l.key == chain.key())
    }

    /// Executes one iteration of a loop over `chain` on thread `tid`.
    pub fn run_iteration(&mut self, tid: ThreadId, chain: &BlockChain) -> IterationReport {
        let t = tid.index();
        let mut report = IterationReport::new();

        if std::mem::take(&mut self.pending_lsd_flush[t]) {
            report.cycles += self.config.costs.lsd_flush;
            report.lsd_flushes += 1;
            self.last_source[t] = UopSource::Dsb;
        }

        let key = chain.key();
        if self.lock_streak[t].0 == key {
            self.lock_streak[t].1 = self.lock_streak[t].1.saturating_add(1);
        } else {
            self.lock_streak[t] = (key, 1);
        }
        if let Some(lock) = &self.locks[t] {
            if lock.key == key {
                let uops = chain.total_uops();
                report.cycles +=
                    self.config.costs.lsd_stream(uops) + self.config.costs.loop_overhead;
                report.add_uops(UopSource::Lsd, uops as u64);
                self.last_source[t] = UopSource::Lsd;
                if self.both_active() && chain.misaligned_count() > 0 {
                    let blocks: Vec<Block> = chain
                        .blocks()
                        .iter()
                        .filter(|b| !b.is_aligned())
                        .cloned()
                        .collect();
                    for block in &blocks {
                        self.note_sibling_crossing(tid, block);
                    }
                }
                self.cumulative[t] += report;
                return report;
            }
            self.locks[t] = None;
        }

        for block in chain.blocks() {
            self.fetch_l1i(block, &mut report);
            if block.lcp_count() > 0 {
                self.deliver_lcp_block(tid, block, &mut report);
            } else {
                self.deliver_block(tid, block, &mut report);
            }
        }
        report.cycles += self.config.costs.loop_overhead;

        self.maybe_lock_lsd(tid, chain, key);
        self.cumulative[t] += report;
        report
    }

    /// Runs `n` iterations by simulating every single one (no steady-state
    /// detection) — the semantic baseline for
    /// [`crate::Frontend::run_iterations`].
    ///
    /// # Panics
    ///
    /// Panics if the geometry's µops-per-line is zero
    /// (`Block::line_slots_for`).
    pub fn run_iterations(&mut self, tid: ThreadId, chain: &BlockChain, n: u64) -> IterationReport {
        let mut total = IterationReport::new();
        for _ in 0..n {
            total += self.run_iteration(tid, chain);
        }
        total
    }

    /// Removes every DSB line and LSD lock belonging to `tid`.
    pub fn flush_thread_state(&mut self, tid: ThreadId) {
        self.dsb.flush_thread(tid.index() as u8);
        self.locks[tid.index()] = None;
        self.pending_lsd_flush[tid.index()] = false;
    }

    fn fetch_l1i(&mut self, block: &Block, report: &mut IterationReport) {
        for &line in block.cache_lines() {
            report.l1i_accesses += 1;
            if !self.l1i.access_line(line).hit() {
                report.l1i_misses += 1;
                report.cycles += self.config.costs.l1i_miss;
            }
        }
    }

    fn mite_pressure_factor(&self, t: usize) -> f64 {
        1.0 + self.external_mite_pressure[t]
    }

    fn charge_switch(&mut self, t: usize, new_source: UopSource, report: &mut IterationReport) {
        let old = self.last_source[t];
        if old == new_source {
            return;
        }
        let costs = self.config.costs;
        match (old, new_source) {
            (UopSource::Dsb | UopSource::Lsd, UopSource::Mite) => {
                report.cycles += costs.dsb_to_mite_switch;
                report.switch_penalty_cycles += costs.dsb_to_mite_switch;
                report.dsb_to_mite_switches += 1;
            }
            (UopSource::Mite, _) => {
                report.cycles += costs.mite_to_dsb_switch;
                report.switch_penalty_cycles += costs.mite_to_dsb_switch;
            }
            _ => {}
        }
        self.last_source[t] = new_source;
    }

    fn deliver_block(&mut self, tid: ThreadId, block: &Block, report: &mut IterationReport) {
        let t = tid.index();
        let line_uops = self.config.geometry.dsb_line_uops as u32;
        let smt = self.both_active();
        let crossing = !block.is_aligned();
        if crossing {
            report.cycles += self.config.costs.window_crossing_penalty;
            report.crossing_penalty_cycles += self.config.costs.window_crossing_penalty;
            if smt {
                self.note_sibling_crossing(tid, block);
            }
        }
        for fp in block.windows() {
            let mut remaining = fp.uops;
            let mut chunk = 0u8;
            while remaining > 0 {
                let uops = remaining.min(line_uops);
                let lid = LineId {
                    thread: t as u8,
                    window: fp.window,
                    chunk,
                };
                if self.dsb.lookup(lid) {
                    self.charge_switch(t, UopSource::Dsb, report);
                    report.cycles += self.config.costs.dsb_line(uops);
                    report.add_uops(UopSource::Dsb, uops as u64);
                } else {
                    self.charge_switch(t, UopSource::Mite, report);
                    report.cycles +=
                        self.config.costs.mite_line(uops, smt) * self.mite_pressure_factor(t);
                    report.add_uops(UopSource::Mite, uops as u64);
                    if let Some(evicted) = self.dsb.insert(lid) {
                        report.dsb_evictions += 1;
                        self.invalidate_lock_if_member(evicted);
                    }
                }
                remaining -= uops;
                chunk += 1;
            }
        }
    }

    fn note_sibling_crossing(&mut self, tid: ThreadId, block: &Block) {
        let sets = self.config.geometry.dsb_sets as u64;
        let other = tid.other().index();
        let head_window = block.base().window();
        let head_set = head_window % sets;
        let window_cap = self.config.geometry.lsd_windows;
        let collapse = match &mut self.locks[other] {
            Some(lock) if lock.set_mask & (1u64 << head_set) != 0 => {
                lock.foreign_crossings.insert(head_window);
                lock.lines.len() + 2 * lock.foreign_crossings.len() > window_cap
            }
            _ => false,
        };
        if collapse {
            self.locks[other] = None;
            self.pending_lsd_flush[other] = true;
            self.lock_streak[other].1 = 0;
        }
    }

    fn deliver_lcp_block(&mut self, tid: ThreadId, block: &Block, report: &mut IterationReport) {
        let t = tid.index();
        let smt = self.both_active();
        let costs = self.config.costs;
        let pressure = self.mite_pressure_factor(t);
        let smt_factor = if smt { costs.smt_mite_factor } else { 1.0 };
        let charge_lcp_switch =
            |last: &mut UopSource, new_source: UopSource, report: &mut IterationReport| {
                if *last == new_source {
                    return;
                }
                match (*last, new_source) {
                    (UopSource::Dsb | UopSource::Lsd, UopSource::Mite) => {
                        report.cycles += costs.lcp_dsb_to_mite_switch;
                        report.switch_penalty_cycles += costs.lcp_dsb_to_mite_switch;
                        report.dsb_to_mite_switches += 1;
                    }
                    (UopSource::Mite, _) => {
                        report.cycles += costs.lcp_mite_to_dsb_switch;
                        report.switch_penalty_cycles += costs.lcp_mite_to_dsb_switch;
                    }
                    _ => {}
                }
                *last = new_source;
            };
        let mut last = self.last_source[t];
        let mut prev_lcp = false;
        for (addr, instr) in block.placed_instructions() {
            if instr.has_lcp() {
                charge_lcp_switch(&mut last, UopSource::Mite, report);
                let stall = costs.lcp_stall
                    + if prev_lcp {
                        costs.lcp_sequential_extra
                    } else {
                        0.0
                    };
                report.cycles += (costs.mite_per_instr + stall) * smt_factor * pressure;
                report.lcp_stall_cycles += stall * smt_factor;
                report.add_uops(UopSource::Mite, instr.uops() as u64);
                prev_lcp = true;
            } else {
                let lid = LineId {
                    thread: t as u8,
                    window: addr.window(),
                    chunk: 0,
                };
                if self.dsb.lookup(lid) {
                    charge_lcp_switch(&mut last, UopSource::Dsb, report);
                    report.cycles += costs.dsb_per_uop * instr.uops() as f64;
                    report.add_uops(UopSource::Dsb, instr.uops() as u64);
                } else {
                    charge_lcp_switch(&mut last, UopSource::Mite, report);
                    report.cycles += costs.mite_per_instr * smt_factor * pressure;
                    report.add_uops(UopSource::Mite, instr.uops() as u64);
                    if let Some(evicted) = self.dsb.insert(lid) {
                        report.dsb_evictions += 1;
                        self.invalidate_lock_if_member(evicted);
                    }
                }
                prev_lcp = false;
            }
        }
        self.last_source[t] = last;
    }

    fn maybe_lock_lsd(&mut self, tid: ThreadId, chain: &BlockChain, key: u64) {
        if !self.config.lsd_enabled {
            return;
        }
        debug_assert_eq!(self.lock_streak[tid.index()].0, key);
        if self.lock_streak[tid.index()].1 < self.config.lsd_warmup_iterations {
            return;
        }
        if chain.blocks().iter().any(|b| b.lcp_count() > 0) {
            return;
        }
        let smt = self.both_active();
        if !lsd_qualifies(chain, &self.config.geometry, smt).qualifies() {
            return;
        }
        let t = tid.index();
        let sets = self.config.geometry.dsb_sets as u64;
        let mut lines = HashSet::new();
        let mut set_mask = 0u64;
        for block in chain.blocks() {
            let line_uops = self.config.geometry.dsb_line_uops as u32;
            for fp in block.windows() {
                let chunks = fp.uops.div_ceil(line_uops) as u8;
                for chunk in 0..chunks {
                    let lid = LineId {
                        thread: t as u8,
                        window: fp.window,
                        chunk,
                    };
                    if !self.dsb.resident(lid) {
                        return;
                    }
                    lines.insert((fp.window, chunk));
                    set_mask |= 1u64 << (fp.window % sets);
                }
            }
        }
        self.locks[t] = Some(NaiveLock {
            key,
            lines,
            uops: chain.total_uops(),
            set_mask,
            foreign_crossings: HashSet::new(),
        });
    }

    fn invalidate_lock_if_member(&mut self, evicted: LineId) {
        let t = evicted.thread as usize;
        let member = self.locks[t]
            .as_ref()
            .is_some_and(|l| l.lines.contains(&(evicted.window, evicted.chunk)));
        if member {
            self.locks[t] = None;
            self.pending_lsd_flush[t] = true;
            self.lock_streak[t].1 = 0;
        }
    }
}

//! Cycle-cost calibration, re-exported from [`leaky_uarch`].
//!
//! The [`CostModel`] moved into `leaky_uarch` when microarchitecture
//! profiles became first-class (DESIGN.md §8): a cost model is one half
//! of a [`leaky_uarch::UarchProfile`] (the other being the
//! [`leaky_isa::FrontendGeometry`]), and the profile registry lives
//! below this crate so channels, cores and sweeps can name
//! microarchitectures without depending on the engine. This module keeps
//! the historical `leaky_frontend::costs::CostModel` path working.

pub use leaky_uarch::costs::CostModel;
